//! A minimal JSON reader.
//!
//! The vendored `serde` compat crate only *writes* JSON; nothing in the
//! workspace could read serialized data back until this module. It
//! parses the subset our own writers emit (objects, arrays, strings
//! with `\uXXXX` escapes, f64 numbers, booleans, null) into a [`Json`]
//! tree. Object keys keep insertion order — the writers emit fields in
//! declaration order and the bench-schema guard checks against that.
//!
//! Used by the `trace-analyze` binary (reading telemetry JSONL) and by
//! `ert-testkit`'s bench-schema guard (reading committed
//! `BENCH_*.json`). Deliberately strict: trailing garbage, unpaired
//! surrogates, and malformed numbers are errors, not best-effort
//! repairs — a trace that fails to parse should fail loudly.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64, which covers every value our writers
    /// produce — they never emit integers above 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// ```
    /// use ert_obs::Json;
    /// let v = Json::parse(r#"{"a":[1,2],"b":"x"}"#).unwrap();
    /// assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    /// assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
    /// ```
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (None for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64, if numeric, non-negative, and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // ert-lint: allow(float-eq) — fract() is exactly 0.0 for integral values
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields in source order, if an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        // Surrogate pair?
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err("unpaired surrogate".to_string());
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".to_string());
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c).ok_or("invalid surrogate pair")?
                        } else {
                            char::from_u32(code).ok_or("invalid \\u escape")?
                        };
                        out.push(ch);
                    }
                    other => return Err(format!("invalid escape \\{}", *other as char)),
                }
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole code point.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    if *pos + 4 > bytes.len() {
        return Err("truncated \\u escape".to_string());
    }
    let text = std::str::from_utf8(&bytes[*pos..*pos + 4]).map_err(|e| e.to_string())?;
    *pos += 4;
    u32::from_str_radix(text, 16).map_err(|_| format!("invalid \\u escape {text:?}"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' in array, found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}' in object, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -1.5e2 ").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures_preserving_key_order() {
        let v = Json::parse(r#"{"b":1,"a":{"x":[1,2,3],"y":null}}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(
            v.get("a")
                .unwrap()
                .get("x")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            3
        );
        assert_eq!(v.get("a").unwrap().get("y"), Some(&Json::Null));
    }

    #[test]
    fn round_trips_own_writer_output() {
        // What the compat serde writer emits must parse back.
        let line = serde::json::to_string(&vec![1.5f64, 0.25]);
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_f64(), Some(1.5));
        let mut s = String::new();
        serde::json::write_escaped(&mut s, "a\"b\\c\nd");
        let quoted = Json::parse(&s).unwrap();
        assert_eq!(quoted.as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""Aé😀\t""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀\t"));
        assert_eq!(Json::parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
    }
}
