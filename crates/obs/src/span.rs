//! Deterministic span IDs for per-lookup causal tracing.
//!
//! Every hop a query takes through the network is one span; spans of a
//! query form a chain (hop *k*'s parent is hop *k−1*, hop 0's parent is
//! the per-lookup root). IDs are pure arithmetic over `(query id, hop
//! index)` — no RNG, no global counter — so two runs of the same seed
//! emit identical span trees and a span ID can be decoded back to its
//! coordinates offline.
//!
//! Layout: the low [`HOP_BITS`] bits hold `hop + 1` (zero is reserved
//! for the per-lookup root span), the rest hold the query id. A query
//! that re-serves at the same hop index after a churn handoff or a
//! retry re-emits the same span ID; the analyzer treats those as
//! sibling spans of one logical hop.

/// Bits reserved for the hop index (low bits of a span ID).
pub const HOP_BITS: u32 = 16;

/// Largest encodable hop index (`max_hops` configs sit far below).
pub const MAX_HOP: u32 = (1 << HOP_BITS) - 2;

/// The root span of a lookup: parent of its hop-0 span.
///
/// # Panics
///
/// Panics if `q` does not fit in the remaining high bits.
pub fn lookup_root(q: u64) -> u64 {
    assert!(q < 1 << (64 - HOP_BITS), "query id out of range: {q}");
    q << HOP_BITS
}

/// The span ID of hop `hop` of query `q`.
///
/// # Panics
///
/// Panics if `q` or `hop` is out of encodable range.
pub fn span_id(q: u64, hop: u32) -> u64 {
    assert!(hop <= MAX_HOP, "hop index out of range: {hop}");
    lookup_root(q) | (hop as u64 + 1)
}

/// The parent span ID of hop `hop` of query `q`: the previous hop, or
/// the lookup root for hop 0.
pub fn parent_id(q: u64, hop: u32) -> u64 {
    if hop == 0 {
        lookup_root(q)
    } else {
        span_id(q, hop - 1)
    }
}

/// Decodes a span ID back to `(query id, hop index)`; `None` hop means
/// the lookup root.
pub fn decompose(span: u64) -> (u64, Option<u32>) {
    let q = span >> HOP_BITS;
    let low = span & ((1 << HOP_BITS) - 1);
    if low == 0 {
        (q, None)
    } else {
        (q, Some((low - 1) as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_distinct() {
        assert_eq!(span_id(3, 0), span_id(3, 0));
        assert_ne!(span_id(3, 0), span_id(3, 1));
        assert_ne!(span_id(3, 0), span_id(4, 0));
        assert_ne!(span_id(3, 0), lookup_root(3));
    }

    #[test]
    fn parent_chain_reaches_the_root() {
        let q = 42;
        assert_eq!(parent_id(q, 0), lookup_root(q));
        assert_eq!(parent_id(q, 5), span_id(q, 4));
    }

    #[test]
    fn decompose_inverts_encoding() {
        assert_eq!(decompose(span_id(7, 11)), (7, Some(11)));
        assert_eq!(decompose(lookup_root(7)), (7, None));
        assert_eq!(decompose(span_id(0, 0)), (0, Some(0)));
    }

    #[test]
    #[should_panic(expected = "hop index out of range")]
    fn hop_overflow_rejected() {
        span_id(1, MAX_HOP + 1);
    }

    #[test]
    #[should_panic(expected = "query id out of range")]
    fn query_overflow_rejected() {
        lookup_root(1 << 48);
    }
}
