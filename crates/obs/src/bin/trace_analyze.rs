//! `trace-analyze` — reconstruct per-lookup span trees from a captured
//! telemetry JSONL stream and attribute p99 latency to nodes/queues.
//!
//! ```text
//! trace-analyze <trace.jsonl> [--top N]
//! ```
//!
//! The input is the file a `--telemetry <path>` experiment run writes
//! (see README § Telemetry capture). The output is a plain-text report:
//! stream totals, the per-hop queueing / service / transit breakdown,
//! and the nodes that absorbed the time of the slowest (≥ p99) lookups.

use std::process::ExitCode;

use ert_obs::TraceAnalysis;

fn usage() -> ExitCode {
    eprintln!("usage: trace-analyze <trace.jsonl> [--top N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut top = 5usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                top = v;
                i += 2;
            }
            "--help" | "-h" => {
                return usage();
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other);
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace-analyze: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let analysis = TraceAnalysis::from_lines(text.lines());
    if analysis.lookups().is_empty() {
        eprintln!(
            "trace-analyze: no lookup events in {path} (was the run captured with --telemetry?)"
        );
        return ExitCode::FAILURE;
    }
    print!("{}", analysis.render(top));
    ExitCode::SUCCESS
}
