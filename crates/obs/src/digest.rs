//! The [`Digest`] query trait shared by every statistics collector, the
//! [`Record`] write trait for the collectors that accept observations,
//! and [`Summary`], the fixed six-field digest the paper's figures plot.
//!
//! `Summary` lives here (rather than in `ert_sim::stats`, which
//! re-exports it) so the observability layer can be used below the
//! simulator without a dependency cycle. Its serialized field order is
//! part of the report format pinned by `tests/parallel_determinism.rs`
//! and must not change.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A digest of an observation stream: the statistics the paper's
/// figures plot.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 1st percentile.
    pub p01: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.4} p01={:.4} p50={:.4} p99={:.4} max={:.4} (n={})",
            self.mean, self.p01, self.p50, self.p99, self.max, self.count
        )
    }
}

/// The query side of a statistics collector: count, mean, quantiles,
/// max, and a [`Summary`] snapshot.
///
/// Implemented by the exact collectors (`ert_sim::stats::Samples`,
/// `ert_sim::stats::Histogram`), by the O(1)-memory streaming sketch
/// ([`crate::StreamSummary`]), and by [`Summary`] itself (whose
/// `quantile` snaps to the nearest stored percentile). Code that only
/// *reads* statistics can take `&dyn Digest` and stay agnostic to
/// whether the run retained raw samples or streamed them.
pub trait Digest {
    /// Number of observations absorbed.
    fn count(&self) -> u64;

    /// Arithmetic mean, or 0.0 when empty.
    fn mean(&self) -> f64;

    /// The `p`-quantile (`0.0 ..= 1.0`), or 0.0 when empty. Exact
    /// collectors answer by nearest rank; sketches answer from their
    /// tracked markers (see each implementation for its resolution).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn quantile(&self, p: f64) -> f64;

    /// Largest observation (clamped to ≥ 0.0, matching the exact
    /// collectors), or 0.0 when empty.
    fn max(&self) -> f64;

    /// Mean / 1st / 50th / 99th percentile / max snapshot.
    fn summarize(&self) -> Summary {
        Summary {
            count: self.count() as usize,
            mean: self.mean(),
            p01: self.quantile(0.01),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// The write side of a statistics collector.
///
/// Split from [`Digest`] because read-only digests exist ([`Summary`]
/// answers quantile queries but cannot absorb new observations).
pub trait Record {
    /// Absorbs one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN would poison every quantile
    /// query downstream.
    fn observe(&mut self, value: f64);
}

impl Digest for Summary {
    fn count(&self) -> u64 {
        self.count as u64
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    /// Snaps to the nearest stored percentile: `p01` below 0.255, `p50`
    /// up to 0.745, `p99` up to 0.995, `max` above. A `Summary` is a
    /// five-point digest; intermediate quantiles are not recoverable.
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile out of range: {p}");
        if p < 0.255 {
            self.p01
        } else if p < 0.745 {
            self.p50
        } else if p < 0.995 {
            self.p99
        } else {
            self.max
        }
    }

    fn max(&self) -> f64 {
        self.max
    }

    fn summarize(&self) -> Summary {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest() -> Summary {
        Summary {
            count: 100,
            mean: 5.0,
            p01: 1.0,
            p50: 4.0,
            p99: 9.0,
            max: 10.0,
        }
    }

    #[test]
    fn summary_quantile_snaps_to_stored_points() {
        let d = digest();
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(0.01), 1.0);
        assert_eq!(d.quantile(0.5), 4.0);
        assert_eq!(d.quantile(0.99), 9.0);
        assert_eq!(d.quantile(1.0), 10.0);
    }

    #[test]
    fn summary_summarize_is_identity() {
        let d = digest();
        assert_eq!(d.summarize(), d);
        assert_eq!(Digest::count(&d), 100);
        assert_eq!(Digest::mean(&d), 5.0);
        assert_eq!(Digest::max(&d), 10.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn summary_quantile_rejects_out_of_range() {
        digest().quantile(1.5);
    }

    #[test]
    fn display_shape() {
        let s = digest().to_string();
        assert!(s.contains("mean=5.0000"), "{s}");
        assert!(s.contains("(n=100)"), "{s}");
    }

    #[test]
    fn serialized_field_order_is_pinned() {
        // The report pin in tests/parallel_determinism.rs depends on
        // exactly this byte sequence.
        let d = digest();
        assert_eq!(
            serde::json::to_string(&d),
            "{\"count\":100,\"mean\":5.0,\"p01\":1.0,\"p50\":4.0,\"p99\":9.0,\"max\":10.0}"
        );
    }
}
