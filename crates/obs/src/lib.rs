//! Observability layer for the ERT reproduction.
//!
//! Three pieces, one crate, no dependency on the simulator (so every
//! layer above — `ert-sim`, `ert-network`, `ert-telemetry` — can build
//! on it without cycles):
//!
//! 1. **Bounded-memory streaming statistics** ([`sketch`], [`digest`]) —
//!    a deterministic fixed-size quantile sketch ([`P2Quantile`], the
//!    classic P² algorithm) composed into [`StreamSummary`], a `Copy`
//!    collector answering the same count/mean/p01/p50/p99/max queries as
//!    `ert_sim::stats::Samples` in O(1) memory per metric regardless of
//!    how many observations stream through. The shared query interface
//!    is the [`Digest`] trait; writable collectors also implement
//!    [`Record`]. No RNG, no wall clock: the sketch state is a pure
//!    function of the observation sequence, so same-seed runs stay
//!    byte-identical (D1/D2 clean).
//! 2. **Deterministic span IDs** ([`span`]) — the `(query id, hop
//!    index)` → span-ID scheme used by `ert-network`'s per-lookup causal
//!    tracing. IDs are pure arithmetic, so two runs of the same seed
//!    emit identical span trees.
//! 3. **Offline trace analysis** ([`json`], [`trace`], and the
//!    `trace-analyze` binary) — a minimal JSON reader (the vendored
//!    `serde` compat crate only *writes* JSON) plus the analyzer that
//!    reconstructs per-hop latency breakdowns from a captured telemetry
//!    JSONL stream and attributes p99 lookup latency to specific
//!    nodes/queues — the empirical counterpart of the Theorem 3.1/3.2
//!    envelopes the sanitizer asserts.
//!
//! See DESIGN.md § Observability for the span model and tolerance
//! discussion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod json;
pub mod sketch;
pub mod span;
pub mod trace;

pub use digest::{Digest, Record, Summary};
pub use json::Json;
pub use sketch::{P2Quantile, StreamSummary};
pub use trace::TraceAnalysis;
