//! Offline reconstruction of per-lookup span trees from a captured
//! telemetry JSONL stream.
//!
//! `ert-network` emits one `HopSpan` event per completed service (see
//! DESIGN.md § Observability): the span covers the hop's queueing phase
//! (`enqueued → service_start`) and service phase (`service_start →
//! service_end`); the transit / forward-decision phase of hop *k* is
//! derived here as the gap from hop *k*'s `service_end` to hop
//! *k+1*'s `enqueued`. [`TraceAnalysis`] groups spans by query,
//! computes the per-hop latency breakdown, and attributes the latency
//! of the slowest (≥ p99 total time) lookups to specific nodes — the
//! empirical counterpart of the Theorem 3.1/3.2 congestion envelopes.

use std::collections::BTreeMap;

use crate::json::Json;

/// One hop span parsed back from the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopSpan {
    /// Query id.
    pub q: u64,
    /// Hop index at service time (repeats for handoff/retry siblings).
    pub hop: u32,
    /// Linearized node id that served the hop.
    pub node: u64,
    /// Deterministic span ID (`ert_obs::span::span_id(q, hop)`).
    pub span: u64,
    /// Parent span ID.
    pub parent: u64,
    /// Arrival at the node's queue (µs, sim clock).
    pub enqueued: u64,
    /// Service start (µs).
    pub service_start: u64,
    /// Service end (µs).
    pub service_end: u64,
}

impl HopSpan {
    /// Time spent waiting in the node's queue (µs).
    pub fn queueing(&self) -> u64 {
        self.service_start.saturating_sub(self.enqueued)
    }

    /// Time spent in service (µs).
    pub fn service(&self) -> u64 {
        self.service_end.saturating_sub(self.service_start)
    }
}

/// All spans of one lookup, in emission (= sim time) order.
#[derive(Debug, Clone, Default)]
pub struct LookupTrace {
    /// Injection time (µs), from the `LookupStart` event.
    pub started_at: Option<u64>,
    /// Completion time (µs), from the `LookupComplete` event.
    pub completed_at: Option<u64>,
    /// Spans in emission order.
    pub spans: Vec<HopSpan>,
}

impl LookupTrace {
    /// End-to-end latency (µs) when both endpoints were captured.
    pub fn total(&self) -> Option<u64> {
        Some(self.completed_at?.saturating_sub(self.started_at?))
    }
}

/// Aggregated per-phase times at one hop index.
#[derive(Debug, Clone, Default)]
struct HopPhase {
    queueing: Vec<f64>,
    service: Vec<f64>,
    transit: Vec<f64>,
}

/// Per-node attribution bucket.
#[derive(Debug, Clone, Copy, Default)]
struct NodeLoad {
    spans: u64,
    queueing: u64,
    service: u64,
}

/// The reconstructed trace: span trees grouped by query plus the
/// derived breakdowns.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalysis {
    lookups: BTreeMap<u64, LookupTrace>,
    /// Lines that were not valid JSON (count only; a malformed capture
    /// should be visible, not fatal to the whole analysis).
    pub malformed_lines: usize,
}

/// Nearest-rank quantile over a scratch vector (sorts in place).
fn nearest_rank(values: &mut [f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let rank = ((p * values.len() as f64).ceil() as usize).max(1);
    values[rank - 1]
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

impl TraceAnalysis {
    /// Parses a telemetry JSONL stream (one record per line). Only
    /// `kind:"event"` lines carrying `HopSpan`, `LookupStart`, or
    /// `LookupComplete` contribute; everything else is skipped.
    pub fn from_lines<'a>(lines: impl Iterator<Item = &'a str>) -> TraceAnalysis {
        let mut analysis = TraceAnalysis::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(record) = Json::parse(line) else {
                analysis.malformed_lines += 1;
                continue;
            };
            if record.get("kind").and_then(Json::as_str) != Some("event") {
                continue;
            }
            let Some(at) = record.get("at").and_then(Json::as_u64) else {
                continue;
            };
            let Some(event) = record.get("event").and_then(Json::as_obj) else {
                continue;
            };
            // Externally tagged: exactly one (variant, payload) pair.
            let Some((variant, payload)) = event.first() else {
                continue;
            };
            let field = |name: &str| payload.get(name).and_then(Json::as_u64);
            match variant.as_str() {
                "LookupStart" => {
                    if let Some(q) = field("q") {
                        analysis.lookups.entry(q).or_default().started_at = Some(at);
                    }
                }
                "LookupComplete" => {
                    if let Some(q) = field("q") {
                        analysis.lookups.entry(q).or_default().completed_at = Some(at);
                    }
                }
                "HopSpan" => {
                    let all = (|| {
                        Some(HopSpan {
                            q: field("q")?,
                            hop: field("hop")? as u32,
                            node: field("node")?,
                            span: field("span")?,
                            parent: field("parent")?,
                            enqueued: field("enqueued")?,
                            service_start: field("service_start")?,
                            service_end: field("service_end")?,
                        })
                    })();
                    match all {
                        Some(span) => analysis.lookups.entry(span.q).or_default().spans.push(span),
                        None => analysis.malformed_lines += 1,
                    }
                }
                _ => {}
            }
        }
        analysis
    }

    /// The per-query traces, keyed by query id.
    pub fn lookups(&self) -> &BTreeMap<u64, LookupTrace> {
        &self.lookups
    }

    /// Total spans across all lookups.
    pub fn span_count(&self) -> usize {
        self.lookups.values().map(|t| t.spans.len()).sum()
    }

    /// Per-hop-index phase breakdown (hop → queueing/service/transit
    /// observations in µs). Transit of hop *k* is the gap to the next
    /// span's enqueue within the same lookup, in emission order.
    fn hop_phases(&self) -> BTreeMap<u32, HopPhase> {
        let mut phases: BTreeMap<u32, HopPhase> = BTreeMap::new();
        for trace in self.lookups.values() {
            for (i, span) in trace.spans.iter().enumerate() {
                let slot = phases.entry(span.hop).or_default();
                slot.queueing.push(span.queueing() as f64);
                slot.service.push(span.service() as f64);
                if let Some(next) = trace.spans.get(i + 1) {
                    slot.transit
                        .push(next.enqueued.saturating_sub(span.service_end) as f64);
                }
            }
        }
        phases
    }

    /// Aggregates queueing/service time per node over a span subset.
    fn node_loads<'a>(spans: impl Iterator<Item = &'a HopSpan>) -> BTreeMap<u64, NodeLoad> {
        let mut loads: BTreeMap<u64, NodeLoad> = BTreeMap::new();
        for span in spans {
            let slot = loads.entry(span.node).or_default();
            slot.spans += 1;
            slot.queueing += span.queueing();
            slot.service += span.service();
        }
        loads
    }

    /// Renders the full analysis as a human-readable report: stream
    /// totals, per-hop phase breakdown, and p99 attribution naming the
    /// nodes that absorbed the slowest lookups' time.
    pub fn render(&self, top: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let completed: Vec<&LookupTrace> = self
            .lookups
            .values()
            .filter(|t| t.total().is_some())
            .collect();
        writeln!(
            out,
            "trace-analyze: {} lookups ({} completed), {} spans, {} malformed lines",
            self.lookups.len(),
            completed.len(),
            self.span_count(),
            self.malformed_lines
        )
        .expect("write to String");

        // Per-hop latency breakdown.
        writeln!(
            out,
            "\nper-hop breakdown (µs): hop  n      queue mean/p99      service mean/p99     transit mean/p99"
        )
        .expect("write to String");
        for (hop, mut phase) in self.hop_phases() {
            let n = phase.queueing.len();
            let (qm, qs) = (mean(&phase.queueing), mean(&phase.service));
            let tm = mean(&phase.transit);
            let q99 = nearest_rank(&mut phase.queueing, 0.99);
            let s99 = nearest_rank(&mut phase.service, 0.99);
            let t99 = nearest_rank(&mut phase.transit, 0.99);
            writeln!(
                out,
                "  hop {hop:>2}  {n:>6}  {qm:>10.1}/{q99:<10.1} {qs:>10.1}/{s99:<10.1} {tm:>10.1}/{t99:<10.1}"
            )
            .expect("write to String");
        }

        // p99 attribution: which nodes absorbed the slow lookups' time.
        let mut totals: Vec<f64> = completed
            .iter()
            .filter_map(|t| t.total())
            .map(|v| v as f64)
            .collect();
        let threshold = nearest_rank(&mut totals, 0.99);
        let slow: Vec<&LookupTrace> = completed
            .iter()
            .copied()
            .filter(|t| t.total().map(|v| v as f64 >= threshold).unwrap_or(false))
            .collect();
        writeln!(
            out,
            "\np99 attribution: {} lookups at or above p99 total {:.0} µs",
            slow.len(),
            threshold
        )
        .expect("write to String");
        let loads = Self::node_loads(slow.iter().flat_map(|t| t.spans.iter()));
        let mut ranked: Vec<(u64, NodeLoad)> = loads.into_iter().collect();
        ranked.sort_by(|a, b| {
            (b.1.queueing + b.1.service)
                .cmp(&(a.1.queueing + a.1.service))
                .then(a.0.cmp(&b.0))
        });
        writeln!(
            out,
            "  node      spans   queueing µs   service µs   (share of slow-lookup time)"
        )
        .expect("write to String");
        let slow_total: u64 = ranked.iter().map(|(_, l)| l.queueing + l.service).sum();
        for (node, load) in ranked.iter().take(top) {
            let share = if slow_total == 0 {
                0.0
            } else {
                (load.queueing + load.service) as f64 / slow_total as f64
            };
            writeln!(
                out,
                "  {node:>6}  {:>7}  {:>12}  {:>11}   {:>5.1}%",
                load.spans,
                load.queueing,
                load.service,
                share * 100.0
            )
            .expect("write to String");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    fn line(at: u64, seq: u64, event: &str) -> String {
        format!("{{\"kind\":\"event\",\"at\":{at},\"seq\":{seq},\"event\":{event}}}")
    }

    fn hop_span(q: u64, hop: u32, node: u64, enq: u64, start: u64, end: u64) -> String {
        format!(
            "{{\"HopSpan\":{{\"q\":{q},\"hop\":{hop},\"node\":{node},\"span\":{},\"parent\":{},\
             \"enqueued\":{enq},\"service_start\":{start},\"service_end\":{end}}}}}",
            span::span_id(q, hop),
            span::parent_id(q, hop),
        )
    }

    fn fixture() -> Vec<String> {
        vec![
            line(0, 0, "{\"LookupStart\":{\"q\":1,\"source\":0,\"key\":9}}"),
            line(30, 1, &hop_span(1, 0, 5, 0, 10, 30)),
            line(90, 2, &hop_span(1, 1, 7, 40, 70, 90)),
            line(
                95,
                3,
                "{\"LookupComplete\":{\"q\":1,\"hops\":2,\"heavy\":0}}",
            ),
            line(100, 4, "{\"AdaptTick\":{\"round\":1}}"),
            "{\"kind\":\"snapshot\",\"snapshot\":{\"at\":7}}".to_string(),
        ]
    }

    #[test]
    fn reconstructs_span_trees_and_totals() {
        let lines = fixture();
        let a = TraceAnalysis::from_lines(lines.iter().map(|s| s.as_str()));
        assert_eq!(a.malformed_lines, 0);
        assert_eq!(a.lookups().len(), 1);
        let t = &a.lookups()[&1];
        assert_eq!(t.total(), Some(95));
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].queueing(), 10);
        assert_eq!(t.spans[0].service(), 20);
        assert_eq!(t.spans[1].parent, span::span_id(1, 0));
    }

    #[test]
    fn render_names_nodes_and_phases() {
        let lines = fixture();
        let a = TraceAnalysis::from_lines(lines.iter().map(|s| s.as_str()));
        let report = a.render(5);
        assert!(
            report.contains("1 lookups (1 completed), 2 spans"),
            "{report}"
        );
        assert!(report.contains("hop  0"), "{report}");
        // Transit of hop 0 = 40 - 30 = 10 µs.
        assert!(report.contains("10.0"), "{report}");
        // Both serving nodes appear in the attribution table.
        assert!(report.contains("     5"), "{report}");
        assert!(report.contains("     7"), "{report}");
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let lines = ["not json".to_string(), fixture()[1].clone()];
        let a = TraceAnalysis::from_lines(lines.iter().map(|s| s.as_str()));
        assert_eq!(a.malformed_lines, 1);
        assert_eq!(a.span_count(), 1);
    }

    #[test]
    fn handoff_siblings_share_a_hop_index() {
        // Two spans at the same hop (churn handoff re-serve) both count.
        let lines = [
            line(30, 0, &hop_span(2, 0, 5, 0, 10, 30)),
            line(60, 1, &hop_span(2, 0, 6, 35, 40, 60)),
        ];
        let a = TraceAnalysis::from_lines(lines.iter().map(|s| s.as_str()));
        let t = &a.lookups()[&2];
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].hop, t.spans[1].hop);
        assert_eq!(t.total(), None);
    }
}
