//! Deterministic fixed-size quantile sketches.
//!
//! [`P2Quantile`] is the classic P² algorithm (Jain & Chlamtac 1985):
//! five markers track one target quantile of an observation stream in
//! constant memory, adjusting marker heights by parabolic (or, at the
//! boundary, linear) interpolation. No randomness, no wall clock — the
//! final state is a pure function of the observation *sequence*, so
//! same-seed simulation runs produce bit-identical sketches (D1/D2
//! clean by construction).
//!
//! [`StreamSummary`] composes three sketches (p01 / p50 / p99) with
//! exact count / running mean / min / max into a `Copy` collector that
//! answers the same queries as `ert_sim::stats::Samples` — the
//! streaming backend behind `--stream-stats`. Being `Copy` it provably
//! owns no heap: peak memory per metric is `size_of::<StreamSummary>()`
//! bytes regardless of how many observations stream through.
//!
//! Accuracy: below five observations every query is *exact* (the five
//! marker slots double as a buffer). From five on, the tracked
//! quantiles converge with error that the testkit differential oracle
//! (`ert-testkit::streamdiff`) pins to a documented tolerance band
//! across seeds and workload shapes; see EXPERIMENTS.md § Streaming
//! statistics tolerance.

use crate::digest::{Digest, Record};

/// Sorts the first `m` slots of a five-slot buffer (insertion sort; the
/// buffer is tiny and `sort_unstable_by` on a stack array would pull in
/// the same comparisons anyway).
fn sort_prefix(buf: &mut [f64; 5], m: usize) {
    for i in 1..m {
        let mut j = i;
        while j > 0 && buf[j - 1] > buf[j] {
            buf.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// A P² sketch of one target quantile: five markers, O(1) memory,
/// deterministic.
///
/// ```
/// use ert_obs::P2Quantile;
/// let mut q = P2Quantile::new(0.5);
/// for i in 1..=1000 {
///     q.observe(i as f64);
/// }
/// let est = q.value();
/// assert!((est - 500.0).abs() < 20.0, "{est}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2Quantile {
    /// Target quantile in `[0, 1]`.
    p: f64,
    /// Observations absorbed.
    count: u64,
    /// Marker heights; below five observations, the raw buffer.
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
}

impl P2Quantile {
    /// A sketch targeting quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> P2Quantile {
        assert!((0.0..=1.0).contains(&p), "quantile out of range: {p}");
        P2Quantile {
            p,
            count: 0,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [0.0; 5],
        }
    }

    /// The target quantile this sketch tracks.
    pub fn target(&self) -> f64 {
        self.p
    }

    /// Observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorbs one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn observe(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation");
        if self.count < 5 {
            self.q[self.count as usize] = value;
            self.count += 1;
            if self.count == 5 {
                sort_prefix(&mut self.q, 5);
                self.n = [1.0, 2.0, 3.0, 4.0, 5.0];
                let p = self.p;
                self.np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0];
            }
            return;
        }
        self.count += 1;

        // Locate the cell k with q[k] <= value < q[k+1], extending the
        // extreme markers when the observation falls outside them.
        let k = if value < self.q[0] {
            self.q[0] = value;
            0
        } else if value >= self.q[4] {
            self.q[4] = value;
            3
        } else {
            let mut k = 0;
            while k < 3 && value >= self.q[k + 1] {
                k += 1;
            }
            k
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        let p = self.p;
        let dnp = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0];
        for (np, d) in self.np.iter_mut().zip(dnp) {
            *np += d;
        }

        // Adjust the three interior markers toward their desired
        // positions by one rank at most, interpolating their heights.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let parabolic = self.q[i]
                    + d / (self.n[i + 1] - self.n[i - 1])
                        * ((self.n[i] - self.n[i - 1] + d) * (self.q[i + 1] - self.q[i])
                            / (self.n[i + 1] - self.n[i])
                            + (self.n[i + 1] - self.n[i] - d) * (self.q[i] - self.q[i - 1])
                                / (self.n[i] - self.n[i - 1]));
                if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    self.q[i] = parabolic;
                } else {
                    // Linear fallback toward the neighbor in direction d.
                    let j = if d > 0.0 { i + 1 } else { i - 1 };
                    self.q[i] += d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i]);
                }
                self.n[i] += d;
            }
        }
    }

    /// Current estimate of the target quantile, or 0.0 when empty.
    /// Exact (nearest rank) below five observations.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.count as usize;
        if m >= 5 {
            return self.q[2];
        }
        let mut buf = self.q;
        sort_prefix(&mut buf, m);
        let rank = ((self.p * m as f64).ceil() as usize).max(1);
        buf[rank - 1]
    }
}

/// O(1)-memory streaming counterpart of `ert_sim::stats::Samples`:
/// exact count / mean / min / max plus P² sketches of the three
/// quantiles the reports use (p01, p50, p99).
///
/// The running mean accumulates observations in arrival order with the
/// same sequential additions `Samples::mean` performs, so `count`,
/// `mean`, and `max` are *bit-identical* to the exact collector;
/// only the interior quantiles are approximate (and exact below five
/// observations).
///
/// `StreamSummary` is `Copy`: it provably owns no heap, so peak
/// collector memory is `size_of::<StreamSummary>()` per metric no
/// matter how many observations stream through — the property the
/// 10^6-observation differential test in `ert-testkit` pins.
///
/// ```
/// use ert_obs::{Digest, Record, StreamSummary};
/// let mut s = StreamSummary::new();
/// for v in 1..=100 {
///     s.observe(v as f64);
/// }
/// assert_eq!(s.count(), 100);
/// assert_eq!(s.mean(), 50.5);
/// assert_eq!(s.max(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    q01: P2Quantile,
    q50: P2Quantile,
    q99: P2Quantile,
}

// The O(1)-memory claim, enforced at compile time: a Copy type of
// bounded size cannot grow with the observation count.
const _: () = assert!(std::mem::size_of::<StreamSummary>() <= 512);

impl StreamSummary {
    /// An empty streaming collector tracking p01 / p50 / p99.
    pub fn new() -> StreamSummary {
        StreamSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            q01: P2Quantile::new(0.01),
            q50: P2Quantile::new(0.50),
            q99: P2Quantile::new(0.99),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest observation, or 0.0 when empty (exact).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }
}

impl Default for StreamSummary {
    fn default() -> Self {
        StreamSummary::new()
    }
}

impl Record for StreamSummary {
    fn observe(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation");
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.q01.observe(value);
        self.q50.observe(value);
        self.q99.observe(value);
    }
}

impl Digest for StreamSummary {
    fn count(&self) -> u64 {
        self.count
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Snaps `p` to the nearest tracked point among min (p≈0), p01,
    /// p50, p99, and max (p≈1); a three-sketch digest cannot answer
    /// arbitrary quantiles. Exact below five observations.
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile out of range: {p}");
        if self.count == 0 {
            return 0.0;
        }
        if p < 0.005 {
            self.min
        } else if p < 0.255 {
            self.q01.value()
        } else if p < 0.745 {
            self.q50.value()
        } else if p < 0.995 {
            self.q99.value()
        } else {
            self.max
        }
    }

    /// Largest observation clamped to ≥ 0.0, mirroring
    /// `ert_sim::stats::Samples::max`.
    fn max(&self) -> f64 {
        self.max.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::Summary;

    /// Deterministic pseudo-uniform stream for accuracy tests: a plain
    /// LCG (constant seed, pure arithmetic) — not an ambient RNG.
    fn lcg_stream(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn exact_quantile(values: &[f64], p: f64) -> f64 {
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let rank = ((p * v.len() as f64).ceil() as usize).max(1);
        v[rank - 1]
    }

    #[test]
    fn empty_sketch_is_zero() {
        let q = P2Quantile::new(0.5);
        assert_eq!(q.value(), 0.0);
        assert_eq!(q.count(), 0);
        let s = StreamSummary::new();
        assert_eq!(s.quantile(0.99), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(Digest::max(&s), 0.0);
        assert!(s.is_empty());
        assert_eq!(s.summarize(), Summary::default());
    }

    #[test]
    fn below_five_observations_is_exact() {
        for n in 1..5usize {
            let values: Vec<f64> = [3.0, 1.0, 4.0, 1.5][..n].to_vec();
            let mut s = StreamSummary::new();
            for &v in &values {
                s.observe(v);
            }
            for p in [0.01, 0.5, 0.99] {
                assert_eq!(s.quantile(p), exact_quantile(&values, p), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn median_of_linear_ramp_converges() {
        let mut q = P2Quantile::new(0.5);
        for i in 1..=10_000 {
            q.observe(i as f64);
        }
        let est = q.value();
        assert!((est - 5000.0).abs() < 100.0, "{est}");
    }

    #[test]
    fn uniform_stream_quantiles_within_band() {
        for seed in [7u64, 99, 12345] {
            let values = lcg_stream(seed, 50_000);
            let mut s = StreamSummary::new();
            for &v in &values {
                s.observe(v);
            }
            for (p, tol) in [(0.01, 0.01), (0.5, 0.02), (0.99, 0.01)] {
                let exact = exact_quantile(&values, p);
                let est = s.quantile(p);
                assert!(
                    (est - exact).abs() < tol,
                    "seed={seed} p={p}: est {est} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn count_mean_min_max_are_exact() {
        let values = lcg_stream(3, 1000);
        let mut s = StreamSummary::new();
        let mut sum = 0.0;
        for &v in &values {
            s.observe(v);
            sum += v;
        }
        // Same sequential additions as the exact collector's mean.
        assert_eq!(s.mean(), sum / 1000.0);
        assert_eq!(s.count(), 1000);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(Digest::max(&s), max.max(0.0));
        assert_eq!(s.min(), min);
    }

    #[test]
    fn same_sequence_gives_bit_identical_state() {
        let values = lcg_stream(42, 5000);
        let mut a = StreamSummary::new();
        let mut b = StreamSummary::new();
        for &v in &values {
            a.observe(v);
            b.observe(v);
        }
        assert_eq!(a, b);
        assert_eq!(a.quantile(0.99).to_bits(), b.quantile(0.99).to_bits());
    }

    #[test]
    fn copy_bound_proves_o1_memory() {
        // A Copy collector cannot own heap allocations; its size is the
        // peak per-metric memory, independent of observation count.
        fn assert_copy<T: Copy>() {}
        assert_copy::<StreamSummary>();
        assert!(std::mem::size_of::<StreamSummary>() <= 512);
    }

    #[test]
    fn negative_only_stream_clamps_max_like_samples() {
        let mut s = StreamSummary::new();
        s.observe(-3.0);
        s.observe(-1.0);
        assert_eq!(Digest::max(&s), 0.0);
        assert_eq!(s.min(), -3.0);
    }

    #[test]
    #[should_panic(expected = "NaN observation")]
    fn nan_rejected() {
        StreamSummary::new().observe(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_range_enforced() {
        StreamSummary::new().quantile(-0.1);
    }
}
