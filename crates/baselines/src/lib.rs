//! The baseline congestion-control protocols the ERT paper compares
//! against (Section 5):
//!
//! * [`base`] — plain Cycloid: one closest neighbor per table slot, no
//!   indegree bounds, deterministic forwarding, no adaptation.
//! * [`ns`] — the neighbor-selection baseline after Castro et al.
//!   (NSDI '05): tables prefer the highest-capacity region member whose
//!   static indegree bound (`⌊0.5 + α·ĉ⌋`) still has room, ties broken
//!   by physical proximity. Degrees are fixed after construction.
//! * [`vs`] — the virtual-server baseline after Godfrey & Stoica
//!   (INFOCOM '05): every host runs a capacity-proportional number of
//!   virtual Cycloid nodes whose IDs are drawn one-per-consecutive
//!   interval, so a host's total ID-space share tracks its capacity.
//!   Routing crosses the (larger) virtual overlay.
//! * [`im`] — the item-movement family (after Bharambe et al.) the
//!   paper's related-work section contrasts with: light nodes leave and
//!   rejoin next to heavy ones, splitting their intervals, at the cost
//!   of ID churn.
//!
//! All are [`ProtocolSpec`] values consumed by
//! [`ert_network::Network`]; the ERT variants themselves are constructed
//! by `ert-network` ([`ProtocolSpec::ert_af`] and friends).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ert_core::ForwardPolicy;
use ert_network::{ProtocolSpec, TablePolicy, VirtualServerConfig};

/// Plain Cycloid with no congestion control (the paper's "Base").
///
/// ```
/// use ert_baselines::base;
/// let spec = base();
/// assert_eq!(spec.name, "Base");
/// assert!(!spec.adaptation);
/// ```
pub fn base() -> ProtocolSpec {
    ProtocolSpec {
        name: "Base".into(),
        table: TablePolicy::SingleClosest,
        adaptation: false,
        forwarding: ForwardPolicy::Deterministic,
        virtual_servers: None,
        item_movement: false,
    }
}

/// Capacity-biased neighbor selection (the paper's "NS", after Castro
/// et al.): static indegree bounds, highest-capacity-first neighbor
/// choice with proximity tie-breaks, fixed degrees, no adaptation.
///
/// ```
/// use ert_baselines::ns;
/// assert_eq!(ns().name, "NS");
/// ```
pub fn ns() -> ProtocolSpec {
    ProtocolSpec {
        name: "NS".into(),
        table: TablePolicy::SingleHighestCapacity,
        adaptation: false,
        forwarding: ForwardPolicy::Deterministic,
        virtual_servers: None,
        item_movement: false,
    }
}

/// Virtual servers (the paper's "VS", after Godfrey & Stoica) for a
/// network of `n` physical hosts.
///
/// ```
/// use ert_baselines::vs;
/// let spec = vs(2048);
/// assert_eq!(spec.name, "VS");
/// assert!(spec.virtual_servers.is_some());
/// ```
pub fn vs(n: usize) -> ProtocolSpec {
    ProtocolSpec {
        name: "VS".into(),
        table: TablePolicy::SingleClosest,
        adaptation: false,
        forwarding: ForwardPolicy::Deterministic,
        virtual_servers: Some(VirtualServerConfig::for_network_size(n)),
        item_movement: false,
    }
}

/// Item-movement load balancing (the related-work family the paper
/// contrasts with, after Bharambe et al.): plain Cycloid tables plus
/// periodic leave/rejoin of light nodes next to heavy ones. The paper
/// argues this "incurs high overhead for changing IDs, especially in
/// networks under churn".
///
/// ```
/// use ert_baselines::im;
/// assert_eq!(im().name, "IM");
/// assert!(im().item_movement);
/// ```
pub fn im() -> ProtocolSpec {
    ProtocolSpec {
        name: "IM".into(),
        table: TablePolicy::SingleClosest,
        adaptation: false,
        forwarding: ForwardPolicy::Deterministic,
        virtual_servers: None,
        item_movement: true,
    }
}

/// Every protocol of the paper's comparison, in presentation order:
/// Base, NS, VS, ERT/A, ERT/F, ERT/AF.
pub fn all_protocols(n: usize) -> Vec<ProtocolSpec> {
    vec![
        base(),
        ns(),
        vs(n),
        ProtocolSpec::ert_a(),
        ProtocolSpec::ert_f(),
        ProtocolSpec::ert_af(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ert_network::{Network, NetworkConfig};

    fn caps(n: usize) -> Vec<f64> {
        (0..n).map(|i| 500.0 + 250.0 * (i % 5) as f64).collect()
    }

    #[test]
    fn all_protocols_cover_the_papers_lineup() {
        let specs = all_protocols(128);
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["Base", "NS", "VS", "ERT/A", "ERT/F", "ERT/AF"]);
    }

    #[test]
    fn every_baseline_completes_a_small_run() {
        let capacities = caps(96);
        for spec in [base(), ns(), vs(96)] {
            let name = spec.name.clone();
            let cfg = NetworkConfig::for_dimension(6, 11);
            let mut net = Network::new(cfg, &capacities, spec).unwrap();
            let lookups = ert_network::network::uniform_lookup_burst(150, 96.0, 11);
            let r = net.run(&lookups, &[]);
            assert_eq!(
                r.lookups_completed, 150,
                "{name} dropped {}",
                r.lookups_dropped
            );
        }
    }

    #[test]
    fn ns_tables_respect_static_indegree_bounds_mostly() {
        // NS may exceed a bound only through the saturation fallback
        // (all region members full); with ample alpha that is rare.
        let capacities = caps(96);
        let cfg = NetworkConfig::for_dimension(6, 12);
        let net = Network::new(cfg, &capacities, ns()).unwrap();
        let topo = net.topology();
        let over = topo
            .nodes
            .iter()
            .filter(|n| n.table.indegree() as i64 > n.d_max as i64)
            .count();
        assert!(over * 10 <= topo.nodes.len(), "{over} nodes over bound");
    }

    #[test]
    fn im_relocates_light_nodes_and_completes() {
        // Relocation is threshold-triggered, so whether it fires at all
        // in a short run depends on the RNG stream; seed 9 produces
        // several relocations while staying well clear of the
        // completion bound.
        let capacities = caps(128);
        let cfg = NetworkConfig::for_dimension(6, 9);
        let mut net = Network::new(cfg, &capacities, im()).unwrap();
        let lookups = ert_network::network::uniform_lookup_burst(400, 256.0, 9);
        let r = net.run(&lookups, &[]);
        assert_eq!(r.lookups_completed + r.lookups_dropped, 400);
        assert!(
            r.lookups_completed >= 390,
            "completed {}",
            r.lookups_completed
        );
        // Relocations create extra node slots (old identity + new one).
        let topo = net.topology();
        assert!(
            topo.nodes.len() > 128,
            "no relocation happened: {} nodes",
            topo.nodes.len()
        );
        assert_eq!(topo.registry.len(), 128, "live population must be stable");
        assert!(r.maintenance_per_lookup > 0.0);
    }

    #[test]
    fn vs_creates_capacity_proportional_virtuals() {
        let capacities = vec![500.0, 500.0, 4000.0, 500.0];
        let cfg = NetworkConfig::for_dimension(4, 13);
        let net = Network::new(cfg, &capacities, vs(4)).unwrap();
        let topo = net.topology();
        let counts: Vec<usize> = topo.hosts.iter().map(|h| h.nodes.len()).collect();
        assert!(
            counts[2] > counts[0],
            "big host should run more virtuals: {counts:?}"
        );
        let total: usize = counts.iter().sum();
        assert_eq!(topo.registry.len(), total);
    }
}
