//! Deterministic parallel execution for independent simulation jobs.
//!
//! Every figure, ablation, and resilience sweep in this workspace is a
//! batch of *isolated worlds*: each run is a pure function of its
//! `(seed, protocol, tweak)` triple and shares no state with any other
//! run. That makes fan-out trivially safe — the only thing parallelism
//! could perturb is the *order* in which results come back. This crate
//! removes that last degree of freedom: jobs execute on a hand-rolled
//! `std::thread` worker pool (the vendored-compat workspace has no
//! `rayon`) and results are collected in **canonical submission
//! order**, so a batch run with 8 workers is byte-identical to the same
//! batch run with 1.
//!
//! Two properties the experiment harness relies on:
//!
//! * **Order** — [`run_labeled`] returns `results[i]` for `jobs[i]`,
//!   whatever the interleaving of worker threads was. Workers claim
//!   jobs through an atomic cursor and write into their job's dedicated
//!   result slot; nothing about scheduling can leak into the output.
//! * **Containment** — a panicking job becomes a structured
//!   [`JobPanic`] carrying the job's label (the harness labels jobs
//!   with their protocol and seed) while every other job still runs to
//!   completion and returns its result intact.
//!
//! The sharded event core composes with this pool rather than
//! replacing it: `ert-network`'s per-shard sweep passes (`--shards S`)
//! fan shard-local maxima through [`map_ordered`] and reduce with a
//! fixed-order fold, so `--jobs` and `--shards` can vary independently
//! without perturbing a single output byte (see DESIGN.md "Sharded
//! Core"; `tests/shard_determinism.rs` pins the combination).
//!
//! The pool is scoped: worker threads borrow the job list and join
//! before [`run_labeled`] returns, so jobs may borrow from the caller's
//! stack and no thread outlives the batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// D10 mirror exception: ert-par IS the sanctioned fan-out point — the
// per-slot Mutexes are the pool's claim/store handoff (held only around
// take/store, never across a job), and ert-par sits outside the
// shard-bound crates ert-lint scopes D10 to.
#![allow(clippy::disallowed_types)]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A job that panicked, rendered as a structured error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The label the job was submitted under (e.g. `"ERT/AF seed 3"`).
    pub label: String,
    /// The panic payload, when it was a string (the common case for
    /// `panic!`/`expect`); a placeholder otherwise.
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job `{}` panicked: {}", self.label, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// The default worker count: everything the hardware offers.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Renders a caught panic payload for [`JobPanic::message`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes `jobs` on up to `workers` threads and returns one result
/// per job **in submission order** — the output is byte-identical to
/// running the jobs sequentially, whatever the worker count.
///
/// A job that panics yields `Err(JobPanic)` in its slot, naming the
/// job's label; the remaining jobs are unaffected and drain cleanly
/// (the panic is caught on the worker, which then claims the next
/// job). With `workers <= 1` — or a batch of one — everything runs
/// inline on the calling thread and no threads are spawned.
pub fn run_labeled<T, F>(workers: usize, jobs: Vec<(String, F)>) -> Vec<Result<T, JobPanic>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, total);

    // Each job sits in its own slot; workers claim indices through the
    // atomic cursor, take the job out, and write the outcome into the
    // result slot of the same index. Locks are held only around the
    // take/store, never while a job runs, so a caught panic can never
    // poison them.
    let tasks: Vec<Mutex<Option<(String, F)>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<Result<T, JobPanic>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    let work = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= total {
            break;
        }
        let (label, job) = tasks[i]
            .lock()
            .expect("task lock never poisoned: held only for take()")
            .take()
            .expect("each index is claimed exactly once");
        let outcome = catch_unwind(AssertUnwindSafe(job)).map_err(|payload| JobPanic {
            label,
            message: panic_message(payload.as_ref()),
        });
        *slots[i]
            .lock()
            .expect("slot lock never poisoned: held only for store") = Some(outcome);
    };

    if workers == 1 {
        work();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(work);
            }
        });
    }

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock never poisoned")
                .expect("every index below total was claimed and filled")
        })
        .collect()
}

/// Order-preserving parallel map: applies `f` to every item on up to
/// `workers` threads and returns the outputs in item order.
///
/// # Panics
///
/// Propagates the first (in submission order) job panic as a panic
/// carrying the [`JobPanic`] rendering — use [`run_labeled`] directly
/// when panics must be contained instead.
pub fn map_ordered<I, T, F>(workers: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let f = &f;
    let jobs: Vec<(String, _)> = items
        .into_iter()
        .enumerate()
        .map(|(i, item)| (format!("item {i}"), move || f(item)))
        .collect();
    run_labeled(workers, jobs)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares_batch(count: usize) -> Vec<(String, impl FnOnce() -> usize + Send)> {
        (0..count)
            .map(|i| (format!("sq {i}"), move || i * i))
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 3, 8, 64] {
            let out = run_labeled(workers, squares_batch(37));
            let got: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let sequential: Vec<usize> = run_labeled(1, squares_batch(21))
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        for workers in 2..=8 {
            let parallel: Vec<usize> = run_labeled(workers, squares_batch(21))
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(parallel, sequential);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<Result<u32, JobPanic>> = run_labeled(4, Vec::<(String, fn() -> u32)>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_job_is_contained_and_labeled() {
        let jobs: Vec<(String, Box<dyn FnOnce() -> u64 + Send>)> = (0..6u64)
            .map(|i| {
                let job: Box<dyn FnOnce() -> u64 + Send> = if i == 3 {
                    Box::new(|| panic!("boom at three"))
                } else {
                    Box::new(move || i * 10)
                };
                (format!("job {i}"), job)
            })
            .collect();
        let out = run_labeled(4, jobs);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.label, "job 3");
                assert!(e.message.contains("boom at three"), "{e}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64 * 10, "job {i} intact");
            }
        }
    }

    #[test]
    // The literal `Err` is the point: this checks how `expect` panics
    // are rendered, not how the Result was built.
    #[allow(clippy::unnecessary_literal_unwrap)]
    fn expect_on_result_renders_its_message() {
        let jobs = vec![("doomed".to_string(), || -> u32 {
            let r: Result<u32, String> = Err("bad config".into());
            r.expect("valid scenario")
        })];
        let out = run_labeled(2, jobs);
        let e = out[0].as_ref().unwrap_err();
        assert!(
            e.message.contains("valid scenario") && e.message.contains("bad config"),
            "{e}"
        );
    }

    #[test]
    fn map_ordered_preserves_order_and_borrows() {
        let offset = 7u64;
        let out = map_ordered(3, (0..20u64).collect(), |i| i + offset);
        assert_eq!(out, (7..27u64).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        let data: Vec<u64> = (0..50).collect();
        let slice = &data;
        let jobs: Vec<(String, _)> = (0..5usize)
            .map(|chunk| {
                (format!("chunk {chunk}"), move || {
                    slice[chunk * 10..(chunk + 1) * 10].iter().sum::<u64>()
                })
            })
            .collect();
        let sums: Vec<u64> = run_labeled(2, jobs)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
