//! Protocol parameters (Table 1 / Table 2 of the paper).

use ert_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Tunable parameters of the ERT congestion-control protocol.
///
/// Defaults follow Table 2 of the paper where it specifies a value
/// (`γ_l = 1`, `μ = 1/2`, adaptation period 1 s, `α = d + 3` — supply
/// `alpha` via [`ErtParams::with_alpha_for_dim`]); `β` (the initial
/// indegree reservation fraction) is not given numerically in the paper
/// and defaults to `0.75`.
///
/// ```
/// use ert_core::ErtParams;
/// let p = ErtParams::default().with_alpha_for_dim(8);
/// assert_eq!(p.alpha, 11.0);
/// p.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErtParams {
    /// Indegree per unit of normalized capacity (`α`). The paper's
    /// default ties it to the Cycloid dimension: `α = d + 3`.
    pub alpha: f64,
    /// Fraction of the maximum indegree targeted at join time (`β`).
    pub beta: f64,
    /// Overload threshold (`γ_l`): a node is heavy when `l/c > γ_l`
    /// and light when `l/c < 1/γ_l`.
    pub gamma_l: f64,
    /// Adaptation step fraction (`μ`): `μ(l − c)` inlinks shed or grown
    /// per period.
    pub mu: f64,
    /// Period `T` between adaptation rounds.
    pub adaptation_period: SimDuration,
    /// Poll size `b` of the randomized forwarding policy.
    pub probe_width: usize,
    /// Number of ring (leaf) successors and predecessors kept as
    /// forwarding candidates.
    pub leaf_window: usize,
}

impl Default for ErtParams {
    fn default() -> Self {
        ErtParams {
            alpha: 11.0, // d + 3 at the paper's default dimension 8
            beta: 0.75,
            gamma_l: 1.0,
            mu: 0.5,
            adaptation_period: SimDuration::from_secs_f64(1.0),
            probe_width: 2,
            leaf_window: 4,
        }
    }
}

impl ErtParams {
    /// Sets `α = d + 3`, the paper's "indegree per normalized capacity"
    /// default for a Cycloid of dimension `d`.
    #[must_use]
    pub fn with_alpha_for_dim(mut self, dim: u8) -> Self {
        self.alpha = dim as f64 + 3.0;
        self
    }

    /// Checks parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint:
    /// `α > 0`, `0 < β <= 1`, `γ_l >= 1`, `0 < μ <= 1`, a positive
    /// adaptation period, `b >= 1`, and a positive leaf window.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        fn bad(which: &'static str) -> Result<(), InvalidParams> {
            Err(InvalidParams { which })
        }
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return bad("alpha must be positive and finite");
        }
        if !(self.beta > 0.0 && self.beta <= 1.0) {
            return bad("beta must be in (0, 1]");
        }
        if !(self.gamma_l >= 1.0 && self.gamma_l.is_finite()) {
            return bad("gamma_l must be at least 1");
        }
        if !(self.mu > 0.0 && self.mu <= 1.0) {
            return bad("mu must be in (0, 1]");
        }
        if self.adaptation_period == SimDuration::ZERO {
            return bad("adaptation period must be positive");
        }
        if self.probe_width == 0 {
            return bad("probe width must be at least 1");
        }
        if self.leaf_window == 0 {
            return bad("leaf window must be at least 1");
        }
        Ok(())
    }
}

/// Error returned by [`ErtParams::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidParams {
    which: &'static str,
}

impl std::fmt::Display for InvalidParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid ERT parameters: {}", self.which)
    }
}

impl std::error::Error for InvalidParams {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        ErtParams::default().validate().unwrap();
    }

    #[test]
    fn alpha_follows_dimension() {
        assert_eq!(ErtParams::default().with_alpha_for_dim(6).alpha, 9.0);
        assert_eq!(ErtParams::default().with_alpha_for_dim(10).alpha, 13.0);
    }

    #[test]
    fn rejects_bad_values() {
        let base = ErtParams::default();
        for (p, msg) in [
            (ErtParams { alpha: 0.0, ..base }, "alpha"),
            (ErtParams { beta: 0.0, ..base }, "beta"),
            (ErtParams { beta: 1.5, ..base }, "beta"),
            (
                ErtParams {
                    gamma_l: 0.5,
                    ..base
                },
                "gamma_l",
            ),
            (ErtParams { mu: 0.0, ..base }, "mu"),
            (
                ErtParams {
                    adaptation_period: SimDuration::ZERO,
                    ..base
                },
                "period",
            ),
            (
                ErtParams {
                    probe_width: 0,
                    ..base
                },
                "probe",
            ),
            (
                ErtParams {
                    leaf_window: 0,
                    ..base
                },
                "leaf",
            ),
        ] {
            let err = p.validate().unwrap_err();
            assert!(err.to_string().contains(msg), "{err} should mention {msg}");
        }
    }
}
