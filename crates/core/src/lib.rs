//! The elastic routing table (ERT) mechanism — the primary contribution
//! of *"Elastic Routing Table with Provable Performance for Congestion
//! Control in DHT Networks"* (Shen & Xu, ICDCS 2006).
//!
//! An ERT node differs from a classic DHT node in three ways:
//!
//! 1. **Capacity-aware indegree** (Section 3.2). Every node has a
//!    maximum indegree `d^∞ = ⌊0.5 + α·ĉ⌋` proportional to its
//!    normalized capacity `ĉ`. After building a basic routing table, a
//!    joining node *expands* its indegree toward `β·d^∞` by probing the
//!    nodes whose tables may legally point at it (the overlay's
//!    *reverse regions*) — see [`assign`].
//! 2. **Periodic indegree adaptation** (Section 3.3, Algorithm 3). Every
//!    period `T`, a node compares its experienced load against its
//!    capacity and sheds `μ(l − c)` inlinks (choosing victims by longest
//!    logical then physical distance) or grows `μ(c − l)` inlinks — see
//!    [`adapt`].
//! 3. **Topology-aware randomized forwarding** (Section 4, Algorithm 4).
//!    Each table slot holds a *set* of candidates; a query is forwarded
//!    through a two-choice supermarket policy with memory, carrying the
//!    set of overloaded nodes it has observed — see [`forward`].
//!
//! The mechanism is expressed over two abstractions so it runs unchanged
//! on any overlay with region-shaped slots (Cycloid, Chord, Pastry — see
//! `ert-overlay`):
//!
//! * [`table::ElasticTable`] — the per-node state: outlinks per slot,
//!   backward fingers (inlinks), and the forwarding memory;
//! * [`assign::Directory`] — the node's window onto the network
//!   (who is in a region, who has spare indegree), implemented by the
//!   simulator in `ert-network` and by mocks in tests.
//!
//! [`bounds`] evaluates the paper's Theorems 3.1–3.3 so tests and the
//! experiment harness can check that measured degrees respect the proven
//! envelopes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod assign;
pub mod bounds;
pub mod capacity;
pub mod estimate;
pub mod forward;
pub mod params;
pub mod table;

pub use adapt::{adaptation_action, select_shed_victims, AdaptAction, ShedCandidate};
pub use assign::{build_table, expand_indegree, Directory};
pub use capacity::{max_indegree, normalize_capacities};
pub use estimate::Estimator;
pub use forward::{
    choose_next, choose_next_b, choose_next_reachable, Candidate, ForwardChoice, ForwardPolicy,
};
pub use params::ErtParams;
pub use table::ElasticTable;
