//! Numeric forms of the paper's degree bounds (Theorems 3.1–3.3), used
//! by tests and the `bounds` experiment to check measured tables against
//! the proven envelopes.

/// Theorem 3.1: the initial indegree of a node with normalized capacity
/// `c` lies in `[αc/γ_c − O(1), αcγ_c + O(1)]` w.h.p. The `O(1)` slack
/// is instantiated as 1 (the rounding term in `⌊0.5 + αc⌋`).
///
/// ```
/// use ert_core::bounds::theorem31_initial_indegree_bounds;
/// let (lo, hi) = theorem31_initial_indegree_bounds(11.0, 1.0, 1.0);
/// assert_eq!((lo, hi), (10.0, 12.0));
/// ```
///
/// # Panics
///
/// Panics if any argument is non-positive, or `gamma_c < 1`.
pub fn theorem31_initial_indegree_bounds(
    alpha: f64,
    normalized_capacity: f64,
    gamma_c: f64,
) -> (f64, f64) {
    assert!(alpha > 0.0 && normalized_capacity > 0.0, "invalid inputs");
    assert!(gamma_c >= 1.0, "gamma_c must be at least 1");
    let ideal = alpha * normalized_capacity;
    ((ideal / gamma_c - 1.0).max(0.0), ideal * gamma_c + 1.0)
}

/// Theorem 3.2: under periodic adaptation the indegree converges into
/// `[c / (γ_c γ_l ν_max), c γ_c γ_l / ν_min]`, where `ν_min`/`ν_max`
/// bound the per-inlink incoming query rate.
///
/// The paper's worked example — capacity 50, per-inlink rate 0.5,
/// `γ_c = γ_l = 1` — gives an upper bound of 100:
///
/// ```
/// use ert_core::bounds::theorem32_adapted_indegree_bounds;
/// let (lo, hi) = theorem32_adapted_indegree_bounds(50.0, 1.0, 1.0, 0.5, 0.5);
/// assert_eq!(hi, 100.0);
/// assert_eq!(lo, 100.0);
/// ```
///
/// # Panics
///
/// Panics if any argument is non-positive, the gammas are below 1, or
/// `nu_min > nu_max`.
pub fn theorem32_adapted_indegree_bounds(
    capacity: f64,
    gamma_c: f64,
    gamma_l: f64,
    nu_min: f64,
    nu_max: f64,
) -> (f64, f64) {
    assert!(
        capacity > 0.0 && nu_min > 0.0 && nu_max > 0.0,
        "invalid inputs"
    );
    assert!(
        gamma_c >= 1.0 && gamma_l >= 1.0,
        "gammas must be at least 1"
    );
    assert!(nu_min <= nu_max, "nu_min must not exceed nu_max");
    (
        capacity / (gamma_c * gamma_l * nu_max),
        capacity * gamma_c * gamma_l / nu_min,
    )
}

/// Theorem 3.3's leading term: a Cycloid node's outdegree is at most
/// `2 γ_c γ_l c_max / ν_min − O(2^d / d) + O(1)` w.h.p.; the returned
/// value keeps only the (dominant, pessimistic) first term.
///
/// # Panics
///
/// Panics if any argument is non-positive or the gammas are below 1.
pub fn theorem33_outdegree_bound(c_max: f64, gamma_c: f64, gamma_l: f64, nu_min: f64) -> f64 {
    assert!(c_max > 0.0 && nu_min > 0.0, "invalid inputs");
    assert!(
        gamma_c >= 1.0 && gamma_l >= 1.0,
        "gammas must be at least 1"
    );
    2.0 * gamma_c * gamma_l * c_max / nu_min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimation_pins_theorem31_to_rounding_slack() {
        let (lo, hi) = theorem31_initial_indegree_bounds(8.0, 2.0, 1.0);
        assert_eq!((lo, hi), (15.0, 17.0));
        // ⌊0.5 + 16⌋ = 16 lies inside.
        assert!(lo <= 16.0 && 16.0 <= hi);
    }

    #[test]
    fn estimation_error_widens_theorem31() {
        let (lo1, hi1) = theorem31_initial_indegree_bounds(8.0, 1.0, 1.0);
        let (lo2, hi2) = theorem31_initial_indegree_bounds(8.0, 1.0, 2.0);
        assert!(lo2 < lo1 && hi2 > hi1);
    }

    #[test]
    fn low_capacity_lower_bound_clamps_at_zero() {
        let (lo, _) = theorem31_initial_indegree_bounds(1.0, 0.1, 2.0);
        assert_eq!(lo, 0.0);
    }

    #[test]
    fn theorem32_orders_bounds() {
        let (lo, hi) = theorem32_adapted_indegree_bounds(50.0, 1.5, 2.0, 0.2, 1.0);
        assert!(lo < hi);
        assert!((lo - 50.0 / 3.0).abs() < 1e-9);
        assert!((hi - 750.0).abs() < 1e-9);
    }

    #[test]
    fn theorem33_scales_with_max_capacity() {
        let b1 = theorem33_outdegree_bound(10.0, 1.0, 1.0, 0.5);
        let b2 = theorem33_outdegree_bound(20.0, 1.0, 1.0, 0.5);
        assert_eq!(b1, 40.0);
        assert_eq!(b2, 80.0);
    }

    #[test]
    #[should_panic(expected = "nu_min must not exceed")]
    fn reversed_rates_rejected() {
        let _ = theorem32_adapted_indegree_bounds(1.0, 1.0, 1.0, 2.0, 1.0);
    }
}
