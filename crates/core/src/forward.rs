//! Query-forwarding policies (Section 4.1, Algorithm 4 of the paper).
//!
//! Once the elastic table gives each slot a *set* of candidates, the
//! forwarding policy decides which one takes the query:
//!
//! * [`ForwardPolicy::Deterministic`] — the classic DHT choice (the
//!   candidate logically closest to the target), used by the baselines;
//! * [`ForwardPolicy::RandomWalk`] — a uniformly random candidate;
//! * [`ForwardPolicy::TwoChoice`] — the paper's policy: probe `b = 2`
//!   random candidates (one may come from per-slot *memory*), prefer a
//!   light one, break light/light ties by logical then physical
//!   distance (`topology_aware`), remember the less-loaded option after
//!   the forward, and carry the set of overloaded nodes seen so far so
//!   later hops avoid them.

use std::collections::BTreeSet;

use ert_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Which forwarding policy a protocol runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForwardPolicy {
    /// Forward to the candidate logically closest to the target.
    Deterministic,
    /// Forward to a uniformly random candidate.
    RandomWalk,
    /// The paper's b-way randomized policy (`b = 2`).
    TwoChoice {
        /// Break light/light ties by logical then physical distance
        /// instead of by load.
        topology_aware: bool,
        /// Reuse the slot's remembered least-loaded candidate as one of
        /// the two choices.
        use_memory: bool,
    },
}

/// One forwarding candidate with everything the policy may inspect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate<Id> {
    /// The candidate node.
    pub id: Id,
    /// Its current load (queries queued), learned by probing.
    pub load: f64,
    /// Its capacity in the same unit.
    pub capacity: f64,
    /// Remaining logical distance to the query target through this
    /// candidate.
    pub logical_distance: u64,
    /// Physical distance from the forwarding node to this candidate.
    pub physical_distance: f64,
}

impl<Id> Candidate<Id> {
    /// Congestion ratio `load / capacity`.
    pub fn congestion(&self) -> f64 {
        self.load / self.capacity
    }

    fn is_heavy(&self, gamma_l: f64) -> bool {
        self.congestion() > gamma_l
    }
}

/// The outcome of one forwarding decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForwardChoice<Id> {
    /// The next hop.
    pub next: Id,
    /// The candidate to remember for this slot (two-choice-with-memory:
    /// "the least loaded of that task's choices *after* allocation").
    pub new_memory: Option<Id>,
    /// Candidates discovered to be overloaded, to be appended to the
    /// query's avoid-set `A`.
    pub newly_overloaded: Vec<Id>,
    /// How many distinct candidates were probed for load.
    pub probes: usize,
}

/// Picks the next hop among `candidates` under `policy`.
///
/// `memory` is the slot's remembered candidate (ignored unless the
/// policy uses memory and the id is still a live candidate); `avoid` is
/// the query's accumulated set `A` of known-overloaded nodes — they are
/// excluded unless that would leave no candidate at all.
///
/// Returns `None` when `candidates` is empty.
///
/// ```
/// use ert_core::{choose_next, Candidate, ForwardPolicy};
/// use ert_sim::SimRng;
/// use std::collections::BTreeSet;
///
/// let mut rng = SimRng::seed_from(4);
/// let light = Candidate { id: 1, load: 1.0, capacity: 10.0, logical_distance: 3, physical_distance: 0.2 };
/// let heavy = Candidate { id: 2, load: 99.0, capacity: 10.0, logical_distance: 1, physical_distance: 0.1 };
/// let policy = ForwardPolicy::TwoChoice { topology_aware: true, use_memory: false };
/// let choice = choose_next(policy, &[light, heavy], None, &BTreeSet::new(), 1.0, &mut rng).unwrap();
/// assert_eq!(choice.next, 1);
/// assert_eq!(choice.newly_overloaded, vec![2]);
/// ```
///
/// # Panics
///
/// Panics if any candidate has non-positive capacity.
pub fn choose_next<Id: Copy + Ord + std::fmt::Debug>(
    policy: ForwardPolicy,
    candidates: &[Candidate<Id>],
    memory: Option<Id>,
    avoid: &BTreeSet<Id>,
    gamma_l: f64,
    rng: &mut SimRng,
) -> Option<ForwardChoice<Id>> {
    choose_next_b(policy, candidates, memory, avoid, gamma_l, 2, rng)
}

/// [`choose_next`] with an explicit poll size `b` for the randomized
/// policy (Section 4.1 analyzes general `b ≥ 2`; Mitzenmacher's result
/// says the `b = 2` step is the big one — the `b` ablation checks it).
///
/// # Ties at equal load
///
/// Every selection below is a `min_by`, and `min_by` keeps the
/// *earliest* of equally-minimal elements. The poll set is assembled
/// memory-first, then fresh draws in draw order, so a tie at equal
/// load (or equal congestion in the all-heavy branch, or equal
/// distances under topology-aware selection) resolves to the
/// earliest-polled candidate — the remembered node when memory is in
/// use and tied, otherwise the first RNG draw. No extra randomness is
/// consumed to break ties, which keeps the choice a pure function of
/// the inputs and the RNG stream position.
///
/// # Panics
///
/// Panics if any candidate has non-positive capacity or
/// `probe_width == 0`.
pub fn choose_next_b<Id: Copy + Ord + std::fmt::Debug>(
    policy: ForwardPolicy,
    candidates: &[Candidate<Id>],
    memory: Option<Id>,
    avoid: &BTreeSet<Id>,
    gamma_l: f64,
    probe_width: usize,
    rng: &mut SimRng,
) -> Option<ForwardChoice<Id>> {
    assert!(probe_width >= 1, "need at least one probe");
    if candidates.is_empty() {
        return None;
    }
    for c in candidates {
        assert!(
            c.capacity > 0.0,
            "candidate {:?} has non-positive capacity",
            c.id
        );
    }
    // Exclude known-overloaded nodes unless that empties the pool
    // (Algorithm 4 line 3).
    let pool: Vec<&Candidate<Id>> = {
        let filtered: Vec<&Candidate<Id>> = candidates
            .iter()
            .filter(|c| !avoid.contains(&c.id))
            .collect();
        if filtered.is_empty() {
            candidates.iter().collect()
        } else {
            filtered
        }
    };

    match policy {
        ForwardPolicy::Deterministic => {
            // `?` never fires: the pool is nonempty by the emptiness
            // check above. Propagating keeps this hot path panic-free.
            let best = pool.iter().min_by(|x, y| {
                x.logical_distance
                    .cmp(&y.logical_distance)
                    .then(x.physical_distance.total_cmp(&y.physical_distance))
            })?;
            Some(ForwardChoice {
                next: best.id,
                new_memory: None,
                newly_overloaded: Vec::new(),
                probes: 0,
            })
        }
        ForwardPolicy::RandomWalk => {
            let pick = *rng.choose(&pool)?;
            Some(ForwardChoice {
                next: pick.id,
                new_memory: None,
                newly_overloaded: Vec::new(),
                probes: 0,
            })
        }
        ForwardPolicy::TwoChoice {
            topology_aware,
            use_memory,
        } => {
            // Assemble the poll set: the remembered candidate first (it
            // is a free extra choice), then fresh random draws up to b.
            let b = probe_width.min(pool.len()).max(1);
            let mut polled: Vec<&Candidate<Id>> = Vec::with_capacity(b);
            if use_memory {
                if let Some(m) = memory {
                    if let Some(c) = pool.iter().copied().find(|c| c.id == m) {
                        polled.push(c);
                    }
                }
            }
            while polled.len() < b {
                let fresh: Vec<&Candidate<Id>> = pool
                    .iter()
                    .copied()
                    .filter(|c| !polled.iter().any(|p| p.id == c.id))
                    .collect();
                match rng.choose(&fresh) {
                    Some(&c) => polled.push(c),
                    None => break,
                }
            }
            debug_assert!(!polled.is_empty());

            let light: Vec<&Candidate<Id>> = polled
                .iter()
                .copied()
                .filter(|c| !c.is_heavy(gamma_l))
                .collect();
            let newly_overloaded: Vec<Id> = polled
                .iter()
                .filter(|c| c.is_heavy(gamma_l))
                .map(|c| c.id)
                .collect();

            // The three `?`s below never fire — `polled` is nonempty by
            // construction and `light` is checked first — and
            // `total_cmp` gives NaN a fixed order instead of a panic.
            let chosen: &Candidate<Id> = if light.is_empty() {
                // All heavy: the least heavily loaded takes it anyway.
                polled
                    .iter()
                    .copied()
                    .min_by(|x, y| x.congestion().total_cmp(&y.congestion()))?
            } else if topology_aware {
                light.iter().copied().min_by(|x, y| {
                    x.logical_distance
                        .cmp(&y.logical_distance)
                        .then(x.physical_distance.total_cmp(&y.physical_distance))
                })?
            } else {
                light
                    .iter()
                    .copied()
                    .min_by(|x, y| x.load.total_cmp(&y.load))?
            };

            // Remember the least-loaded option *after* the forward adds
            // one unit to the chosen node.
            let new_memory = polled
                .iter()
                .copied()
                .min_by(|x, y| {
                    let lx = x.load + f64::from(x.id == chosen.id);
                    let ly = y.load + f64::from(y.id == chosen.id);
                    lx.total_cmp(&ly)
                })
                .map(|c| c.id);

            Some(ForwardChoice {
                next: chosen.id,
                new_memory,
                newly_overloaded,
                probes: polled.len(),
            })
        }
    }
}

/// [`choose_next_b`] restricted to *reachable* candidates.
///
/// Fault injection (`ert-faults`) can make candidates unreachable in a
/// way the avoid-set must not model: `avoid` is a soft preference
/// (Algorithm 4 falls back to the full set when it empties the pool),
/// while a crashed or partitioned peer is a hard exclusion — forwarding
/// to it can never succeed. This wrapper drops unreachable candidates
/// first and returns `None` when nothing survives, letting the caller
/// degrade to its successor-ring fallback (or retry after backoff)
/// instead of livelocking on a dead entry.
///
/// With an empty `unreachable` set the result is identical to
/// [`choose_next_b`], RNG draw for RNG draw.
///
/// # Panics
///
/// Panics if any surviving candidate has non-positive capacity or
/// `probe_width == 0`.
#[allow(clippy::too_many_arguments)]
pub fn choose_next_reachable<Id: Copy + Ord + std::fmt::Debug>(
    policy: ForwardPolicy,
    candidates: &[Candidate<Id>],
    unreachable: &BTreeSet<Id>,
    memory: Option<Id>,
    avoid: &BTreeSet<Id>,
    gamma_l: f64,
    probe_width: usize,
    rng: &mut SimRng,
) -> Option<ForwardChoice<Id>> {
    if unreachable.is_empty() {
        return choose_next_b(policy, candidates, memory, avoid, gamma_l, probe_width, rng);
    }
    let reachable: Vec<Candidate<Id>> = candidates
        .iter()
        .filter(|c| !unreachable.contains(&c.id))
        .copied()
        .collect();
    let memory = memory.filter(|m| !unreachable.contains(m));
    choose_next_b(policy, &reachable, memory, avoid, gamma_l, probe_width, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u32, load: f64, logical: u64, physical: f64) -> Candidate<u32> {
        Candidate {
            id,
            load,
            capacity: 10.0,
            logical_distance: logical,
            physical_distance: physical,
        }
    }

    fn two_choice() -> ForwardPolicy {
        ForwardPolicy::TwoChoice {
            topology_aware: true,
            use_memory: false,
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut rng = SimRng::seed_from(1);
        let none: Option<ForwardChoice<u32>> =
            choose_next(two_choice(), &[], None, &BTreeSet::new(), 1.0, &mut rng);
        assert!(none.is_none());
    }

    #[test]
    fn deterministic_prefers_logical_then_physical() {
        let mut rng = SimRng::seed_from(2);
        let cands = [
            cand(1, 0.0, 5, 0.1),
            cand(2, 0.0, 2, 0.9),
            cand(3, 0.0, 2, 0.2),
        ];
        let c = choose_next(
            ForwardPolicy::Deterministic,
            &cands,
            None,
            &BTreeSet::new(),
            1.0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(c.next, 3);
        assert_eq!(c.probes, 0);
    }

    #[test]
    fn random_walk_covers_candidates() {
        let mut rng = SimRng::seed_from(3);
        let cands = [
            cand(1, 0.0, 1, 0.1),
            cand(2, 0.0, 1, 0.1),
            cand(3, 0.0, 1, 0.1),
        ];
        let mut seen = BTreeSet::new();
        for _ in 0..100 {
            let c = choose_next(
                ForwardPolicy::RandomWalk,
                &cands,
                None,
                &BTreeSet::new(),
                1.0,
                &mut rng,
            )
            .unwrap();
            seen.insert(c.next);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn light_node_beats_heavy_node() {
        let mut rng = SimRng::seed_from(4);
        let light = cand(1, 2.0, 9, 0.9);
        let heavy = cand(2, 50.0, 1, 0.1);
        for _ in 0..50 {
            let c = choose_next(
                two_choice(),
                &[light, heavy],
                None,
                &BTreeSet::new(),
                1.0,
                &mut rng,
            )
            .unwrap();
            assert_eq!(c.next, 1);
            assert_eq!(c.newly_overloaded, vec![2]);
        }
    }

    #[test]
    fn both_heavy_forwards_to_least_congested_and_reports_both() {
        let mut rng = SimRng::seed_from(5);
        let h1 = cand(1, 40.0, 1, 0.1);
        let h2 = cand(2, 60.0, 1, 0.1);
        let c = choose_next(
            two_choice(),
            &[h1, h2],
            None,
            &BTreeSet::new(),
            1.0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(c.next, 1);
        let mut reported = c.newly_overloaded.clone();
        reported.sort_unstable();
        assert_eq!(reported, vec![1, 2]);
    }

    #[test]
    fn both_light_topology_aware_tie_break() {
        let mut rng = SimRng::seed_from(6);
        let near = cand(1, 5.0, 2, 0.5);
        let far = cand(2, 1.0, 7, 0.1);
        for _ in 0..50 {
            let c = choose_next(
                two_choice(),
                &[near, far],
                None,
                &BTreeSet::new(),
                1.0,
                &mut rng,
            )
            .unwrap();
            assert_eq!(c.next, 1, "logical distance should win over load");
        }
        // Same logical distance: physical breaks the tie.
        let a = cand(1, 5.0, 3, 0.8);
        let b = cand(2, 1.0, 3, 0.2);
        for _ in 0..50 {
            let c =
                choose_next(two_choice(), &[a, b], None, &BTreeSet::new(), 1.0, &mut rng).unwrap();
            assert_eq!(c.next, 2);
        }
    }

    #[test]
    fn both_light_load_based_without_topology() {
        let mut rng = SimRng::seed_from(7);
        let policy = ForwardPolicy::TwoChoice {
            topology_aware: false,
            use_memory: false,
        };
        let a = cand(1, 5.0, 1, 0.1);
        let b = cand(2, 1.0, 9, 0.9);
        for _ in 0..50 {
            let c = choose_next(policy, &[a, b], None, &BTreeSet::new(), 1.0, &mut rng).unwrap();
            assert_eq!(c.next, 2, "lower load should win when not topology-aware");
        }
    }

    #[test]
    fn equal_load_tie_prefers_the_remembered_candidate() {
        // Ties resolve to the earliest-polled candidate, and the poll
        // set is assembled memory-first: a remembered node at exactly
        // equal load keeps the query (no randomness is burned on the
        // tie), regardless of the RNG stream.
        let policy = ForwardPolicy::TwoChoice {
            topology_aware: false,
            use_memory: true,
        };
        let a = cand(1, 3.0, 5, 0.9);
        let b = cand(2, 3.0, 1, 0.1);
        for seed in 0..20 {
            let mut rng = SimRng::seed_from(seed);
            for _ in 0..10 {
                let c =
                    choose_next(policy, &[a, b], Some(2), &BTreeSet::new(), 1.0, &mut rng).unwrap();
                assert_eq!(c.next, 2, "remembered candidate must win load ties");
            }
        }
    }

    #[test]
    fn equal_load_tie_without_memory_goes_to_the_first_draw() {
        // Without memory the earliest-polled candidate is the first
        // fresh RNG draw — predictable from the stream position, and
        // not biased toward either candidate across seeds.
        let policy = ForwardPolicy::TwoChoice {
            topology_aware: false,
            use_memory: false,
        };
        let a = cand(1, 3.0, 5, 0.9);
        let b = cand(2, 3.0, 1, 0.1);
        let mut winners = BTreeSet::new();
        for seed in 0..40 {
            let mut live = SimRng::seed_from(seed);
            let mut replay = SimRng::seed_from(seed);
            let refs: Vec<&Candidate<u32>> = vec![&a, &b];
            let predicted = replay.choose(&refs).copied().unwrap().id;
            let c = choose_next(policy, &[a, b], None, &BTreeSet::new(), 1.0, &mut live).unwrap();
            assert_eq!(c.next, predicted, "tie must go to the first draw");
            winners.insert(c.next);
        }
        assert_eq!(winners.len(), 2, "both candidates should win some seeds");
    }

    #[test]
    fn equal_congestion_all_heavy_tie_is_earliest_polled() {
        // The all-heavy branch selects by congestion with the same
        // earliest-polled tie rule, so a remembered heavy node tied on
        // congestion takes the forward.
        let policy = ForwardPolicy::TwoChoice {
            topology_aware: false,
            use_memory: true,
        };
        let a = cand(1, 50.0, 5, 0.9);
        let b = cand(2, 50.0, 1, 0.1);
        for seed in 0..20 {
            let mut rng = SimRng::seed_from(seed);
            let c = choose_next(policy, &[a, b], Some(2), &BTreeSet::new(), 1.0, &mut rng).unwrap();
            assert_eq!(c.next, 2);
            let mut reported = c.newly_overloaded.clone();
            reported.sort_unstable();
            assert_eq!(reported, vec![1, 2]);
        }
    }

    #[test]
    fn avoid_set_excludes_unless_it_empties_pool() {
        let mut rng = SimRng::seed_from(8);
        let a = cand(1, 0.0, 1, 0.1);
        let b = cand(2, 0.0, 1, 0.1);
        let avoid: BTreeSet<u32> = [1].into_iter().collect();
        for _ in 0..20 {
            let c = choose_next(two_choice(), &[a, b], None, &avoid, 1.0, &mut rng).unwrap();
            assert_eq!(c.next, 2);
        }
        // All candidates avoided: fall back to the full set.
        let avoid_all: BTreeSet<u32> = [1, 2].into_iter().collect();
        let c = choose_next(two_choice(), &[a, b], None, &avoid_all, 1.0, &mut rng).unwrap();
        assert!([1, 2].contains(&c.next));
    }

    #[test]
    fn memory_is_used_as_first_choice() {
        let mut rng = SimRng::seed_from(9);
        let policy = ForwardPolicy::TwoChoice {
            topology_aware: false,
            use_memory: true,
        };
        // Memory points at the lightest node; with two candidates the
        // pair is always {memory, other}, so the memory node must win.
        let light = cand(1, 0.0, 1, 0.1);
        let heavy = cand(2, 9.0, 1, 0.1);
        for _ in 0..30 {
            let c = choose_next(
                policy,
                &[light, heavy],
                Some(1),
                &BTreeSet::new(),
                1.0,
                &mut rng,
            )
            .unwrap();
            assert_eq!(c.next, 1);
        }
        // Stale memory (id 99 not a candidate) must not panic.
        let c = choose_next(
            policy,
            &[light, heavy],
            Some(99),
            &BTreeSet::new(),
            1.0,
            &mut rng,
        )
        .unwrap();
        assert!([1, 2].contains(&c.next));
    }

    #[test]
    fn memory_updates_to_less_loaded_after_allocation() {
        let mut rng = SimRng::seed_from(10);
        // Chosen node ends at load 1; other sits at load 5 -> remember chosen.
        let a = cand(1, 0.0, 1, 0.1);
        let b = cand(2, 5.0, 1, 0.1);
        let c = choose_next(two_choice(), &[a, b], None, &BTreeSet::new(), 1.0, &mut rng).unwrap();
        assert_eq!(c.next, 1);
        assert_eq!(c.new_memory, Some(1));
        // Chosen ends at load 1; other sits at 0 -> remember the other.
        let a = cand(1, 0.0, 1, 0.1);
        let b = cand(2, 0.0, 9, 0.9);
        let c = choose_next(two_choice(), &[a, b], None, &BTreeSet::new(), 1.0, &mut rng).unwrap();
        assert_eq!(c.next, 1);
        assert_eq!(c.new_memory, Some(2));
    }

    #[test]
    fn single_candidate_probes_once() {
        let mut rng = SimRng::seed_from(11);
        let only = cand(1, 3.0, 1, 0.1);
        let c = choose_next(two_choice(), &[only], None, &BTreeSet::new(), 1.0, &mut rng).unwrap();
        assert_eq!(c.next, 1);
        assert_eq!(c.probes, 1);
        assert_eq!(c.new_memory, Some(1));
    }

    #[test]
    fn congestion_accessor() {
        let c = cand(1, 5.0, 1, 0.1);
        assert_eq!(c.congestion(), 0.5);
    }

    #[test]
    fn reachable_filter_hard_excludes() {
        let mut rng = SimRng::seed_from(12);
        let a = cand(1, 0.0, 1, 0.1);
        let b = cand(2, 0.0, 1, 0.1);
        let cut: BTreeSet<u32> = [1].into_iter().collect();
        for _ in 0..20 {
            let c = choose_next_reachable(
                two_choice(),
                &[a, b],
                &cut,
                None,
                &BTreeSet::new(),
                1.0,
                2,
                &mut rng,
            )
            .unwrap();
            assert_eq!(c.next, 2);
        }
    }

    #[test]
    fn all_unreachable_yields_none_not_fallback() {
        // Unlike the avoid-set (soft), unreachability never falls back
        // to the full candidate list.
        let mut rng = SimRng::seed_from(13);
        let a = cand(1, 0.0, 1, 0.1);
        let b = cand(2, 0.0, 1, 0.1);
        let cut: BTreeSet<u32> = [1, 2].into_iter().collect();
        let c = choose_next_reachable(
            two_choice(),
            &[a, b],
            &cut,
            None,
            &BTreeSet::new(),
            1.0,
            2,
            &mut rng,
        );
        assert!(c.is_none());
    }

    #[test]
    fn unreachable_memory_is_forgotten() {
        let mut rng = SimRng::seed_from(14);
        let policy = ForwardPolicy::TwoChoice {
            topology_aware: false,
            use_memory: true,
        };
        let a = cand(1, 0.0, 1, 0.1);
        let b = cand(2, 9.0, 1, 0.1);
        let cut: BTreeSet<u32> = [1].into_iter().collect();
        // Memory points at the unreachable node; the pick must not be it.
        let c = choose_next_reachable(
            policy,
            &[a, b],
            &cut,
            Some(1),
            &BTreeSet::new(),
            1.0,
            2,
            &mut rng,
        )
        .unwrap();
        assert_eq!(c.next, 2);
    }

    #[test]
    fn empty_cut_matches_choose_next_b_exactly() {
        let cands = [
            cand(1, 1.0, 4, 0.3),
            cand(2, 3.0, 2, 0.2),
            cand(3, 0.0, 6, 0.6),
        ];
        for seed in 0..16 {
            let mut ra = SimRng::seed_from(seed);
            let mut rb = SimRng::seed_from(seed);
            let a = choose_next_b(
                two_choice(),
                &cands,
                None,
                &BTreeSet::new(),
                1.0,
                2,
                &mut ra,
            );
            let b = choose_next_reachable(
                two_choice(),
                &cands,
                &BTreeSet::new(),
                None,
                &BTreeSet::new(),
                1.0,
                2,
                &mut rb,
            );
            assert_eq!(a, b);
        }
    }
}
