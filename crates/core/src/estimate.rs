//! Capacity and network-size estimation with bounded error.
//!
//! The paper assumes each node estimates its capacity and the network
//! size within multiplicative factors `γ_c` and `γ_n` of the truth
//! (w.h.p.), citing gossip/synopsis protocols for the mechanism. We
//! model the *outcome* directly: an [`Estimator`] perturbs true values
//! by a factor drawn log-uniformly from `[1/γ, γ]`, which is exactly the
//! guarantee Theorems 3.1 and 3.2 consume.

use ert_sim::SimRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A bounded-error estimator for node capacity and network size.
///
/// ```
/// use ert_core::Estimator;
/// use ert_sim::SimRng;
/// let est = Estimator::new(1.5, 2.0);
/// let mut rng = SimRng::seed_from(9);
/// let c = est.estimate_capacity(100.0, &mut rng);
/// assert!(c >= 100.0 / 1.5 && c <= 100.0 * 1.5);
/// let n = est.estimate_network_size(2048, &mut rng);
/// assert!(n >= 1024 && n <= 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimator {
    gamma_c: f64,
    gamma_n: f64,
}

impl Default for Estimator {
    /// An exact estimator (`γ_c = γ_n = 1`), the simulation default.
    fn default() -> Self {
        Estimator {
            gamma_c: 1.0,
            gamma_n: 1.0,
        }
    }
}

impl Estimator {
    /// Creates an estimator with the given error factors.
    ///
    /// # Panics
    ///
    /// Panics unless both factors are at least 1 and finite.
    pub fn new(gamma_c: f64, gamma_n: f64) -> Self {
        assert!(
            gamma_c.is_finite() && gamma_c >= 1.0,
            "invalid gamma_c: {gamma_c}"
        );
        assert!(
            gamma_n.is_finite() && gamma_n >= 1.0,
            "invalid gamma_n: {gamma_n}"
        );
        Estimator { gamma_c, gamma_n }
    }

    /// The capacity error factor `γ_c`.
    pub fn gamma_c(&self) -> f64 {
        self.gamma_c
    }

    /// The network-size error factor `γ_n`.
    pub fn gamma_n(&self) -> f64 {
        self.gamma_n
    }

    fn factor(gamma: f64, rng: &mut SimRng) -> f64 {
        // ert-lint: allow(float-eq) — γ = 1.0 is an exact sentinel ("no estimation error") set literally by callers, never computed
        if gamma == 1.0 {
            return 1.0;
        }
        // Log-uniform over [1/gamma, gamma]: symmetric in ratio space.
        let ln = gamma.ln();
        (rng.gen::<f64>() * 2.0 * ln - ln).exp()
    }

    /// An estimate of `true_capacity` within a factor `γ_c`.
    pub fn estimate_capacity(&self, true_capacity: f64, rng: &mut SimRng) -> f64 {
        true_capacity * Self::factor(self.gamma_c, rng)
    }

    /// An estimate of the network size within a factor `γ_n` (at least 1).
    pub fn estimate_network_size(&self, true_n: usize, rng: &mut SimRng) -> usize {
        ((true_n as f64 * Self::factor(self.gamma_n, rng)).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimator_is_identity() {
        let est = Estimator::default();
        let mut rng = SimRng::seed_from(1);
        assert_eq!(est.estimate_capacity(123.0, &mut rng), 123.0);
        assert_eq!(est.estimate_network_size(2048, &mut rng), 2048);
    }

    #[test]
    fn error_stays_within_factor() {
        let est = Estimator::new(2.0, 3.0);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..1000 {
            let c = est.estimate_capacity(10.0, &mut rng);
            assert!((5.0 - 1e-9..=20.0 + 1e-9).contains(&c), "capacity {c}");
            let n = est.estimate_network_size(300, &mut rng);
            assert!((100..=900).contains(&n), "size {n}");
        }
    }

    #[test]
    fn estimates_spread_above_and_below_truth() {
        let est = Estimator::new(2.0, 2.0);
        let mut rng = SimRng::seed_from(3);
        let samples: Vec<f64> = (0..500)
            .map(|_| est.estimate_capacity(1.0, &mut rng))
            .collect();
        assert!(samples.iter().any(|&c| c > 1.1));
        assert!(samples.iter().any(|&c| c < 0.9));
    }

    #[test]
    #[should_panic(expected = "invalid gamma_c")]
    fn sub_one_factor_rejected() {
        let _ = Estimator::new(0.9, 1.0);
    }
}
