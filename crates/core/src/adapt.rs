//! Periodic indegree adaptation (Section 3.3, Algorithm 3 of the paper).

use serde::{Deserialize, Serialize};

use crate::params::ErtParams;

/// What a node should do with its indegree after one measurement period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdaptAction {
    /// Load and capacity are balanced; leave the table alone.
    Keep,
    /// Overloaded: ask this many backward fingers to drop us.
    Shed(u32),
    /// Underloaded: probe for this many additional inlinks.
    Grow(u32),
}

/// Decides the adaptation step from the load `l` experienced over the
/// last period and the (estimated) capacity `c`, per Algorithm 3:
///
/// * `l/c > γ_l` → shed `⌈μ(l − c)⌉` inlinks;
/// * `l/c < 1/γ_l` → grow `⌈μ(c − l)⌉` inlinks;
/// * otherwise keep.
///
/// Both quantities are in the same unit (queries per period), matching
/// the evaluation section where a node's capacity *is* the number of
/// queries it can hold at a time.
///
/// ```
/// use ert_core::{adaptation_action, AdaptAction, ErtParams};
/// let p = ErtParams::default(); // γ_l = 1, μ = 1/2
/// assert_eq!(adaptation_action(20.0, 10.0, &p), AdaptAction::Shed(5));
/// assert_eq!(adaptation_action(4.0, 10.0, &p), AdaptAction::Grow(3));
/// assert_eq!(adaptation_action(10.0, 10.0, &p), AdaptAction::Keep);
/// ```
///
/// # Panics
///
/// Panics if `capacity` is not strictly positive or `load` is negative.
pub fn adaptation_action(load: f64, capacity: f64, params: &ErtParams) -> AdaptAction {
    assert!(
        capacity.is_finite() && capacity > 0.0,
        "invalid capacity: {capacity}"
    );
    assert!(load.is_finite() && load >= 0.0, "invalid load: {load}");
    let g = load / capacity;
    if g > params.gamma_l {
        let shed = (params.mu * (load - capacity)).ceil() as u32;
        if shed == 0 {
            AdaptAction::Keep
        } else {
            AdaptAction::Shed(shed)
        }
    } else if g < 1.0 / params.gamma_l {
        let grow = (params.mu * (capacity - load)).ceil() as u32;
        if grow == 0 {
            AdaptAction::Keep
        } else {
            AdaptAction::Grow(grow)
        }
    } else {
        AdaptAction::Keep
    }
}

/// A backward finger considered for shedding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedCandidate<Id> {
    /// The inlink holder.
    pub id: Id,
    /// Logical (overlay-hop) distance from the owner to this holder.
    pub logical_distance: u64,
    /// Physical (coordinate) distance from the owner to this holder.
    pub physical_distance: f64,
}

/// Chooses which backward fingers to drop when shedding `count`
/// inlinks: "it chooses the one with the longest logical distance. In
/// the case with the same logical distances, it chooses the one with the
/// longest physical distance" (Section 3.3).
///
/// Returns at most `count` ids, furthest first.
///
/// ```
/// use ert_core::{select_shed_victims, ShedCandidate};
/// let fingers = vec![
///     ShedCandidate { id: "a", logical_distance: 3, physical_distance: 0.1 },
///     ShedCandidate { id: "b", logical_distance: 9, physical_distance: 0.1 },
///     ShedCandidate { id: "c", logical_distance: 9, physical_distance: 0.4 },
/// ];
/// assert_eq!(select_shed_victims(&fingers, 2), vec!["c", "b"]);
/// ```
pub fn select_shed_victims<Id: Copy>(fingers: &[ShedCandidate<Id>], count: u32) -> Vec<Id> {
    let mut sorted: Vec<&ShedCandidate<Id>> = fingers.iter().collect();
    sorted.sort_by(|x, y| {
        y.logical_distance
            .cmp(&x.logical_distance)
            .then(y.physical_distance.total_cmp(&x.physical_distance))
    });
    sorted
        .into_iter()
        .take(count as usize)
        .map(|c| c.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(gamma_l: f64, mu: f64) -> ErtParams {
        ErtParams {
            gamma_l,
            mu,
            ..ErtParams::default()
        }
    }

    #[test]
    fn balanced_band_with_gamma_above_one() {
        let p = params(2.0, 0.5);
        // g in [1/2, 2] keeps the table.
        assert_eq!(adaptation_action(5.0, 10.0, &p), AdaptAction::Keep);
        assert_eq!(adaptation_action(20.0, 10.0, &p), AdaptAction::Keep);
        assert_eq!(adaptation_action(21.0, 10.0, &p), AdaptAction::Shed(6));
        assert_eq!(adaptation_action(4.0, 10.0, &p), AdaptAction::Grow(3));
    }

    #[test]
    fn shed_and_grow_scale_with_mu() {
        let p = params(1.0, 0.25);
        assert_eq!(adaptation_action(30.0, 10.0, &p), AdaptAction::Shed(5));
        assert_eq!(adaptation_action(2.0, 10.0, &p), AdaptAction::Grow(2));
    }

    #[test]
    fn tiny_imbalance_rounds_up_to_one_link() {
        let p = params(1.0, 0.5);
        assert_eq!(adaptation_action(10.5, 10.0, &p), AdaptAction::Shed(1));
        assert_eq!(adaptation_action(9.5, 10.0, &p), AdaptAction::Grow(1));
    }

    #[test]
    fn exact_balance_keeps() {
        let p = params(1.0, 0.5);
        assert_eq!(adaptation_action(10.0, 10.0, &p), AdaptAction::Keep);
    }

    #[test]
    fn victims_ordered_by_logical_then_physical() {
        let fingers = vec![
            ShedCandidate {
                id: 1,
                logical_distance: 5,
                physical_distance: 0.9,
            },
            ShedCandidate {
                id: 2,
                logical_distance: 7,
                physical_distance: 0.1,
            },
            ShedCandidate {
                id: 3,
                logical_distance: 7,
                physical_distance: 0.2,
            },
            ShedCandidate {
                id: 4,
                logical_distance: 1,
                physical_distance: 0.5,
            },
        ];
        assert_eq!(select_shed_victims(&fingers, 3), vec![3, 2, 1]);
        // Asking for more than exist returns all.
        assert_eq!(select_shed_victims(&fingers, 10).len(), 4);
        // Zero asks for none.
        assert!(select_shed_victims(&fingers, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid capacity")]
    fn zero_capacity_rejected() {
        adaptation_action(1.0, 0.0, &ErtParams::default());
    }
}
