//! Initial table construction and indegree expansion (Section 3.2,
//! Algorithms 1–2 of the paper).
//!
//! Both operations are written against the [`Directory`] trait — the
//! joining node's window onto the network — so the same logic drives the
//! Cycloid simulator in `ert-network`, the Chord/Pastry demonstrations,
//! and mock-based unit tests.

use ert_sim::SimRng;

use crate::params::ErtParams;

/// A node's view of the network during table construction and indegree
/// expansion.
///
/// `add_link(from, slot, to)` must perform the double bookkeeping the
/// paper describes: `to` gains an inlink (and records a backward finger
/// to know `from`), `from`'s table slot gains the outlink.
pub trait Directory {
    /// Overlay node identifier.
    type Id: Copy + Eq + std::fmt::Debug;
    /// Routing-table slot identifier.
    type Slot: Copy + Eq + std::fmt::Debug;

    /// The slots of `node`'s table, each with the live candidates its
    /// region currently contains.
    fn table_slots(&self, node: Self::Id) -> Vec<(Self::Slot, Vec<Self::Id>)>;

    /// `(slot-of-theirs, candidate)` pairs whose tables may legally
    /// point at `node`, in the probe order of Algorithm 1 (cubical
    /// region first, then cyclic, then ring neighbors).
    fn inlink_candidates(&self, node: Self::Id) -> Vec<(Self::Slot, Self::Id)>;

    /// `d^∞ − d` of `node` (may be negative after adaptation shrank
    /// `d^∞` below the current indegree).
    fn spare_indegree(&self, node: Self::Id) -> i64;

    /// Current indegree of `node`.
    fn indegree(&self, node: Self::Id) -> u32;

    /// Whether `from`'s table already holds `to` in `slot`.
    fn has_link(&self, from: Self::Id, slot: Self::Slot, to: Self::Id) -> bool;

    /// Creates the double link `from → to` in `from`'s `slot`.
    fn add_link(&mut self, from: Self::Id, slot: Self::Slot, to: Self::Id);
}

/// The initial indegree a joining node aims for: `β·d^∞`, at least 1
/// (Section 3.2: "The initial indegree of node *i* is `βd_i^∞`").
///
/// ```
/// use ert_core::{assign::initial_indegree_target, ErtParams};
/// let params = ErtParams { beta: 0.75, ..ErtParams::default() };
/// assert_eq!(initial_indegree_target(&params, 12), 9);
/// assert_eq!(initial_indegree_target(&params, 1), 1);
/// ```
pub fn initial_indegree_target(params: &ErtParams, d_max: u32) -> u32 {
    ((params.beta * d_max as f64).round() as u32).max(1)
}

/// Builds `node`'s basic routing table: for every slot, picks one
/// neighbor from the slot's region, honoring the paper's restriction
/// that "only nodes with available capacity `d^∞ − d ≥ 1` can be the
/// joining node's neighbors".
///
/// When a region has members but none with spare indegree, the member
/// with the most spare (least negative) indegree is taken anyway — a
/// table without a neighbor in a populated region would break routing,
/// and the periodic adaptation will shed the excess.
///
/// Returns the number of links created.
pub fn build_table<D: Directory>(dir: &mut D, node: D::Id, rng: &mut SimRng) -> usize {
    let mut created = 0;
    for (slot, candidates) in dir.table_slots(node) {
        let candidates: Vec<D::Id> = candidates.into_iter().filter(|&c| c != node).collect();
        if candidates.is_empty() {
            continue;
        }
        let with_spare: Vec<D::Id> = candidates
            .iter()
            .copied()
            .filter(|&c| dir.spare_indegree(c) >= 1)
            .collect();
        let chosen = if with_spare.is_empty() {
            candidates
                .iter()
                .copied()
                .max_by_key(|&c| dir.spare_indegree(c))
                .expect("candidates nonempty")
        } else {
            *rng.choose(&with_spare).expect("with_spare nonempty")
        };
        if !dir.has_link(node, slot, chosen) {
            dir.add_link(node, slot, chosen);
            created += 1;
        }
    }
    created
}

/// Expands `node`'s indegree toward `target` by probing its reverse
/// regions in order (Algorithm 1): each willing candidate adds `node`
/// to the corresponding slot of its own table and `node` records a
/// backward finger.
///
/// Returns the number of inlinks gained. Stops early when the candidate
/// supply is exhausted, so the achieved indegree can fall short of
/// `target` in sparse regions.
pub fn expand_indegree<D: Directory>(dir: &mut D, node: D::Id, target: u32) -> u32 {
    let mut gained = 0;
    if dir.indegree(node) >= target {
        return 0;
    }
    for (slot, candidate) in dir.inlink_candidates(node) {
        if dir.indegree(node) >= target {
            break;
        }
        if candidate == node || dir.has_link(candidate, slot, node) {
            continue;
        }
        dir.add_link(candidate, slot, node);
        gained += 1;
    }
    gained
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A two-slot toy overlay: every node's table has slots 0 and 1;
    /// slot-0 candidates are even ids, slot-1 candidates odd ids.
    struct MockDir {
        members: Vec<u32>,
        d_max: BTreeMap<u32, i64>,
        links: Vec<(u32, u8, u32)>,
        indegree: BTreeMap<u32, u32>,
    }

    impl MockDir {
        fn new(members: &[u32], d_max: i64) -> Self {
            MockDir {
                members: members.to_vec(),
                d_max: members.iter().map(|&m| (m, d_max)).collect(),
                links: Vec::new(),
                indegree: BTreeMap::new(),
            }
        }
    }

    impl Directory for MockDir {
        type Id = u32;
        type Slot = u8;

        fn table_slots(&self, node: u32) -> Vec<(u8, Vec<u32>)> {
            let evens = self
                .members
                .iter()
                .copied()
                .filter(|m| m % 2 == 0 && *m != node);
            let odds = self
                .members
                .iter()
                .copied()
                .filter(|m| m % 2 == 1 && *m != node);
            vec![(0, evens.collect()), (1, odds.collect())]
        }

        fn inlink_candidates(&self, node: u32) -> Vec<(u8, u32)> {
            let slot = (node % 2) as u8;
            self.members
                .iter()
                .copied()
                .filter(|&m| m != node)
                .map(|m| (slot, m))
                .collect()
        }

        fn spare_indegree(&self, node: u32) -> i64 {
            self.d_max[&node] - self.indegree.get(&node).copied().unwrap_or(0) as i64
        }

        fn indegree(&self, node: u32) -> u32 {
            self.indegree.get(&node).copied().unwrap_or(0)
        }

        fn has_link(&self, from: u32, slot: u8, to: u32) -> bool {
            self.links.contains(&(from, slot, to))
        }

        fn add_link(&mut self, from: u32, slot: u8, to: u32) {
            assert!(!self.has_link(from, slot, to), "duplicate link");
            self.links.push((from, slot, to));
            *self.indegree.entry(to).or_insert(0) += 1;
        }
    }

    #[test]
    fn build_table_fills_every_populated_slot() {
        let mut dir = MockDir::new(&[2, 3, 4, 5], 10);
        let mut rng = SimRng::seed_from(1);
        let created = build_table(&mut dir, 2, &mut rng);
        assert_eq!(created, 2); // one even, one odd neighbor
        assert!(dir.links.iter().all(|&(from, _, to)| from == 2 && to != 2));
    }

    #[test]
    fn build_table_prefers_nodes_with_spare_indegree() {
        let mut dir = MockDir::new(&[2, 4, 6], 10);
        dir.d_max.insert(4, 0); // node 4 is saturated
        let mut rng = SimRng::seed_from(2);
        for _ in 0..10 {
            dir.links.clear();
            dir.indegree.clear();
            build_table(&mut dir, 6, &mut rng);
            assert_eq!(dir.links, vec![(6, 0, 2)], "must avoid saturated node 4");
        }
    }

    #[test]
    fn build_table_falls_back_when_all_saturated() {
        let mut dir = MockDir::new(&[2, 4], 10);
        dir.d_max.insert(2, 0);
        let mut rng = SimRng::seed_from(3);
        let created = build_table(&mut dir, 4, &mut rng);
        // Slot 0's only member (2) is saturated but still linked.
        assert_eq!(created, 1);
        assert_eq!(dir.links, vec![(4, 0, 2)]);
    }

    #[test]
    fn expand_indegree_reaches_target() {
        let mut dir = MockDir::new(&[1, 2, 3, 4, 5, 6], 10);
        let gained = expand_indegree(&mut dir, 2, 3);
        assert_eq!(gained, 3);
        assert_eq!(dir.indegree(2), 3);
        // Every created link points at node 2 in its probe slot.
        assert!(dir.links.iter().all(|&(_, slot, to)| to == 2 && slot == 0));
    }

    #[test]
    fn expand_indegree_stops_when_candidates_run_out() {
        let mut dir = MockDir::new(&[1, 2], 10);
        let gained = expand_indegree(&mut dir, 2, 5);
        assert_eq!(gained, 1); // only node 1 can point at 2
        assert_eq!(dir.indegree(2), 1);
    }

    #[test]
    fn expand_indegree_noop_when_already_at_target() {
        let mut dir = MockDir::new(&[1, 2, 3], 10);
        expand_indegree(&mut dir, 2, 2);
        let before = dir.links.len();
        assert_eq!(expand_indegree(&mut dir, 2, 2), 0);
        assert_eq!(dir.links.len(), before);
    }

    #[test]
    fn target_formula() {
        let p = ErtParams {
            beta: 0.5,
            ..ErtParams::default()
        };
        assert_eq!(initial_indegree_target(&p, 11), 6); // round(5.5)
        assert_eq!(initial_indegree_target(&p, 0), 1);
    }
}
