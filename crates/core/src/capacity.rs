//! Capacity normalization and the indegree formula.

/// Normalizes raw capacities so they average to 1 (`Σ ĉ_i = n`), the
/// convention Section 3.1 of the paper uses before applying `α`.
///
/// ```
/// use ert_core::normalize_capacities;
/// let normalized = normalize_capacities(&[500.0, 1500.0]);
/// assert_eq!(normalized, vec![0.5, 1.5]);
/// ```
///
/// # Panics
///
/// Panics if `raw` is empty or any capacity is non-positive or
/// non-finite.
pub fn normalize_capacities(raw: &[f64]) -> Vec<f64> {
    assert!(!raw.is_empty(), "no capacities to normalize");
    for &c in raw {
        assert!(c.is_finite() && c > 0.0, "invalid capacity: {c}");
    }
    let mean = raw.iter().sum::<f64>() / raw.len() as f64;
    raw.iter().map(|&c| c / mean).collect()
}

/// The paper's maximum-indegree formula: `d^∞ = ⌊0.5 + α·ĉ⌋`, clamped to
/// at least 1 so every node can hold at least one inlink.
///
/// ```
/// use ert_core::max_indegree;
/// assert_eq!(max_indegree(11.0, 1.0), 11);
/// assert_eq!(max_indegree(11.0, 0.5), 6);   // ⌊0.5 + 5.5⌋
/// assert_eq!(max_indegree(11.0, 0.01), 1);  // clamped
/// ```
///
/// # Panics
///
/// Panics if either argument is non-positive or non-finite.
pub fn max_indegree(alpha: f64, normalized_capacity: f64) -> u32 {
    assert!(alpha.is_finite() && alpha > 0.0, "invalid alpha: {alpha}");
    assert!(
        normalized_capacity.is_finite() && normalized_capacity > 0.0,
        "invalid capacity: {normalized_capacity}"
    );
    let d = (0.5 + alpha * normalized_capacity).floor();
    if d < 1.0 {
        1
    } else {
        d as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_preserves_ratios_and_mean() {
        let n = normalize_capacities(&[2.0, 4.0, 6.0]);
        assert_eq!(n, vec![0.5, 1.0, 1.5]);
        let mean: f64 = n.iter().sum::<f64>() / n.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_indegree_rounds_half_up() {
        // ⌊0.5 + x⌋ is round-half-up of x.
        assert_eq!(max_indegree(1.0, 1.49), 1);
        assert_eq!(max_indegree(1.0, 1.5), 2);
        assert_eq!(max_indegree(8.0, 2.0), 16);
    }

    #[test]
    #[should_panic(expected = "invalid capacity")]
    fn zero_capacity_rejected() {
        let _ = normalize_capacities(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "no capacities")]
    fn empty_input_rejected() {
        let _ = normalize_capacities(&[]);
    }
}
