//! The elastic routing table data structure.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A routing table whose slots hold *sets* of neighbors and whose size
/// varies with the owner's capacity and experienced load.
///
/// `S` identifies a table slot (for Cycloid: cubical / cyclic / leaf
/// slots; for Chord: the finger index; for Pastry: `(row, col)`); `Id`
/// is the overlay's node identifier. Besides the outlinks, the table
/// tracks:
///
/// * **backward fingers** — one per inlink, so the node knows who points
///   at it (Section 3.2: "a double link is maintained for each routing
///   table neighbor"); the node's *indegree* is their count;
/// * **forwarding memory** — per slot, the least-loaded candidate
///   remembered by the two-choice-with-memory policy (Section 4.1).
///
/// ```
/// use ert_core::ElasticTable;
/// let mut t: ElasticTable<u8, &str> = ElasticTable::new();
/// assert!(t.add_outlink(0, "n1"));
/// assert!(t.add_outlink(0, "n2"));
/// assert!(!t.add_outlink(0, "n1")); // deduplicated
/// assert_eq!(t.outlinks(0), &["n1", "n2"]);
/// assert_eq!(t.outdegree(), 2);
/// t.add_backward("n9");
/// assert_eq!(t.indegree(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticTable<S: Ord, Id> {
    slots: BTreeMap<S, Vec<Id>>,
    backward: Vec<Id>,
    memory: BTreeMap<S, Id>,
}

impl<S: Ord + Copy, Id: Copy + Eq> ElasticTable<S, Id> {
    /// Creates an empty table.
    pub fn new() -> Self {
        ElasticTable {
            slots: BTreeMap::new(),
            backward: Vec::new(),
            memory: BTreeMap::new(),
        }
    }

    /// The neighbors currently held in `slot` (empty if none).
    pub fn outlinks(&self, slot: S) -> &[Id] {
        self.slots.get(&slot).map_or(&[], Vec::as_slice)
    }

    /// Adds `id` to `slot`; returns `false` if it was already there.
    pub fn add_outlink(&mut self, slot: S, id: Id) -> bool {
        let entry = self.slots.entry(slot).or_default();
        if entry.contains(&id) {
            false
        } else {
            entry.push(id);
            true
        }
    }

    /// Removes `id` from `slot`; returns `false` if it was not there.
    pub fn remove_outlink(&mut self, slot: S, id: Id) -> bool {
        match self.slots.get_mut(&slot) {
            Some(entry) => match entry.iter().position(|&x| x == id) {
                Some(pos) => {
                    entry.remove(pos);
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Replaces the contents of `slot` wholesale (used for structural
    /// slots like leaf sets that are refreshed, not negotiated).
    pub fn set_slot(&mut self, slot: S, ids: Vec<Id>) {
        self.slots.insert(slot, ids);
    }

    /// Total number of outlinks across slots (a node appearing in two
    /// slots counts twice, matching the paper's outdegree accounting of
    /// one overlay connection per table entry).
    pub fn outdegree(&self) -> usize {
        self.slots.values().map(Vec::len).sum()
    }

    /// Iterates `(slot, neighbor)` pairs.
    pub fn iter_outlinks(&self) -> impl Iterator<Item = (S, Id)> + '_ {
        self.slots
            .iter()
            .flat_map(|(&s, ids)| ids.iter().map(move |&id| (s, id)))
    }

    /// Whether `id` appears in any slot.
    pub fn has_outlink_to(&self, id: Id) -> bool {
        self.slots.values().any(|ids| ids.contains(&id))
    }

    /// The slots with at least one neighbor.
    pub fn occupied_slots(&self) -> impl Iterator<Item = S> + '_ {
        self.slots
            .iter()
            .filter(|(_, ids)| !ids.is_empty())
            .map(|(&s, _)| s)
    }

    /// Records an inlink holder; returns `false` if already recorded.
    pub fn add_backward(&mut self, id: Id) -> bool {
        if self.backward.contains(&id) {
            false
        } else {
            self.backward.push(id);
            true
        }
    }

    /// Forgets an inlink holder; returns `false` if it was unknown.
    pub fn remove_backward(&mut self, id: Id) -> bool {
        match self.backward.iter().position(|&x| x == id) {
            Some(pos) => {
                self.backward.remove(pos);
                true
            }
            None => false,
        }
    }

    /// The recorded inlink holders.
    pub fn backward_fingers(&self) -> &[Id] {
        &self.backward
    }

    /// Number of inlinks (the node's indegree).
    pub fn indegree(&self) -> usize {
        self.backward.len()
    }

    /// The remembered least-loaded candidate for `slot`, if any.
    pub fn memory(&self, slot: S) -> Option<Id> {
        self.memory.get(&slot).copied()
    }

    /// Remembers `id` as the least-loaded candidate for `slot`.
    pub fn set_memory(&mut self, slot: S, id: Id) {
        self.memory.insert(slot, id);
    }

    /// Removes every trace of `id` (outlinks, backward finger, memory):
    /// the cleanup when a neighbor departs. Returns whether anything was
    /// removed.
    pub fn purge_peer(&mut self, id: Id) -> bool {
        let mut touched = false;
        for entry in self.slots.values_mut() {
            let before = entry.len();
            entry.retain(|&x| x != id);
            touched |= entry.len() != before;
        }
        touched |= self.remove_backward(id);
        let slots_to_clear: Vec<S> = self
            .memory
            .iter()
            .filter(|&(_, &m)| m == id)
            .map(|(&s, _)| s)
            .collect();
        for s in slots_to_clear {
            self.memory.remove(&s);
            touched = true;
        }
        touched
    }
}

impl<S: Ord + Copy, Id: Copy + Eq> Default for ElasticTable<S, Id> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlinks_dedupe_per_slot_not_across() {
        let mut t: ElasticTable<u8, u32> = ElasticTable::new();
        assert!(t.add_outlink(1, 7));
        assert!(!t.add_outlink(1, 7));
        assert!(t.add_outlink(2, 7)); // same peer in another slot is legal
        assert_eq!(t.outdegree(), 2);
        assert!(t.has_outlink_to(7));
        assert_eq!(t.iter_outlinks().collect::<Vec<_>>(), vec![(1, 7), (2, 7)]);
    }

    #[test]
    fn remove_outlink_only_touches_named_slot() {
        let mut t: ElasticTable<u8, u32> = ElasticTable::new();
        t.add_outlink(1, 7);
        t.add_outlink(2, 7);
        assert!(t.remove_outlink(1, 7));
        assert!(!t.remove_outlink(1, 7));
        assert!(t.has_outlink_to(7));
        assert_eq!(t.outdegree(), 1);
    }

    #[test]
    fn backward_fingers_track_indegree() {
        let mut t: ElasticTable<u8, u32> = ElasticTable::new();
        assert!(t.add_backward(3));
        assert!(!t.add_backward(3));
        assert!(t.add_backward(4));
        assert_eq!(t.indegree(), 2);
        assert!(t.remove_backward(3));
        assert!(!t.remove_backward(3));
        assert_eq!(t.backward_fingers(), &[4]);
    }

    #[test]
    fn memory_per_slot() {
        let mut t: ElasticTable<u8, u32> = ElasticTable::new();
        assert_eq!(t.memory(0), None);
        t.set_memory(0, 9);
        t.set_memory(1, 8);
        assert_eq!(t.memory(0), Some(9));
        assert_eq!(t.memory(1), Some(8));
    }

    #[test]
    fn purge_peer_clears_all_traces() {
        let mut t: ElasticTable<u8, u32> = ElasticTable::new();
        t.add_outlink(0, 5);
        t.add_outlink(1, 5);
        t.add_outlink(1, 6);
        t.add_backward(5);
        t.set_memory(1, 5);
        assert!(t.purge_peer(5));
        assert!(!t.has_outlink_to(5));
        assert_eq!(t.indegree(), 0);
        assert_eq!(t.memory(1), None);
        assert_eq!(t.outlinks(1), &[6]);
        assert!(!t.purge_peer(5));
    }

    #[test]
    fn set_slot_replaces() {
        let mut t: ElasticTable<u8, u32> = ElasticTable::new();
        t.add_outlink(0, 1);
        t.set_slot(0, vec![2, 3]);
        assert_eq!(t.outlinks(0), &[2, 3]);
        assert_eq!(t.occupied_slots().collect::<Vec<_>>(), vec![0]);
    }
}
