//! Deterministic fault injection for the ERT reproduction.
//!
//! The paper's churn model (Section 5.5) is the gentlest failure model
//! imaginable: nodes leave instantly and cleanly, every message is
//! delivered, and a stale link costs one fixed timeout. This crate
//! supplies the adversarial counterpart:
//!
//! * [`FaultPlan`] — a seeded, serializable schedule of [`FaultEvent`]s
//!   (crash-stop departures, host degradation, probabilistic message
//!   loss, correlated partitions, and heal events) that `ert-network`
//!   interprets alongside the churn schedule;
//! * [`RetryPolicy`] — a bounded retry budget with deterministic
//!   exponential backoff, off by default so paper runs stay
//!   byte-identical;
//! * [`ChaosPlan`] — a generator of randomized-but-reproducible fault
//!   schedules for the workspace chaos harness;
//! * [`LinkFaults`] — a link-level interpreter of the same plans for
//!   wire transports (`ert-node`'s in-memory switch): per-delivery
//!   drop/partition verdicts that consume zero randomness while no
//!   episode is active.
//!
//! Everything here is a pure function of its seed: no wall clock, no
//! ambient randomness, no platform-dependent ordering. Equal-timestamp
//! fault events carry an explicit taxonomy tie-break (see
//! [`FaultEvent::sort_key`]) so permuting a schedule never changes a
//! run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod plan;
mod retry;
mod wire;

pub use chaos::ChaosPlan;
pub use plan::{FaultEvent, FaultKind, FaultPlan};
pub use retry::RetryPolicy;
pub use wire::{Delivery, LinkFaults};
