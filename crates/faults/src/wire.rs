//! Link-level fault interpretation for wire transports.
//!
//! [`LinkFaults`] turns a [`FaultPlan`](crate::FaultPlan) into a
//! per-delivery verdict for an in-memory datagram switch: while a
//! `DropMessages` episode is active each delivery rolls the plan's
//! seeded stream against the drop probability, and while a `Partition`
//! episode is active deliveries crossing partition-class boundaries are
//! blocked outright. `Heal` clears both episodes; `Crash` and `Degrade`
//! are host-level faults outside the link layer's jurisdiction and are
//! skipped here (the transport owner models them, if at all).
//!
//! Determinism contract: an empty plan — and more generally any stretch
//! of a run with no active drop episode — consumes **zero** random
//! draws, so fault-free wire runs are byte-identical to runs built
//! without any fault machinery at all.

use ert_sim::{SimRng, SimTime};
use rand::Rng;

use crate::plan::{FaultKind, FaultPlan};

/// Verdict for one attempted link delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver the message.
    Pass,
    /// Message lost to an active probabilistic-loss episode.
    Dropped,
    /// Sender and receiver are in different partition classes.
    Partitioned,
}

/// Stateful link-fault interpreter over a sorted fault schedule.
#[derive(Debug, Clone)]
pub struct LinkFaults {
    rng: SimRng,
    events: Vec<crate::FaultEvent>,
    cursor: usize,
    /// Active loss episode: (probability, end time).
    drop: Option<(f64, SimTime)>,
    /// Active partition episode: (class count, end time).
    partition: Option<(u32, SimTime)>,
}

impl LinkFaults {
    /// Builds an interpreter for `plan`.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::validate`] failures.
    pub fn new(plan: &FaultPlan) -> Result<Self, String> {
        plan.validate()?;
        Ok(LinkFaults {
            rng: SimRng::seed_from(plan.seed).fork("link-faults"),
            events: plan.sorted_events(),
            cursor: 0,
            drop: None,
            partition: None,
        })
    }

    /// Advances the episode state to `now`, consuming due events.
    fn advance(&mut self, now: SimTime) {
        while let Some(ev) = self.events.get(self.cursor) {
            if ev.at > now {
                break;
            }
            match ev.kind {
                FaultKind::Heal => {
                    self.drop = None;
                    self.partition = None;
                }
                FaultKind::DropMessages { p, window } => {
                    self.drop = Some((p, ev.at + window));
                }
                FaultKind::Partition { groups, window } => {
                    self.partition = Some((groups, ev.at + window));
                }
                // Host-level faults; the link layer does not interpret
                // them (see module docs).
                FaultKind::Crash | FaultKind::Degrade { .. } => {}
            }
            self.cursor += 1;
        }
        if let Some((_, until)) = self.drop {
            if now >= until {
                self.drop = None;
            }
        }
        if let Some((_, until)) = self.partition {
            if now >= until {
                self.partition = None;
            }
        }
    }

    /// Is a delivery from host `from_idx` to host `to_idx` at `now`
    /// delivered, lost, or blocked? Host indices (not ring ids) define
    /// partition classes — `idx % groups` — matching the network
    /// simulator's convention.
    pub fn deliver(&mut self, now: SimTime, from_idx: usize, to_idx: usize) -> Delivery {
        self.advance(now);
        if let Some((groups, _)) = self.partition {
            let g = groups.max(1) as usize;
            if from_idx % g != to_idx % g {
                return Delivery::Partitioned;
            }
        }
        if let Some((p, _)) = self.drop {
            // The roll is consumed only while an episode is active, so
            // fault-free stretches draw nothing (byte-identity promise).
            if self.rng.gen::<f64>() < p {
                return Delivery::Dropped;
            }
        }
        Delivery::Pass
    }

    /// Is a partition episode currently separating these hosts? Unlike
    /// [`LinkFaults::deliver`] this never consumes a random draw — it is
    /// the connectivity check for the reliable-RPC lane, which is exempt
    /// from probabilistic loss.
    pub fn reachable(&mut self, now: SimTime, from_idx: usize, to_idx: usize) -> bool {
        self.advance(now);
        match self.partition {
            Some((groups, _)) => {
                let g = groups.max(1) as usize;
                from_idx % g == to_idx % g
            }
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultEvent, FaultPlan};
    use ert_sim::SimDuration;

    fn at(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn empty_plan_always_passes_and_draws_nothing() {
        let mut lf = LinkFaults::new(&FaultPlan::new(7)).unwrap();
        let baseline = lf.rng.clone().gen::<u64>();
        for i in 0..100 {
            assert_eq!(lf.deliver(at(i as f64), i, i + 1), Delivery::Pass);
        }
        // The stream was never touched.
        assert_eq!(lf.rng.gen::<u64>(), baseline);
    }

    #[test]
    fn drop_episode_is_probabilistic_and_expires() {
        let mut plan = FaultPlan::new(11);
        plan.events.push(FaultEvent {
            at: at(1.0),
            kind: FaultKind::DropMessages {
                p: 1.0,
                window: SimDuration::from_secs_f64(2.0),
            },
        });
        let mut lf = LinkFaults::new(&plan).unwrap();
        assert_eq!(lf.deliver(at(0.5), 0, 1), Delivery::Pass);
        assert_eq!(lf.deliver(at(1.5), 0, 1), Delivery::Dropped);
        assert_eq!(lf.deliver(at(3.5), 0, 1), Delivery::Pass);
    }

    #[test]
    fn partition_blocks_cross_class_until_heal() {
        let mut plan = FaultPlan::new(13);
        plan.events.push(FaultEvent {
            at: at(1.0),
            kind: FaultKind::Partition {
                groups: 2,
                window: SimDuration::from_secs_f64(10.0),
            },
        });
        plan.events.push(FaultEvent {
            at: at(4.0),
            kind: FaultKind::Heal,
        });
        let mut lf = LinkFaults::new(&plan).unwrap();
        assert_eq!(lf.deliver(at(2.0), 0, 1), Delivery::Partitioned);
        assert_eq!(lf.deliver(at(2.0), 0, 2), Delivery::Pass);
        assert!(!lf.reachable(at(2.0), 2, 3));
        assert_eq!(lf.deliver(at(5.0), 0, 1), Delivery::Pass);
    }
}
