//! Randomized-but-reproducible fault schedules for the chaos harness.

use ert_sim::{SimDuration, SimRng, SimTime};
use rand::Rng;

use crate::plan::{FaultEvent, FaultKind, FaultPlan};

/// Generator of chaos schedules: a [`FaultPlan`] sampled from a seed
/// and an intensity knob.
///
/// `intensity` in `[0, 1]` scales both the event rate and the severity
/// of each fault (loss probabilities, degrade factors, episode
/// lengths). Intensity 0 yields an empty plan; intensity 1 is a hostile
/// environment that still leaves the overlay routable (crashes are
/// capped so the membership never collapses — the network additionally
/// refuses to crash below 3 live hosts).
///
/// The same `(seed, intensity, horizon)` triple always yields the same
/// plan, so chaos findings reproduce from their logged parameters.
///
/// ```
/// use ert_faults::ChaosPlan;
/// let a = ChaosPlan::generate(42, 0.5);
/// let b = ChaosPlan::generate(42, 0.5);
/// assert_eq!(a, b);
/// assert!(!a.is_empty());
/// assert_eq!(ChaosPlan::generate(42, 0.0).events.len(), 0);
/// ```
pub struct ChaosPlan;

/// Default schedule horizon: matches the ~10 sim-seconds a quick
/// scenario's injection phase covers.
const DEFAULT_HORIZON_SECS: f64 = 10.0;

impl ChaosPlan {
    /// Generates a chaos schedule over the default 10 s horizon.
    pub fn generate(seed: u64, intensity: f64) -> FaultPlan {
        Self::generate_over(
            seed,
            intensity,
            SimTime::ZERO + SimDuration::from_secs_f64(DEFAULT_HORIZON_SECS),
        )
    }

    /// Generates a chaos schedule over `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics when `intensity` is not finite.
    pub fn generate_over(seed: u64, intensity: f64, horizon: SimTime) -> FaultPlan {
        assert!(intensity.is_finite(), "intensity must be finite");
        let intensity = intensity.clamp(0.0, 1.0);
        let mut plan = FaultPlan::new(seed);
        if intensity <= 0.0 || horizon == SimTime::ZERO {
            return plan;
        }
        let mut rng = SimRng::seed_from(seed ^ 0x000c_4a05_u64.rotate_left(17));
        let horizon_secs = horizon.as_micros() as f64 / 1e6;
        // Up to ~2 fault events per sim-second at full intensity.
        let rate = (2.0 * intensity).max(0.05);
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_secs_f64(rng.exp_secs(rate));
            if t >= horizon {
                break;
            }
            let kind = Self::sample_kind(&mut rng, intensity, horizon_secs);
            plan.events.push(FaultEvent { at: t, kind });
        }
        debug_assert!(plan.validate().is_ok());
        plan
    }

    /// Draws one fault kind with intensity-scaled severity. Weights:
    /// crash 30%, degrade 25%, message loss 20%, partition 10%,
    /// heal 15%.
    fn sample_kind(rng: &mut SimRng, intensity: f64, horizon_secs: f64) -> FaultKind {
        // Episodes last 5–30% of the horizon, stretched by intensity.
        let window = |rng: &mut SimRng| {
            let frac = 0.05 + 0.25 * intensity * rng.gen::<f64>();
            SimDuration::from_secs_f64((frac * horizon_secs).max(1e-6))
        };
        let roll: f64 = rng.gen();
        if roll < 0.30 {
            FaultKind::Crash
        } else if roll < 0.55 {
            FaultKind::Degrade {
                factor: 1.5 + 4.5 * intensity * rng.gen::<f64>(),
            }
        } else if roll < 0.75 {
            FaultKind::DropMessages {
                p: (0.05 + 0.45 * intensity * rng.gen::<f64>()).min(0.5),
                window: window(rng),
            }
        } else if roll < 0.85 {
            FaultKind::Partition {
                groups: 2 + (rng.gen::<f64>() * 2.0 * intensity) as u32,
                window: window(rng),
            }
        } else {
            FaultKind::Heal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = ChaosPlan::generate(7, 0.8);
        let b = ChaosPlan::generate(7, 0.8);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosPlan::generate(1, 0.8);
        let b = ChaosPlan::generate(2, 0.8);
        assert_ne!(a, b);
    }

    #[test]
    fn generated_plans_always_validate() {
        for seed in 0..32 {
            for &i in &[0.1, 0.5, 1.0] {
                let plan = ChaosPlan::generate(seed, i);
                plan.validate()
                    .unwrap_or_else(|e| panic!("seed {seed} intensity {i}: {e}"));
                assert!(plan
                    .events
                    .iter()
                    .all(|e| e.at < SimTime::ZERO + SimDuration::from_secs_f64(10.0)));
            }
        }
    }

    #[test]
    fn zero_intensity_is_empty() {
        assert!(ChaosPlan::generate(3, 0.0).is_empty());
    }

    #[test]
    fn out_of_range_intensity_is_clamped() {
        let hot = ChaosPlan::generate(5, 7.5);
        let one = ChaosPlan::generate(5, 1.0);
        assert_eq!(hot, one);
        assert!(ChaosPlan::generate(5, -3.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "intensity must be finite")]
    fn nan_intensity_panics() {
        ChaosPlan::generate(1, f64::NAN);
    }

    #[test]
    fn intensity_scales_event_count() {
        let mild: usize = (0..16)
            .map(|s| ChaosPlan::generate(s, 0.1).events.len())
            .sum();
        let hot: usize = (0..16)
            .map(|s| ChaosPlan::generate(s, 1.0).events.len())
            .sum();
        assert!(hot > 2 * mild, "mild {mild} vs hot {hot}");
    }

    #[test]
    fn horizon_bounds_event_times() {
        let horizon = SimTime::ZERO + SimDuration::from_secs_f64(3.0);
        let plan = ChaosPlan::generate_over(9, 1.0, horizon);
        assert!(plan.events.iter().all(|e| e.at < horizon));
        assert!(ChaosPlan::generate_over(9, 1.0, SimTime::ZERO).is_empty());
    }
}
