//! Fault schedules: what goes wrong, and when.

use ert_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One kind of injected fault.
///
/// The taxonomy follows the failure models of Kong et al. (*A General
/// Framework for Scalability and Performance Analysis of DHT Routing
/// Systems*) and Roos et al. (*Comprehending Kademlia Routing*): crash-
/// stop departures, slow ("degraded") peers, lossy links, and correlated
/// partition events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A uniformly random live host crash-stops: it leaves the overlay
    /// with **no successor handoff**, and every query queued or in
    /// service on it is lost (accounted as `lookups_failed`).
    Crash,
    /// A uniformly random live host degrades: its service times are
    /// multiplied by `factor` until the next [`FaultKind::Heal`].
    Degrade {
        /// Service-time inflation factor (must be ≥ 1 and finite).
        factor: f64,
    },
    /// Per-link message loss: for `window` sim-time after the event,
    /// each forwarded query is independently lost with probability `p`
    /// (the sender discovers the loss after a timeout and may retry
    /// under the configured `RetryPolicy`).
    DropMessages {
        /// Per-message loss probability in `[0, 1]`.
        p: f64,
        /// How long the lossy episode lasts.
        window: SimDuration,
    },
    /// A correlated partition: hosts are assigned to `groups` classes by
    /// `host_index % groups`, and for `window` sim-time any forward
    /// crossing a class boundary is blocked. Blocked forwards behave
    /// like lost messages (timeout, then retry or fail).
    Partition {
        /// Number of partition classes (must be ≥ 2).
        groups: u32,
        /// How long the partition lasts.
        window: SimDuration,
    },
    /// Clears every active fault effect: degraded hosts recover, loss
    /// and partition episodes end. (Crashed hosts stay gone — crash is
    /// a membership event, not an episode.)
    Heal,
}

impl FaultKind {
    /// Taxonomy rank used to tie-break equal-timestamp events:
    /// `Heal < Crash < Degrade < DropMessages < Partition`. Healing
    /// first means a schedule that heals and re-injects at the same
    /// instant nets out to the re-injection, which is the least
    /// surprising reading.
    fn rank(self) -> u8 {
        match self {
            FaultKind::Heal => 0,
            FaultKind::Crash => 1,
            FaultKind::Degrade { .. } => 2,
            FaultKind::DropMessages { .. } => 3,
            FaultKind::Partition { .. } => 4,
        }
    }

    /// Parameter bits for the final tie-break level, so even two events
    /// of the same kind at the same instant order deterministically.
    fn param_bits(self) -> (u64, u64) {
        match self {
            FaultKind::Heal | FaultKind::Crash => (0, 0),
            FaultKind::Degrade { factor } => (factor.to_bits(), 0),
            FaultKind::DropMessages { p, window } => (p.to_bits(), window.as_micros()),
            FaultKind::Partition { groups, window } => (u64::from(groups), window.as_micros()),
        }
    }

    /// The kind's stable tag, matching the serialized variant name —
    /// handy for telemetry and log filtering.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::Crash => "Crash",
            FaultKind::Degrade { .. } => "Degrade",
            FaultKind::DropMessages { .. } => "DropMessages",
            FaultKind::Partition { .. } => "Partition",
            FaultKind::Heal => "Heal",
        }
    }

    /// Validates the kind's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            FaultKind::Crash | FaultKind::Heal => Ok(()),
            FaultKind::Degrade { factor } => {
                if factor.is_finite() && factor >= 1.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "degrade factor must be finite and >= 1, got {factor}"
                    ))
                }
            }
            FaultKind::DropMessages { p, window } => {
                if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                    return Err(format!("drop probability must be in [0, 1], got {p}"));
                }
                if window == SimDuration::ZERO {
                    return Err("drop window must be positive".into());
                }
                Ok(())
            }
            FaultKind::Partition { groups, window } => {
                if groups < 2 {
                    return Err(format!("partition needs >= 2 groups, got {groups}"));
                }
                if window == SimDuration::ZERO {
                    return Err("partition window must be positive".into());
                }
                Ok(())
            }
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// The total ordering key: time first, then taxonomy rank, then
    /// parameter bits. Sorting a schedule by this key makes the applied
    /// order a pure function of the schedule's *contents* — permuting a
    /// plan's event list never changes a run.
    pub fn sort_key(&self) -> (SimTime, u8, u64, u64) {
        let (a, b) = self.kind.param_bits();
        (self.at, self.kind.rank(), a, b)
    }
}

/// A seeded, serializable fault schedule.
///
/// The `seed` names the interpretation stream: the network draws every
/// fault-time random choice (which host crashes, which messages drop)
/// from a generator forked off this seed, independent of the topology /
/// forwarding / workload streams. An empty plan draws nothing, so a run
/// with an empty plan is byte-identical to one that never heard of
/// faults.
///
/// ```
/// use ert_faults::{FaultEvent, FaultKind, FaultPlan};
/// use ert_sim::SimTime;
/// let mut plan = FaultPlan::new(7);
/// plan.events.push(FaultEvent { at: SimTime::from_micros(1_000_000), kind: FaultKind::Crash });
/// plan.validate().unwrap();
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault-interpretation RNG stream.
    pub seed: u64,
    /// The scheduled faults (any order; interpretation sorts by
    /// [`FaultEvent::sort_key`]).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given interpretation seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in canonical applied order (see
    /// [`FaultEvent::sort_key`]).
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut out = self.events.clone();
        out.sort_by_key(FaultEvent::sort_key);
        out
    }

    /// Validates every event's parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint, prefixed with the
    /// offending event's index.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            e.kind
                .validate()
                .map_err(|msg| format!("fault event {i}: {msg}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    #[test]
    fn empty_plan_is_default() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        p.validate().unwrap();
        assert_eq!(p, FaultPlan::new(0));
    }

    #[test]
    fn sorted_events_tie_break_by_taxonomy_then_params() {
        let t = at(500);
        let plan = FaultPlan {
            seed: 1,
            events: vec![
                FaultEvent {
                    at: t,
                    kind: FaultKind::Partition {
                        groups: 2,
                        window: SimDuration::from_secs_f64(1.0),
                    },
                },
                FaultEvent {
                    at: t,
                    kind: FaultKind::Degrade { factor: 3.0 },
                },
                FaultEvent {
                    at: t,
                    kind: FaultKind::Heal,
                },
                FaultEvent {
                    at: t,
                    kind: FaultKind::Degrade { factor: 2.0 },
                },
                FaultEvent {
                    at: at(100),
                    kind: FaultKind::Crash,
                },
            ],
        };
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0].kind, FaultKind::Crash); // earlier time wins
        assert_eq!(sorted[1].kind, FaultKind::Heal);
        assert_eq!(sorted[2].kind, FaultKind::Degrade { factor: 2.0 });
        assert_eq!(sorted[3].kind, FaultKind::Degrade { factor: 3.0 });
        assert!(matches!(sorted[4].kind, FaultKind::Partition { .. }));
    }

    #[test]
    fn permuting_a_plan_does_not_change_its_canonical_order() {
        let events = vec![
            FaultEvent {
                at: at(9),
                kind: FaultKind::Crash,
            },
            FaultEvent {
                at: at(9),
                kind: FaultKind::Heal,
            },
            FaultEvent {
                at: at(9),
                kind: FaultKind::DropMessages {
                    p: 0.1,
                    window: SimDuration::from_secs_f64(0.5),
                },
            },
        ];
        let mut reversed = events.clone();
        reversed.reverse();
        let a = FaultPlan { seed: 3, events };
        let b = FaultPlan {
            seed: 3,
            events: reversed,
        };
        assert_eq!(a.sorted_events(), b.sorted_events());
    }

    #[test]
    fn rejects_bad_parameters() {
        for kind in [
            FaultKind::Degrade { factor: 0.5 },
            FaultKind::Degrade { factor: f64::NAN },
            FaultKind::DropMessages {
                p: 1.5,
                window: SimDuration::from_secs_f64(1.0),
            },
            FaultKind::DropMessages {
                p: 0.2,
                window: SimDuration::ZERO,
            },
            FaultKind::Partition {
                groups: 1,
                window: SimDuration::from_secs_f64(1.0),
            },
            FaultKind::Partition {
                groups: 4,
                window: SimDuration::ZERO,
            },
        ] {
            assert!(kind.validate().is_err(), "{kind:?} should be rejected");
            let plan = FaultPlan {
                seed: 0,
                events: vec![FaultEvent { at: at(1), kind }],
            };
            let err = plan.validate().unwrap_err();
            assert!(err.starts_with("fault event 0:"), "{err}");
        }
        FaultKind::Crash.validate().unwrap();
        FaultKind::Heal.validate().unwrap();
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = FaultPlan {
            seed: 11,
            events: vec![
                FaultEvent {
                    at: at(250_000),
                    kind: FaultKind::DropMessages {
                        p: 0.25,
                        window: SimDuration::from_secs_f64(2.0),
                    },
                },
                FaultEvent {
                    at: at(750_000),
                    kind: FaultKind::Heal,
                },
            ],
        };
        let json = serde::json::to_string(&plan);
        assert!(json.contains("\"seed\":11"), "{json}");
        assert!(json.contains("DropMessages"), "{json}");
    }
}
