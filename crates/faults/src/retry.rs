//! Bounded retry with deterministic exponential backoff.

use ert_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How a sender reacts when a forward attempt is lost to a fault
/// (message drop or partition block).
///
/// `max_attempts` counts *total* tries per hop, so the default of 1
/// means "no retries": the first loss fails the lookup, exactly the
/// behaviour paper runs had before faults existed. Setting
/// `max_attempts = k > 1` grants `k - 1` retries, the `i`-th of which
/// waits `base · factor^(i-1)` on top of the regular timeout penalty.
/// The backoff is a pure function of the attempt number — no jitter —
/// so retried runs stay bit-reproducible.
///
/// ```
/// use ert_faults::RetryPolicy;
/// use ert_sim::SimDuration;
/// let p = RetryPolicy::default();
/// assert!(!p.enabled());
/// let r = RetryPolicy::standard();
/// assert!(r.enabled());
/// assert_eq!(r.backoff(1), SimDuration::from_secs_f64(0.25));
/// assert_eq!(r.backoff(2), SimDuration::from_secs_f64(0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total forward attempts per hop (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: SimDuration,
    /// Multiplier applied to the backoff on each further retry.
    pub factor: f64,
}

impl Default for RetryPolicy {
    /// Retries off: one attempt, no backoff. Paper runs use this.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: SimDuration::ZERO,
            factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A sensible on-switch for chaos runs: 4 attempts, 0.25 s base,
    /// doubling.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: SimDuration::from_secs_f64(0.25),
            factor: 2.0,
        }
    }

    /// Whether any retries are granted at all.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff to wait after the `failed`-th failed attempt
    /// (`failed >= 1`): `base · factor^(failed-1)`, rounded to the
    /// microsecond grid. Saturates instead of overflowing for absurd
    /// inputs.
    pub fn backoff(&self, failed: u32) -> SimDuration {
        if !self.enabled() || failed == 0 {
            return SimDuration::ZERO;
        }
        let scale = self.factor.powi(failed.saturating_sub(1).min(64) as i32);
        let micros = (self.base.as_micros() as f64 * scale).round();
        if micros.is_finite() && micros >= 0.0 {
            SimDuration::from_micros(micros.min(u64::MAX as f64) as u64)
        } else {
            SimDuration::ZERO
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint. A disabled
    /// policy (`max_attempts == 1`) is always valid regardless of the
    /// unused backoff fields; an enabled one needs a positive base and
    /// a finite factor ≥ 1.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("retry max_attempts must be >= 1 (1 = retries off)".into());
        }
        if self.enabled() {
            if self.base == SimDuration::ZERO {
                return Err("retry base backoff must be positive when retries are on".into());
            }
            if !(self.factor.is_finite() && self.factor >= 1.0) {
                return Err(format!(
                    "retry backoff factor must be finite and >= 1, got {}",
                    self.factor
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_valid() {
        let p = RetryPolicy::default();
        assert!(!p.enabled());
        p.validate().unwrap();
        assert_eq!(p.backoff(1), SimDuration::ZERO);
        assert_eq!(p.backoff(3), SimDuration::ZERO);
    }

    #[test]
    fn backoff_grows_geometrically() {
        let p = RetryPolicy {
            max_attempts: 5,
            base: SimDuration::from_secs_f64(0.1),
            factor: 3.0,
        };
        p.validate().unwrap();
        assert_eq!(p.backoff(1).as_micros(), 100_000);
        assert_eq!(p.backoff(2).as_micros(), 300_000);
        assert_eq!(p.backoff(3).as_micros(), 900_000);
        assert_eq!(p.backoff(0), SimDuration::ZERO);
    }

    #[test]
    fn backoff_is_deterministic() {
        let p = RetryPolicy::standard();
        for k in 1..6 {
            assert_eq!(p.backoff(k), p.backoff(k));
        }
    }

    #[test]
    fn rejects_zero_attempts() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_enabled_with_zero_base() {
        let p = RetryPolicy {
            max_attempts: 3,
            base: SimDuration::ZERO,
            factor: 2.0,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_enabled_with_bad_factor() {
        for factor in [0.5, f64::NAN, f64::INFINITY] {
            let p = RetryPolicy {
                max_attempts: 3,
                base: SimDuration::from_secs_f64(0.1),
                factor,
            };
            assert!(p.validate().is_err(), "factor {factor} should be rejected");
        }
    }

    #[test]
    fn huge_attempt_counts_saturate() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base: SimDuration::from_secs_f64(1.0),
            factor: 10.0,
        };
        // Must not panic or overflow; the exponent is clamped.
        let d = p.backoff(u32::MAX);
        assert!(d.as_micros() > 0);
    }
}
