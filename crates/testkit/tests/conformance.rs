//! The cross-layer conformance suite: golden-master shape regression
//! against committed results, fresh quick-mode regeneration, and the
//! differential oracles. CI runs this as the `conformance` step
//! (release mode — the fresh sweeps are real simulations).

use ert_testkit::diff::{self};
use ert_testkit::envelopes;
use ert_testkit::golden::{self, GoldenReport};
use ert_testkit::specs;

/// Every committed `results/*.csv` a spec names must parse, pass the
/// tier gate it was calibrated for, and satisfy its checks. The
/// committed files mix scales (figure sweeps are quick-scale, the
/// service axis and Fig. 7 are paper-scale), so both tiers of the
/// catalogue exercise here.
#[test]
fn committed_results_satisfy_catalogue() {
    let report = golden::check_committed(&specs::catalogue(), &golden::results_dir());
    assert!(
        report.missing.is_empty(),
        "catalogue names uncommitted tables: {:?}",
        report.missing
    );
    assert!(
        report.violations.is_empty(),
        "committed results violate the catalogue:\n{}",
        report.summary()
    );
    assert!(
        report.evaluated.len() >= 10,
        "suspiciously few specs evaluated ({}) — did the tier gates rot?\n{}",
        report.evaluated.len(),
        report.summary()
    );
}

/// A fresh quick-scale run of the figure harness must satisfy every
/// quick-tier spec: the shape claims hold on regenerated data, not
/// just on the committed snapshot.
#[test]
fn fresh_quick_run_satisfies_catalogue() {
    let tables = golden::quick_tables();
    let report = golden::check_tables(&specs::catalogue(), &tables);
    assert!(
        report.violations.is_empty(),
        "fresh quick sweep violates the catalogue:\n{}",
        report.summary()
    );
    assert!(
        report.evaluated.len() >= 10,
        "suspiciously few specs evaluated ({}) on the fresh sweep\n{}",
        report.evaluated.len(),
        report.summary()
    );
}

/// A fresh quick-scale adversarial sweep (the `adversarial --quick`
/// recipe) must satisfy every quick-tier `adv_*` spec: the attack
/// shapes — liar immunity/containment, the defector latency penalty,
/// Sybil indegree concentration, flood spike-and-drain — hold on
/// regenerated data, not just on the committed full-scale snapshot.
#[test]
fn fresh_quick_adversarial_run_satisfies_catalogue() {
    let adv: Vec<_> = specs::catalogue()
        .into_iter()
        .filter(|s| s.table.starts_with("adv_"))
        .collect();
    assert!(
        adv.len() >= 4,
        "adversarial catalogue shrank: {}",
        adv.len()
    );
    let report = golden::check_tables(&adv, &golden::adversarial_quick_tables());
    assert!(
        report.violations.is_empty(),
        "fresh quick adversarial sweep violates the catalogue:\n{}",
        report.summary()
    );
    assert!(
        report.missing.is_empty(),
        "adversarial specs name tables the sweep does not emit: {:?}",
        report.missing
    );
    assert!(
        report.evaluated.len() >= 4,
        "suspiciously few adversarial specs evaluated ({})\n{}",
        report.evaluated.len(),
        report.summary()
    );
}

/// The machinery must be falsifiable: a deliberately inverted claim
/// ("NS beats Base") fails against both the committed results and a
/// fresh run.
#[test]
fn inverted_spec_demonstrably_fails() {
    let inverted = vec![specs::inverted_example()];

    let committed = golden::check_committed(&inverted, &golden::results_dir());
    assert_eq!(committed.evaluated.len(), 1);
    assert!(
        !committed.violations.is_empty(),
        "inverted spec passed against committed results — the oracle is vacuous"
    );

    let fresh = golden::check_tables(&inverted, &golden::quick_tables());
    assert!(
        !fresh.violations.is_empty(),
        "inverted spec passed against a fresh run — the oracle is vacuous"
    );
}

/// Theorem-table goldens and figure goldens share one [`GoldenReport`]
/// path; spot-check the bookkeeping split.
#[test]
fn golden_report_accounts_for_every_spec() {
    let catalogue = specs::catalogue();
    let report: GoldenReport = golden::check_committed(&catalogue, &golden::results_dir());
    assert_eq!(
        report.evaluated.len() + report.skipped.len() + report.missing.len(),
        catalogue.len(),
        "specs leaked from the report:\n{}",
        report.summary()
    );
}

/// Supermarket closed form vs discrete simulation on matched
/// parameters, b ∈ {1, 2, 4}, three seeds each. Tolerances: the
/// simulation is finite (n = 300) and horizon-bounded (1500 service
/// times), which biases it low by a few percent — most at b = 1 where
/// the M/M/1 tail relaxes slowest, least at b = 4 where queues barely
/// form.
#[test]
fn ode_vs_simulation_differential() {
    let seeds = [11, 12, 13];
    let cases = [(0.7, 1, 0.05), (0.9, 2, 0.07), (0.9, 4, 0.07)];
    for (lambda, b, tol) in cases {
        let d = diff::model_vs_sim(lambda, b, 300, 1500.0, &seeds, tol);
        assert!(d.ok(), "{d}");
    }
}

/// Lemma A.1's fixed point against the integrated ODE, and the two
/// integrators against each other, at every b the paper plots.
#[test]
fn fixed_point_and_stepper_differentials() {
    for b in [1u32, 2, 3, 4] {
        let lambda = if b == 1 { 0.7 } else { 0.9 };
        let horizon = if b == 1 { 400.0 } else { 150.0 };
        let fp = diff::fixed_point_vs_ode(lambda, b, horizon, 5e-3);
        assert!(fp.ok(), "{fp}");
        let steppers = diff::euler_vs_rk4(lambda, b, 60.0, 1e-3, 1e-3);
        assert!(steppers.ok(), "{steppers}");
    }
}

/// The full network's forwarding path against the supermarket model:
/// two-choice forwarding must improve on random-walk forwarding, and
/// must not exceed the idealized model's predicted gap (topology
/// constraints can only dilute the advantage). Coarse band by design —
/// the network is not a clean supermarket system.
#[test]
fn network_forwarding_vs_model_differential() {
    let mut scenario = ert_experiments::Scenario::quick(7);
    scenario.n = 96;
    scenario.lookups = 200;
    let d = diff::forwarding_vs_model(&scenario, 7, 0.9);
    assert!(
        d.consistent(0.1, 2.0),
        "forwarding differential out of band: measured {:.3}x vs model {:.3}x (rw {:.3}, 2c {:.3})",
        d.measured_ratio,
        d.model_ratio,
        d.random_walk_mean,
        d.two_choice_mean
    );
}

/// MiniDht's Chord platform vs pure ChordRegistry greedy routing on
/// identical member sets, three seeds: owners agree exactly, nothing
/// drops at benign load, and mean path lengths sit within 15%.
#[test]
fn minidht_vs_registry_chord_differential() {
    for seed in [1u64, 2, 3] {
        let d = diff::minidht_vs_registry(10, 128, 300, 200, seed);
        assert_eq!(
            d.owner_mismatches, 0,
            "seed {seed}: {} of {} owners disagreed",
            d.owner_mismatches, d.keys_checked
        );
        assert_eq!(d.dropped, 0, "seed {seed}: platform dropped lookups");
        assert!(
            d.path_rel_err() <= 0.15,
            "seed {seed}: platform mean path {:.3} vs classic reference {:.3} (rel err {:.3})",
            d.platform_mean_path,
            d.registry_mean_path,
            d.path_rel_err()
        );
        assert!(
            d.greedy_mean_path <= d.registry_mean_path + 1e-9,
            "seed {seed}: optimal-finger greedy ({:.3}) must not exceed classic ({:.3})",
            d.greedy_mean_path,
            d.registry_mean_path
        );
    }
}

/// Multi-seed theorem envelopes (satellite a rides through the same
/// wrappers from `tests/theorem_bounds.rs`; this exercises them at the
/// testkit level).
#[test]
fn theorem_envelopes_hold_across_seeds() {
    let t31 = envelopes::theorem31_envelope(128, &[1.0, 1.5], &[51, 52, 53]);
    assert!(t31.all_ok(), "{}", t31.summary());

    let t33 = envelopes::theorem33_envelope(128, 250, &[51, 52, 53]);
    assert!(t33.all_ok(), "{}", t33.summary());

    let t41 = envelopes::theorem41_envelope(250, 0.95, 2000.0, 3.0, &[305, 306, 307]);
    assert!(t41.all_ok(), "{}", t41.summary());
}
