//! Pillar 3: the shared scenario-strategy library.
//!
//! Every integration property test used to carry its own copy of the
//! "build a small network" and "build a fault plan" recipes; this
//! module is the single audited home for them. Two kinds of exports:
//!
//! * **proptest strategies** ([`small_world`], [`fault_events`],
//!   [`churn_specs`], [`workloads`]) — draw randomized-but-bounded
//!   scenario ingredients for `proptest!` properties;
//! * **deterministic builders** ([`SmallWorld::build`],
//!   [`fault_plan`], [`ramp_capacities`], [`pinned_network_config`],
//!   [`churned_quick_scenario`]) — the exact recipes behind the pinned
//!   determinism tests, kept here so pins and properties share one
//!   definition.
//!
//! The deterministic builders reproduce the historical draw order
//! exactly (seed → capacities → lookups from the *same* RNG): the
//! byte-for-byte pins in `tests/fault_determinism.rs` are computed
//! through these functions.

use std::ops::Range;

use ert_experiments::{ChurnSpec, Scenario, Workload};
use ert_network::network::uniform_lookup_burst;
use ert_network::{
    AdversaryEvent, AdversaryKind, AdversaryPlan, FaultEvent, FaultKind, FaultPlan, Lookup,
    NetworkConfig,
};
use ert_overlay::CycloidSpace;
use ert_sim::{SimDuration, SimRng, SimTime};
use ert_workloads::{uniform_lookups, BoundedPareto};
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

/// A small Cycloid network's ingredients: capacities from the paper's
/// bounded-Pareto distribution, a dimension-fitted config, and the RNG
/// positioned to draw the workload next — the draw order every
/// integration property has always used.
#[derive(Debug, Clone)]
pub struct SmallWorld {
    /// Host count.
    pub n: usize,
    /// The seed everything above was derived from.
    pub seed: u64,
    /// Per-host capacities (bounded Pareto, paper parameters).
    pub capacities: Vec<f64>,
    /// Config for the smallest Cycloid dimension holding `n` hosts.
    pub cfg: NetworkConfig,
    rng: SimRng,
}

impl SmallWorld {
    /// Deterministic constructor: seed the RNG, draw capacities, fit
    /// the config. Lookups drawn afterwards via [`SmallWorld::lookups`]
    /// continue the same RNG stream.
    #[must_use]
    pub fn build(n: usize, seed: u64) -> SmallWorld {
        let mut rng = SimRng::seed_from(seed);
        let capacities = BoundedPareto::paper_default().sample_n(n, &mut rng);
        let cfg = NetworkConfig::for_dimension(CycloidSpace::dimension_for(n), seed);
        SmallWorld {
            n,
            seed,
            capacities,
            cfg,
            rng,
        }
    }

    /// A Poisson lookup stream at one lookup per node per second,
    /// drawn from the world's RNG stream.
    pub fn lookups(&mut self, count: usize) -> Vec<Lookup> {
        uniform_lookups(count, self.n as f64, &mut self.rng)
    }

    /// The world's RNG, for draws beyond the stock ingredients.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

/// Strategy producing [`SmallWorld`]s over a size and seed range.
#[derive(Debug, Clone)]
pub struct SmallWorldStrategy {
    /// Host-count range to draw from.
    pub n: Range<usize>,
    /// Seed range to draw from.
    pub seeds: Range<u64>,
}

impl Strategy for SmallWorldStrategy {
    type Value = SmallWorld;
    fn sample(&self, rng: &mut TestRng) -> SmallWorld {
        let n = self.n.clone().sample(rng);
        let seed = self.seeds.clone().sample(rng);
        SmallWorld::build(n, seed)
    }
}

/// Small networks with `n` hosts drawn from `n_range` and seeds from
/// the stock `0..10_000` space.
#[must_use]
pub fn small_world(n_range: Range<usize>) -> SmallWorldStrategy {
    SmallWorldStrategy {
        n: n_range,
        seeds: 0..10_000,
    }
}

/// The tuple strategy one fault event is drawn from.
pub type FaultEventStrategy = (Range<u64>, Range<u8>, Range<u64>, Range<u64>);

/// Raw fault-event tuples `(at_us, kind_tag, a, b)` as drawn by the
/// fault-plan property: up to ten events over an 8-second horizon.
/// Decode with [`fault_kind`] / assemble with [`fault_plan`].
#[must_use]
pub fn fault_events() -> proptest::collection::VecStrategy<FaultEventStrategy> {
    proptest::collection::vec((0u64..8_000_000, 0u8..5, 0u64..100, 1u64..5_000_000), 0..10)
}

/// Decodes a drawn `(kind_tag, a, b)` triple into a [`FaultKind`] —
/// the canonical mapping every fault property uses (tag 0 crash,
/// 1 degrade, 2 drop, 3 partition, else heal; `a` scales the
/// magnitude, `b` is the window in microseconds).
#[must_use]
pub fn fault_kind(kind_tag: u8, a: u64, b: u64) -> FaultKind {
    let window = SimDuration::from_micros(b);
    match kind_tag {
        0 => FaultKind::Crash,
        1 => FaultKind::Degrade {
            factor: 1.0 + a as f64 / 10.0,
        },
        2 => FaultKind::DropMessages {
            p: a as f64 / 101.0,
            window,
        },
        3 => FaultKind::Partition {
            groups: 2 + (a % 3) as u32,
            window,
        },
        _ => FaultKind::Heal,
    }
}

/// Assembles a [`FaultPlan`] from drawn event tuples.
#[must_use]
pub fn fault_plan(seed: u64, events: &[(u64, u8, u64, u64)]) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for &(at, kind_tag, a, b) in events {
        plan.events.push(FaultEvent {
            at: SimTime::from_micros(at),
            kind: fault_kind(kind_tag, a, b),
        });
    }
    plan
}

/// Raw adversary-event tuples `(at_us, kind_tag, a, b)` — the same
/// drawing shape as [`fault_events`], so mixed fault+adversary
/// properties can share one generator loop. Decode with
/// [`adversary_kind`] / assemble with [`adversary_plan`].
#[must_use]
pub fn adversary_events() -> proptest::collection::VecStrategy<FaultEventStrategy> {
    proptest::collection::vec((0u64..8_000_000, 0u8..5, 0u64..100, 1u64..5_000_000), 0..10)
}

/// Decodes a drawn `(kind_tag, a, b)` triple into a valid
/// [`AdversaryKind`] — the canonical mapping for adversary properties
/// (tag 0 restore, 1 capacity liar, 2 Sybil swarm, 3 query flood, else
/// routing defector; `a` scales fractions/counts, `b` scales
/// errors/regions/windows). Every decoded kind passes
/// [`AdversaryKind::validate`] by construction.
#[must_use]
pub fn adversary_kind(kind_tag: u8, a: u64, b: u64) -> AdversaryKind {
    match kind_tag {
        0 => AdversaryKind::Restore,
        1 => AdversaryKind::CapacityLiar {
            fraction: (a + 1) as f64 / 101.0,
            error: 0.25 + b as f64 / 1.0e6,
        },
        2 => AdversaryKind::SybilSwarm {
            count: 1 + (a % 16) as u32,
            region: b as f64 / 5.0e6,
        },
        3 => AdversaryKind::QueryFlood {
            key: a as f64 / 101.0,
            queries: 1 + (a % 50) as u32,
            window: SimDuration::from_micros(b),
        },
        _ => AdversaryKind::RoutingDefector {
            fraction: (a + 1) as f64 / 101.0,
        },
    }
}

/// Assembles an [`AdversaryPlan`] from drawn event tuples.
#[must_use]
pub fn adversary_plan(seed: u64, events: &[(u64, u8, u64, u64)]) -> AdversaryPlan {
    let mut plan = AdversaryPlan::new(seed);
    for &(at, kind_tag, a, b) in events {
        plan.events.push(AdversaryEvent {
            at: SimTime::from_micros(at),
            kind: adversary_kind(kind_tag, a, b),
        });
    }
    plan
}

/// Strategy producing whole validated [`AdversaryPlan`]s: a seed from
/// the stock `0..10_000` space plus up to ten decoded events over the
/// 8-second horizon.
#[derive(Debug, Clone, Copy)]
pub struct AdversaryPlanStrategy;

impl Strategy for AdversaryPlanStrategy {
    type Value = AdversaryPlan;
    fn sample(&self, rng: &mut TestRng) -> AdversaryPlan {
        let seed = (0u64..10_000).sample(rng);
        let events = adversary_events().sample(rng);
        adversary_plan(seed, &events)
    }
}

/// Strategy over seeded [`AdversaryPlan`]s (see
/// [`AdversaryPlanStrategy`]).
#[must_use]
pub fn adversary_plans() -> AdversaryPlanStrategy {
    AdversaryPlanStrategy
}

/// Churn intensities from mild (20 s interarrivals) to the paper's
/// Section 5.5 stress level (0.5 s).
#[derive(Debug, Clone, Copy)]
pub struct ChurnSpecStrategy;

impl Strategy for ChurnSpecStrategy {
    type Value = ChurnSpec;
    fn sample(&self, rng: &mut TestRng) -> ChurnSpec {
        ChurnSpec {
            join_interarrival: (0.5f64..20.0).sample(rng),
            leave_interarrival: (0.5f64..20.0).sample(rng),
        }
    }
}

/// Strategy over [`ChurnSpec`] intensities.
#[must_use]
pub fn churn_specs() -> ChurnSpecStrategy {
    ChurnSpecStrategy
}

/// Workload shapes: uniform or a bounded Section 5.4-style impulse.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadStrategy;

impl Strategy for WorkloadStrategy {
    type Value = Workload;
    fn sample(&self, rng: &mut TestRng) -> Workload {
        if (0u8..2).sample(rng) == 0 {
            Workload::Uniform
        } else {
            Workload::Impulse {
                nodes: (4usize..32).sample(rng),
                keys: (2usize..16).sample(rng),
            }
        }
    }
}

/// Strategy over [`Workload`] shapes.
#[must_use]
pub fn workloads() -> WorkloadStrategy {
    WorkloadStrategy
}

/// Ingredients of a small wire cluster (`ert-node` over the in-memory
/// switch): ring bit width, node count, seed, and a stabilize-round
/// budget. Drawn by the wire-conformance and stabilize-convergence
/// properties.
#[derive(Debug, Clone, Copy)]
pub struct WireClusterSpec {
    /// Chord identifier bits.
    pub bits: u8,
    /// Requested node count (actual membership may be smaller after
    /// ring-id collisions).
    pub n: usize,
    /// Master seed for geometry + platform streams.
    pub seed: u64,
    /// Stabilize rounds the scenario may spend reaching its fixpoint.
    pub rounds: usize,
}

/// Strategy over [`WireClusterSpec`]s: 5–8 bits, 4–24 nodes, the stock
/// `0..10_000` seed space.
#[derive(Debug, Clone, Copy)]
pub struct WireClusterStrategy;

impl Strategy for WireClusterStrategy {
    type Value = WireClusterSpec;
    fn sample(&self, rng: &mut TestRng) -> WireClusterSpec {
        let bits = (5u8..9).sample(rng);
        // `ChordGeometry::populate` requires n ≤ half the ring.
        let n_cap = 1usize << (bits - 1);
        WireClusterSpec {
            bits,
            n: (4usize..25).sample(rng).min(n_cap),
            seed: (0u64..10_000).sample(rng),
            rounds: (2usize..6).sample(rng),
        }
    }
}

/// Strategy over small wire-cluster scenarios (see
/// [`WireClusterStrategy`]).
#[must_use]
pub fn wire_cluster() -> WireClusterStrategy {
    WireClusterStrategy
}

/// The deterministic capacity ramp the fault pins run on:
/// `600 + 250·(i mod 5)`.
#[must_use]
pub fn ramp_capacities(n: usize) -> Vec<f64> {
    (0..n).map(|i| 600.0 + 250.0 * (i % 5) as f64).collect()
}

/// The pinned network harness config (dimension 6, seed 17) shared by
/// the fault- and telemetry-determinism suites.
#[must_use]
pub fn pinned_network_config() -> NetworkConfig {
    NetworkConfig::for_dimension(6, 17)
}

/// The pinned 200-lookup burst over 96 hosts (seed 17) those suites
/// replay.
#[must_use]
pub fn pinned_burst() -> Vec<Lookup> {
    uniform_lookup_burst(200, 96.0, 17)
}

/// The Section 5.5-shaped churned quick scenario behind the
/// scenario-level pins: `Scenario::quick(7)` with 0.5 s join/leave
/// interarrivals.
#[must_use]
pub fn churned_quick_scenario() -> Scenario {
    let mut s = Scenario::quick(7);
    s.churn = Some(ChurnSpec {
        join_interarrival: 0.5,
        leave_interarrival: 0.5,
    });
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_draw_order_matches_historical_recipe() {
        // The historical inline recipe: one RNG, capacities first,
        // lookups continue the stream.
        let mut rng = SimRng::seed_from(42);
        let caps = BoundedPareto::paper_default().sample_n(48, &mut rng);
        let expected = uniform_lookups(60, 48.0, &mut rng);

        let mut world = SmallWorld::build(48, 42);
        assert_eq!(world.capacities, caps);
        let lookups = world.lookups(60);
        assert_eq!(lookups.len(), 60);
        for (a, b) in lookups.iter().zip(&expected) {
            assert_eq!(a.at, b.at);
        }
        assert_eq!(world.cfg.seed, 42);
    }

    #[test]
    fn fault_kind_mapping_is_total_and_canonical() {
        assert!(matches!(fault_kind(0, 7, 9), FaultKind::Crash));
        match fault_kind(1, 7, 9) {
            FaultKind::Degrade { factor } => assert!((factor - 1.7).abs() < 1e-12),
            other => panic!("wrong kind: {other:?}"),
        }
        match fault_kind(2, 50, 9) {
            FaultKind::DropMessages { p, .. } => assert!(p < 0.5),
            other => panic!("wrong kind: {other:?}"),
        }
        match fault_kind(3, 4, 9) {
            FaultKind::Partition { groups, .. } => assert_eq!(groups, 3),
            other => panic!("wrong kind: {other:?}"),
        }
        assert!(matches!(fault_kind(4, 0, 1), FaultKind::Heal));
        assert!(matches!(fault_kind(200, 0, 1), FaultKind::Heal));
    }

    #[test]
    fn drawn_fault_plans_validate() {
        let mut rng = TestRng::deterministic();
        for _ in 0..50 {
            let events = fault_events().sample(&mut rng);
            let plan = fault_plan(11, &events);
            assert!(plan.validate().is_ok(), "invalid plan from {events:?}");
        }
    }

    #[test]
    fn adversary_kind_mapping_is_total_and_valid() {
        assert!(matches!(adversary_kind(0, 7, 9), AdversaryKind::Restore));
        match adversary_kind(1, 99, 4_999_999) {
            AdversaryKind::CapacityLiar { fraction, error } => {
                assert!(fraction > 0.0 && fraction <= 1.0);
                assert!(error > 0.0 && error.is_finite());
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match adversary_kind(2, 20, 4_999_999) {
            AdversaryKind::SybilSwarm { count, region } => {
                assert!(count >= 1);
                assert!((0.0..1.0).contains(&region));
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match adversary_kind(3, 100, 1) {
            AdversaryKind::QueryFlood { key, queries, .. } => {
                assert!((0.0..1.0).contains(&key));
                assert!(queries >= 1);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        assert!(matches!(
            adversary_kind(4, 0, 1),
            AdversaryKind::RoutingDefector { .. }
        ));
        assert!(matches!(
            adversary_kind(200, 0, 1),
            AdversaryKind::RoutingDefector { .. }
        ));
        // Every corner of the drawn parameter space decodes valid.
        for tag in 0u8..=5 {
            for a in [0u64, 1, 50, 99] {
                for b in [1u64, 2_500_000, 4_999_999] {
                    adversary_kind(tag, a, b).validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn drawn_adversary_plans_validate() {
        let mut rng = TestRng::deterministic();
        for _ in 0..50 {
            let plan = adversary_plans().sample(&mut rng);
            assert!(plan.validate().is_ok(), "invalid plan: {plan:?}");
            assert!(plan.seed < 10_000);
            assert!(plan.events.len() < 10);
        }
    }

    #[test]
    fn ramp_and_pinned_builders_are_stable() {
        let caps = ramp_capacities(7);
        assert_eq!(caps[0], 600.0);
        assert_eq!(caps[4], 1600.0);
        assert_eq!(caps[5], 600.0);
        assert_eq!(pinned_network_config().seed, 17);
        assert_eq!(pinned_burst().len(), 200);
        let s = churned_quick_scenario();
        assert_eq!(s.n, 192);
        assert!(s.churn.is_some());
    }

    #[test]
    fn strategies_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..20 {
            let w = small_world(24usize..96).sample(&mut rng);
            assert!((24..96).contains(&w.n));
            assert_eq!(w.capacities.len(), w.n);
            let c = churn_specs().sample(&mut rng);
            assert!(c.join_interarrival >= 0.5 && c.leave_interarrival < 20.0);
            match workloads().sample(&mut rng) {
                Workload::Uniform => {}
                Workload::Impulse { nodes, keys } => {
                    assert!(nodes < 32 && keys < 16);
                }
            }
        }
    }
}
