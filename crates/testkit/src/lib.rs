//! Conformance oracles for the ERT reproduction.
//!
//! Five pillars, one crate:
//!
//! 1. **Golden-master shape regression** ([`shape`], [`specs`],
//!    [`golden`]) — every ✅ claim of EXPERIMENTS.md encoded as a
//!    [`shape::ShapeSpec`]: protocol orderings at axis points, extrema,
//!    monotonicity, flatness, and tolerance-banded ratios — never
//!    absolute values. Specs evaluate both against the committed
//!    `results/*.csv` golden masters and against freshly-run quick-mode
//!    sweeps, so a refactor that silently flips "NS worse than Base"
//!    fails CI instead of surviving until someone rereads a figure.
//! 2. **Differential oracles** ([`diff`], [`envelopes`]) — the
//!    supermarket ODE / closed-form model cross-checked against the
//!    discrete-event simulation and the `ert-network` forwarding path
//!    on matched parameters, and `ert-minidht`'s Chord platform
//!    cross-checked against the pure `ChordRegistry` geometry on
//!    identical member sets; plus multi-seed Theorem 3.1–4.1 envelope
//!    runners.
//! 3. **The streaming-statistics differential** ([`streamdiff`]) —
//!    `--stream-stats` runs (P² sketch collectors) confronted with
//!    their exact twins across seeds, workload shapes, and protocols:
//!    exact fields bit-identical, sketched percentiles inside the
//!    EXPERIMENTS.md tolerance bands, plus a 10^6-observation
//!    convergence differential.
//! 4. **The committed bench guard** ([`bench`]) — `BENCH_core.json` /
//!    `BENCH_par.json` at the workspace root validated for schema,
//!    internal rate coherence, and machine-independent plausibility
//!    bands (never absolute numbers); `ERT_BENCH_FRESH_CORE` points
//!    the same checker at a freshly regenerated record in CI.
//! 5. **A shared strategy library** ([`strategies`]) — the audited
//!    scenario space every property test draws from (proptest
//!    strategies plus the deterministic builders the pinned
//!    determinism tests share), replacing per-file copies.
//!
//! See DESIGN.md "Testing & Oracles" for the pillar table and how to
//! add a spec.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod diff;
pub mod envelopes;
pub mod golden;
pub mod shape;
pub mod specs;
pub mod strategies;
pub mod streamdiff;

pub use shape::{Axis, Layout, SeriesSet, ShapeCheck, ShapeSpec, Tier, Violation};
