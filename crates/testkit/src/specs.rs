//! The catalogue: every ✅ claim of EXPERIMENTS.md as a [`ShapeSpec`].
//!
//! Two calibration tiers coexist per figure, selected by `axis_gate`:
//!
//! * **quick** specs encode the shape of `figures --quick` output
//!   (n = 192, 100–300 lookups, sizes 64/128). Determinism makes a
//!   fresh quick run byte-identical to the committed quick-scale CSVs,
//!   so these run against both.
//! * **paper** specs encode the Table 2 scale claims (n = 2048,
//!   1000–5000 lookups) — the ✅ marks themselves, including the
//!   documented deviations (e.g. Fig. 7a's elastic indegree p99
//!   exceeding VS at paper scale, where at quick scale VS still tops).
//!
//! Orderings genuinely differ between scales (EXPERIMENTS.md discusses
//! this: NS's congestion penalty needs the paper's load level to
//! dominate Base), which is why the tiers are separate calibrations
//! rather than one spec with giant slack.

use crate::shape::{Axis, Layout, ShapeCheck, ShapeSpec, Tier};
use Axis::{All, At, Last, Named};
use ShapeCheck::{
    Flat, Less, Max, Min, NonDecreasing, NonIncreasing, Ordering, RatioBand, Widening,
};

const QUICK_LOOKUPS: Option<(f64, f64)> = Some((0.0, 500.0));
const PAPER_LOOKUPS: Option<(f64, f64)> = Some((1000.0, f64::INFINITY));
const QUICK_SIZES: Option<(f64, f64)> = Some((0.0, 256.0));
const PAPER_SIZES: Option<(f64, f64)> = Some((1024.0, f64::INFINITY));
const QUICK_SERVICE: Option<(f64, f64)> = Some((0.0, 0.8));
const PAPER_SERVICE: Option<(f64, f64)> = Some((1.0, f64::INFINITY));

#[allow(clippy::too_many_arguments)]
fn spec(
    id: &'static str,
    claim: &'static str,
    table: &'static str,
    layout: Layout,
    tier: Tier,
    axis_gate: Option<(f64, f64)>,
    checks: Vec<ShapeCheck>,
) -> ShapeSpec {
    ShapeSpec {
        id,
        claim,
        table,
        layout,
        tier,
        axis_gate,
        checks,
    }
}

/// Every spec, quick tier and paper tier together. Evaluation sites
/// filter by [`ShapeSpec::applies`] against the data they actually
/// have, so dormant tiers skip instead of failing.
pub fn catalogue() -> Vec<ShapeSpec> {
    let mut specs = Vec::new();
    fig4(&mut specs);
    fig5(&mut specs);
    fig7(&mut specs);
    theorems(&mut specs);
    adversarial(&mut specs);
    specs
}

fn fig4(specs: &mut Vec<ShapeSpec>) {
    specs.push(spec(
        "fig4a.quick.shape",
        "p99 max congestion climbs with load; Base tops the quick scale while VS and the elastic protocols stay below it",
        "fig_4a",
        Layout::Wide,
        Tier::Quick,
        QUICK_LOOKUPS,
        vec![
            Max { series: "Base", at: Last },
            NonDecreasing { series: "Base", slack: 0.0 },
            NonDecreasing { series: "NS", slack: 0.0 },
            NonDecreasing { series: "VS", slack: 0.0 },
            NonDecreasing { series: "ERT/A", slack: 0.0 },
            NonDecreasing { series: "ERT/F", slack: 0.0 },
            NonDecreasing { series: "ERT/AF", slack: 0.0 },
            Less { a: "ERT/AF", b: "Base", at: Last, slack: 0.0 },
            Less { a: "VS", b: "Base", at: Last, slack: 0.0 },
        ],
    ));
    specs.push(spec(
        "fig4a.paper.ns-worst",
        "at Table 2 load NS is worse than Base and the high-load ordering is ERT/AF < VS < Base < NS (paper Fig. 4a)",
        "fig_4a",
        Layout::Wide,
        Tier::Paper,
        PAPER_LOOKUPS,
        vec![
            Max { series: "NS", at: Last },
            Ordering { order: &["ERT/AF", "VS", "Base", "NS"], at: Last, slack: 0.0 },
            NonDecreasing { series: "Base", slack: 0.1 },
            NonDecreasing { series: "NS", slack: 0.1 },
        ],
    ));
    specs.push(spec(
        "fig4c.quick.share",
        "p99 share: NS worst and ERT/A best at the top of the quick sweep",
        "fig_4c",
        Layout::Wide,
        Tier::Quick,
        QUICK_LOOKUPS,
        vec![
            Max {
                series: "NS",
                at: Last,
            },
            Min {
                series: "ERT/A",
                at: Last,
            },
        ],
    ));
    specs.push(spec(
        "fig4c.paper.share",
        "p99 share at 5000 lookups: NS worst, ERT/A best (paper Fig. 4c)",
        "fig_4c",
        Layout::Wide,
        Tier::Paper,
        PAPER_LOOKUPS,
        vec![
            Max {
                series: "NS",
                at: Last,
            },
            Min {
                series: "ERT/A",
                at: Last,
            },
        ],
    ));
    specs.push(spec(
        "fig4svc.quick.shape",
        "service-time axis, quick scale: congestion grows with service time, Base tops, ERT/AF lowest at the high end and never above Base",
        "fig_4_(service-time_axis)",
        Layout::Wide,
        Tier::Quick,
        QUICK_SERVICE,
        vec![
            Max { series: "Base", at: Last },
            Min { series: "ERT/AF", at: Last },
            Less { a: "ERT/AF", b: "Base", at: All, slack: 0.0 },
            Less { a: "VS", b: "Base", at: All, slack: 0.0 },
            NonDecreasing { series: "Base", slack: 0.0 },
            NonDecreasing { series: "NS", slack: 0.0 },
            NonDecreasing { series: "VS", slack: 0.0 },
            NonDecreasing { series: "ERT/A", slack: 0.0 },
            NonDecreasing { series: "ERT/F", slack: 0.0 },
            NonDecreasing { series: "ERT/AF", slack: 0.0 },
        ],
    ));
    specs.push(spec(
        "fig4svc.paper.ordering",
        "service-time axis at Table 2 scale: NS worst at every service time; at the 2.1 s end ERT/AF < ERT/A < ERT/F < Base < NS (the paper's 'similar results' claim for the alternate load axis)",
        "fig_4_(service-time_axis)",
        Layout::Wide,
        Tier::Paper,
        PAPER_SERVICE,
        vec![
            Max { series: "NS", at: All },
            Ordering {
                order: &["ERT/AF", "ERT/A", "ERT/F", "Base", "NS"],
                at: Last,
                slack: 0.0,
            },
            Less { a: "VS", b: "Base", at: All, slack: 0.0 },
        ],
    ));
}

fn fig5(specs: &mut Vec<ShapeSpec>) {
    specs.push(spec(
        "fig5a.quick.heavy",
        "heavy-node encounters: NS worst, elastic protocols near zero, counts only grow with load",
        "fig_5a",
        Layout::Wide,
        Tier::Quick,
        QUICK_LOOKUPS,
        vec![
            Max {
                series: "NS",
                at: Last,
            },
            NonDecreasing {
                series: "Base",
                slack: 0.0,
            },
            NonDecreasing {
                series: "NS",
                slack: 0.0,
            },
            NonDecreasing {
                series: "VS",
                slack: 0.0,
            },
            NonDecreasing {
                series: "ERT/AF",
                slack: 0.0,
            },
            Less {
                a: "ERT/AF",
                b: "VS",
                at: Last,
                slack: 0.0,
            },
            Less {
                a: "ERT/A",
                b: "Base",
                at: Last,
                slack: 0.0,
            },
            Less {
                a: "ERT/F",
                b: "Base",
                at: Last,
                slack: 0.0,
            },
        ],
    ));
    specs.push(spec(
        "fig5a.paper.ordering",
        "heavy-node encounters at 5000 lookups: elastic and VS all beat Base, NS worst (paper Fig. 5a)",
        "fig_5a",
        Layout::Wide,
        Tier::Paper,
        PAPER_LOOKUPS,
        vec![
            Max { series: "NS", at: Last },
            Less { a: "ERT/AF", b: "Base", at: Last, slack: 0.0 },
            Less { a: "ERT/F", b: "Base", at: Last, slack: 0.0 },
            Less { a: "ERT/A", b: "Base", at: Last, slack: 0.0 },
            Less { a: "VS", b: "Base", at: Last, slack: 0.0 },
        ],
    ));
    specs.push(spec(
        "fig5b.quick.paths",
        "path length grows with n; VS pays the longest paths (virtual servers multiply hops); ERT/AF stays within ~15% of Base",
        "fig_5b",
        Layout::Wide,
        Tier::Quick,
        QUICK_SIZES,
        vec![
            Max { series: "VS", at: All },
            NonDecreasing { series: "Base", slack: 0.0 },
            NonDecreasing { series: "NS", slack: 0.0 },
            NonDecreasing { series: "VS", slack: 0.0 },
            NonDecreasing { series: "ERT/A", slack: 0.0 },
            NonDecreasing { series: "ERT/F", slack: 0.0 },
            NonDecreasing { series: "ERT/AF", slack: 0.0 },
            RatioBand { num: "ERT/AF", den: "Base", at: Last, lo: 0.85, hi: 1.15 },
        ],
    ));
    specs.push(spec(
        "fig5b.paper.paths",
        "at Table 2 sizes VS pays the longest paths and ERT/AF stays within 15% of Base (paper Fig. 5b)",
        "fig_5b",
        Layout::Wide,
        Tier::Paper,
        PAPER_SIZES,
        vec![
            Max { series: "VS", at: Last },
            RatioBand { num: "ERT/AF", den: "Base", at: Last, lo: 0.85, hi: 1.15 },
            NonDecreasing { series: "Base", slack: 0.02 },
        ],
    ));
    specs.push(spec(
        "fig5c.any.processing-time",
        "query processing time: NS worst on mean and p99 (no-shedding queues explode); ERT/AF beats Base and ties ERT/F for lowest mean within 5%",
        "fig_5c",
        Layout::Rows,
        Tier::Any,
        None,
        vec![
            Max { series: "NS", at: Named("mean") },
            Max { series: "NS", at: Named("p99") },
            Less { a: "ERT/AF", b: "Base", at: Named("mean"), slack: 0.0 },
            Less { a: "ERT/AF", b: "ERT/F", at: Named("mean"), slack: 0.05 },
            Less { a: "ERT/A", b: "VS", at: Named("p99"), slack: 0.0 },
        ],
    ));
}

fn fig7(specs: &mut Vec<ShapeSpec>) {
    // Indegree (7a), mean: Base/NS/VS never adapt so their tables are
    // static across the sweep; elastic indegree only grows as load
    // forces expansion.
    for (id, tier, gate) in [
        (
            "fig7a-mean.quick.static-vs-elastic",
            Tier::Quick,
            QUICK_LOOKUPS,
        ),
        (
            "fig7a-mean.paper.static-vs-elastic",
            Tier::Paper,
            PAPER_LOOKUPS,
        ),
    ] {
        specs.push(spec(
            id,
            "Fig. 7a mean indegree: static tables (Base/NS/VS) are flat across the load sweep with Base below VS; elastic indegree only grows; ERT/F stays below ERT/A (fixed tables accept fewer inlinks)",
            "fig_7a",
            Layout::Long { value: "mean" },
            tier,
            gate,
            vec![
                Flat { series: "Base", tol: 1e-6 },
                Flat { series: "NS", tol: 1e-6 },
                Flat { series: "VS", tol: 1e-6 },
                Less { a: "Base", b: "VS", at: Last, slack: 0.0 },
                NonDecreasing { series: "ERT/AF", slack: 0.0 },
                Less { a: "ERT/F", b: "ERT/A", at: Last, slack: 0.0 },
            ],
        ));
    }
    specs.push(spec(
        "fig7a-p99.quick.vs-tops",
        "Fig. 7a p99 indegree at quick scale: VS tops (virtual servers concentrate inlinks), Base static and below NS",
        "fig_7a",
        Layout::Long { value: "p99" },
        Tier::Quick,
        QUICK_LOOKUPS,
        vec![
            Max { series: "VS", at: Last },
            Flat { series: "Base", tol: 1e-6 },
            Less { a: "Base", b: "NS", at: Last, slack: 0.0 },
        ],
    ));
    specs.push(spec(
        "fig7a-p99.paper.deviation",
        "Fig. 7a p99 indegree at Table 2 scale: the DOCUMENTED DEVIATION — elastic ERT/A and ERT/AF exceed VS's p99 because adaptation concentrates inlinks on big-capacity nodes; Base stays static below NS",
        "fig_7a",
        Layout::Long { value: "p99" },
        Tier::Paper,
        PAPER_LOOKUPS,
        vec![
            Less { a: "VS", b: "ERT/A", at: Last, slack: 0.0 },
            Less { a: "VS", b: "ERT/AF", at: Last, slack: 0.0 },
            Flat { series: "Base", tol: 1e-6 },
            Flat { series: "VS", tol: 1e-6 },
            Less { a: "Base", b: "NS", at: Last, slack: 0.0 },
        ],
    ));
    for (id, tier, gate) in [
        ("fig7b-mean.quick.vs-largest", Tier::Quick, QUICK_LOOKUPS),
        ("fig7b-mean.paper.vs-largest", Tier::Paper, PAPER_LOOKUPS),
    ] {
        specs.push(spec(
            id,
            "Fig. 7b mean outdegree: VS largest at every load (each virtual server carries its own table), NS smallest, Base and VS static across the sweep (paper Fig. 7b)",
            "fig_7b",
            Layout::Long { value: "mean" },
            tier,
            gate,
            vec![
                Max { series: "VS", at: All },
                Min { series: "NS", at: All },
                Flat { series: "Base", tol: 1e-6 },
                Flat { series: "VS", tol: 1e-6 },
            ],
        ));
    }
    for (id, tier, gate) in [
        ("fig7b-p99.quick.vs-tops", Tier::Quick, QUICK_LOOKUPS),
        ("fig7b-p99.paper.vs-tops", Tier::Paper, PAPER_LOOKUPS),
    ] {
        specs.push(spec(
            id,
            "Fig. 7b p99 outdegree: VS tops by a wide margin (paper: virtual servers multiply per-host table size)",
            "fig_7b",
            Layout::Long { value: "p99" },
            tier,
            gate,
            vec![Max { series: "VS", at: Last }],
        ));
    }
}

fn theorems(specs: &mut Vec<ShapeSpec>) {
    for (id, table) in [
        ("thm31.gc100.all-within", "thm_3_1_gc1_00"),
        ("thm31.gc150.all-within", "thm_3_1_gc1_50"),
    ] {
        specs.push(spec(
            id,
            "Theorem 3.1: every assigned outdegree lies within [alpha_c/gamma_c - 1, alpha_c*gamma_c + 1] — within == n, below == above == 0",
            table,
            Layout::Wide,
            Tier::Any,
            None,
            vec![
                RatioBand { num: "within", den: "n", at: Axis::First, lo: 1.0 - 1e-9, hi: 1.0 + 1e-9 },
                RatioBand { num: "below", den: "n", at: Axis::First, lo: 0.0, hi: 1e-9 },
                RatioBand { num: "above", den: "n", at: Axis::First, lo: 0.0, hi: 1e-9 },
            ],
        ));
    }
    specs.push(spec(
        "thm32.convergence.envelope",
        "Theorem 3.2: adaptation converges onto the indegree bound; the paper's worked example (capacity 50, nu = 0.5) lands exactly on 100",
        "thm_3_2_convergence",
        Layout::Wide,
        Tier::Any,
        None,
        vec![
            RatioBand { num: "d final", den: "bound hi", at: At(50.0), lo: 0.99, hi: 1.01 },
            RatioBand { num: "d final", den: "bound hi", at: At(100.0), lo: 0.99, hi: 1.01 },
            RatioBand { num: "d final", den: "bound hi", at: At(30.0), lo: 0.99, hi: 1.01 },
        ],
    ));
    specs.push(spec(
        "thm41.model-vs-sim",
        "Theorem 4.1: the discrete simulation tracks the supermarket model (b=2 within 7% at every lambda; b=1 within tolerance until the horizon truncates the M/M/1 tail), and two choices win exponentially: the b1/b2 gap widens with lambda, reaching >=10x in the model and >=3x in simulation at lambda=0.99",
        "thm_4_1",
        Layout::Wide,
        Tier::Any,
        None,
        vec![
            RatioBand { num: "sim b=2", den: "model b=2", at: All, lo: 0.93, hi: 1.07 },
            RatioBand { num: "sim b=1", den: "model b=1", at: At(0.5), lo: 0.9, hi: 1.1 },
            RatioBand { num: "sim b=1", den: "model b=1", at: At(0.7), lo: 0.9, hi: 1.1 },
            RatioBand { num: "sim b=1", den: "model b=1", at: At(0.9), lo: 0.85, hi: 1.05 },
            RatioBand { num: "model b=1", den: "model b=2", at: At(0.99), lo: 10.0, hi: f64::INFINITY },
            RatioBand { num: "sim b=1", den: "sim b=2", at: At(0.99), lo: 3.0, hi: f64::INFINITY },
            NonDecreasing { series: "speedup b2/b1", slack: 0.0 },
            Less { a: "model b=3", b: "model b=2", at: All, slack: 0.0 },
            Widening { num: "model b=1", den: "model b=2", factor: 3.0 },
        ],
    ));
    specs.push(spec(
        "lemmaA1.fixed-point",
        "Lemma A.1: the closed-form fixed point matches the integrated ODE tail fractions and both decay monotonically",
        "lemma_a_1_b2",
        Layout::Wide,
        Tier::Any,
        None,
        vec![
            RatioBand { num: "ODE s_i(t→∞)", den: "fixed point s_i", at: At(1.0), lo: 0.999, hi: 1.001 },
            RatioBand { num: "ODE s_i(t→∞)", den: "fixed point s_i", at: At(2.0), lo: 0.999, hi: 1.001 },
            RatioBand { num: "ODE s_i(t→∞)", den: "fixed point s_i", at: At(3.0), lo: 0.999, hi: 1.001 },
            RatioBand { num: "ODE s_i(t→∞)", den: "fixed point s_i", at: At(4.0), lo: 0.999, hi: 1.001 },
            NonIncreasing { series: "fixed point s_i", slack: 0.0 },
            NonIncreasing { series: "ODE s_i(t→∞)", slack: 0.0 },
        ],
    ));
}

// Adversarial panels (`ert-adversary`, EXPERIMENTS.md "Adversarial
// sweeps"). The liar/defector/sybil sweeps use different axis maxima
// per tier (quick errors top out at 4, paper at 8; fractions 0.2 vs
// 0.3; swarm sizes 16 vs 32), which is what the gates key on. The
// flood phase table is a row layout whose axis is stat position at
// both scales, so its claims must hold tier-free.
const QUICK_LIAR_ERRORS: Option<(f64, f64)> = Some((0.0, 5.0));
const PAPER_LIAR_ERRORS: Option<(f64, f64)> = Some((6.0, f64::INFINITY));
const QUICK_DEFECTORS: Option<(f64, f64)> = Some((0.0, 0.25));
const PAPER_DEFECTORS: Option<(f64, f64)> = Some((0.28, f64::INFINITY));
const QUICK_SYBILS: Option<(f64, f64)> = Some((0.0, 20.0));
const PAPER_SYBILS: Option<(f64, f64)> = Some((24.0, f64::INFINITY));

fn adversarial(specs: &mut Vec<ShapeSpec>) {
    specs.push(spec(
        "advliar.quick.immune-and-contained",
        "capacity liars at quick scale: Base never consults advertised capacity so its congestion is flat; ERT/AF stays below Base at every error; nothing is lost",
        "adv_liars",
        Layout::Wide,
        Tier::Quick,
        QUICK_LIAR_ERRORS,
        vec![
            Flat { series: "Base p99 congestion", tol: 0.02 },
            Flat { series: "ERT/AF p99 congestion", tol: 0.05 },
            Less { a: "ERT/AF p99 congestion", b: "Base p99 congestion", at: All, slack: 0.0 },
            Flat { series: "Base completed", tol: 1e-6 },
            Flat { series: "ERT/AF completed", tol: 1e-6 },
        ],
    ));
    specs.push(spec(
        "advliar.paper.widening-attack",
        "capacity liars at paper scale: the congestion-aware protocol is the attack surface — ERT/AF's p99 congestion climbs monotonically with the misreport error and its band against immune Base widens ≥15%, yet stays below Base and loses nothing (γ_c stress, Thms 3.1/3.2)",
        "adv_liars",
        Layout::Wide,
        Tier::Paper,
        PAPER_LIAR_ERRORS,
        vec![
            Flat { series: "Base p99 congestion", tol: 0.02 },
            NonDecreasing { series: "ERT/AF p99 congestion", slack: 0.02 },
            Widening { num: "ERT/AF p99 congestion", den: "Base p99 congestion", factor: 1.15 },
            Less { a: "ERT/AF p99 congestion", b: "Base p99 congestion", at: All, slack: 0.0 },
            Flat { series: "Base completed", tol: 1e-6 },
            Flat { series: "ERT/AF completed", tol: 1e-6 },
        ],
    ));
    specs.push(spec(
        "advdefect.quick.ert-pays",
        "routing defectors at quick scale: ERT/AF's p99 lookup time rises with the defector fraction (defection inverts exactly the rule it relies on) while Base barely moves; both keep completing everything and ERT/AF stays faster",
        "adv_defectors",
        Layout::Wide,
        Tier::Quick,
        QUICK_DEFECTORS,
        vec![
            NonDecreasing { series: "ERT/AF p99 lookup time", slack: 0.02 },
            Flat { series: "Base p99 lookup time", tol: 0.15 },
            Less { a: "ERT/AF p99 lookup time", b: "Base p99 lookup time", at: All, slack: 0.0 },
            Flat { series: "Base completed", tol: 1e-6 },
            Flat { series: "ERT/AF completed", tol: 1e-6 },
        ],
    ));
    specs.push(spec(
        "advdefect.paper.crossover",
        "routing defectors at paper scale: ERT/AF's latency penalty grows monotonically and ≥2× faster than Base's, crossing over — honest two-choice beats Base at fraction 0, but at 30% defectors ERT/AF is slower than Base; completion never drops",
        "adv_defectors",
        Layout::Wide,
        Tier::Paper,
        PAPER_DEFECTORS,
        vec![
            NonDecreasing { series: "ERT/AF p99 lookup time", slack: 0.02 },
            NonDecreasing { series: "Base p99 lookup time", slack: 0.05 },
            Widening { num: "ERT/AF p99 lookup time", den: "Base p99 lookup time", factor: 2.0 },
            Less { a: "ERT/AF p99 lookup time", b: "Base p99 lookup time", at: Axis::First, slack: 0.0 },
            Less { a: "Base p99 lookup time", b: "ERT/AF p99 lookup time", at: Last, slack: 0.0 },
            Flat { series: "Base completed", tol: 1e-6 },
            Flat { series: "ERT/AF completed", tol: 1e-6 },
        ],
    ));
    for (id, tier, gate, base_tol) in [
        (
            "advsybil.quick.concentration",
            Tier::Quick,
            QUICK_SYBILS,
            0.02,
        ),
        (
            "advsybil.paper.concentration",
            Tier::Paper,
            PAPER_SYBILS,
            0.1,
        ),
    ] {
        specs.push(spec(
            id,
            "Sybil swarms concentrate indegree on the elastic protocol: ERT/AF's max indegree grows with the swarm size while Base's static tables barely move; the swarm alone breaks no lookups",
            "adv_sybils",
            Layout::Wide,
            tier,
            gate,
            vec![
                NonDecreasing { series: "ERT/AF max indegree", slack: 0.02 },
                Flat { series: "Base max indegree", tol: base_tol },
                Less { a: "Base max indegree", b: "ERT/AF max indegree", at: All, slack: 0.0 },
                Flat { series: "Base completed", tol: 1e-6 },
                Flat { series: "ERT/AF completed", tol: 1e-6 },
            ],
        ));
    }
    specs.push(spec(
        "advflood.any.band",
        "flash-crowd flood: the hotspot spike blows far past the documented ×2 band for both protocols (it is a real attack), but by end of run both have drained back inside the band",
        "adv_flood",
        Layout::Rows,
        Tier::Any,
        None,
        vec![
            Less { a: "band (documented)", b: "Base", at: Named("spike"), slack: 0.0 },
            Less { a: "band (documented)", b: "ERT/AF", at: Named("spike"), slack: 0.0 },
            Less { a: "Base", b: "band (documented)", at: Named("recovery"), slack: 0.0 },
            Less { a: "ERT/AF", b: "band (documented)", at: Named("recovery"), slack: 0.0 },
        ],
    ));
    specs.push(spec(
        "advflood.any.containment",
        "flash-crowd flood: ERT/AF contains the hotspot — its peak queue depth stays below Base's (two-choice forwarding spreads the crest that Base funnels into one host)",
        "adv_flood",
        Layout::Rows,
        Tier::Any,
        None,
        vec![
            Less { a: "ERT/AF", b: "Base", at: Named("peak"), slack: 0.0 },
            RatioBand { num: "ERT/AF", den: "Base", at: Named("peak"), lo: 0.0, hi: 0.95 },
        ],
    ));
}

/// A deliberately inverted claim — "NS handles load *better* than
/// Base" — used by the conformance suite to prove the machinery
/// actually rejects wrong shapes instead of vacuously passing.
pub fn inverted_example() -> ShapeSpec {
    spec(
        "inverted.ns-better-than-base",
        "INVERTED ON PURPOSE: NS beats Base on heavy-node encounters and is the sweep minimum",
        "fig_5a",
        Layout::Wide,
        Tier::Quick,
        QUICK_LOOKUPS,
        vec![
            Less {
                a: "NS",
                b: "Base",
                at: Last,
                slack: 0.0,
            },
            Min {
                series: "NS",
                at: Last,
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_ids_are_unique_and_nonempty() {
        let specs = catalogue();
        assert!(specs.len() >= 20, "catalogue shrank to {}", specs.len());
        let mut ids: Vec<&str> = specs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate spec ids");
        for s in &specs {
            assert!(!s.checks.is_empty(), "{} has no checks", s.id);
            assert!(!s.table.is_empty());
        }
    }

    #[test]
    fn tiers_of_one_figure_have_disjoint_gates() {
        let specs = catalogue();
        for a in &specs {
            for b in &specs {
                if a.id >= b.id || a.table != b.table || a.layout != b.layout {
                    continue;
                }
                if let (Some((alo, ahi)), Some((blo, bhi))) = (a.axis_gate, b.axis_gate) {
                    let overlap = alo.max(blo) <= ahi.min(bhi);
                    assert!(
                        !overlap,
                        "{} and {} have overlapping gates on {}",
                        a.id, b.id, a.table
                    );
                }
            }
        }
    }
}
