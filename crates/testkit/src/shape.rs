//! Shape regression: series extraction from result tables and the
//! `ShapeSpec` evaluation engine.
//!
//! A *shape* claim is scale-free: it talks about orderings, extrema,
//! monotonicity, flatness, and tolerance-banded ratios of a figure's
//! series — never about absolute values. That is exactly what
//! EXPERIMENTS.md's ✅ marks assert, and what must survive refactors
//! even when the underlying numbers move within tolerance.

use ert_experiments::Table;

/// Numeric series extracted from one result table: an x-axis plus one
/// aligned value series per protocol (or per value column).
#[derive(Debug, Clone)]
pub struct SeriesSet {
    /// Name of the axis column (or `"stat"` for transposed row tables).
    pub axis_name: String,
    /// Axis values, one per point. Row tables use `0..k` positions.
    pub axis: Vec<f64>,
    /// Axis labels, one per point — the raw axis cell text, so checks
    /// can address points by name (e.g. the `"mean"` stat column of a
    /// transposed per-protocol table).
    pub axis_labels: Vec<String>,
    /// `(series name, values)` pairs, each aligned with `axis`.
    pub series: Vec<(String, Vec<f64>)>,
}

/// How a table's rows and columns map onto [`SeriesSet`] series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `axis, series1, series2, ...` — one column per protocol
    /// (Figs. 4a/4b/4c, 5a, 5b, the theorem tables).
    Wide,
    /// `axis, group, v1, v2, ...` — one row per `(axis, group)` pair;
    /// the named value column becomes the group's series (Figs. 7a/7b).
    Long {
        /// The value column to extract.
        value: &'static str,
    },
    /// `key, stat1, stat2, ...` — one row per protocol, no axis
    /// (Fig. 5c). Transposed: each *row* becomes a series and the stat
    /// columns become labelled axis points.
    Rows,
}

impl SeriesSet {
    /// Extracts series from an in-memory [`Table`] under `layout`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed cell or missing
    /// column.
    pub fn from_table(table: &Table, layout: Layout) -> Result<SeriesSet, String> {
        match layout {
            Layout::Wide => Self::wide(table),
            Layout::Long { value } => Self::long(table, value),
            Layout::Rows => Self::rows(table),
        }
    }

    /// Parses a CSV string (header + rows) under `layout`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line or cell.
    pub fn from_csv(csv: &str, layout: Layout) -> Result<SeriesSet, String> {
        let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
        let header: Vec<&str> = lines
            .next()
            .ok_or_else(|| "empty csv".to_owned())?
            .split(',')
            .collect();
        let mut table = Table::new("csv", &header);
        for line in lines {
            let row: Vec<String> = line.split(',').map(str::to_owned).collect();
            if row.len() != header.len() {
                return Err(format!(
                    "row width {} != header width {}: {line}",
                    row.len(),
                    header.len()
                ));
            }
            table.row(row);
        }
        Self::from_table(&table, layout)
    }

    fn wide(table: &Table) -> Result<SeriesSet, String> {
        let axis_name = table
            .header
            .first()
            .cloned()
            .ok_or_else(|| "wide table needs at least one column".to_owned())?;
        let mut axis = Vec::with_capacity(table.rows.len());
        let mut axis_labels = Vec::with_capacity(table.rows.len());
        for row in &table.rows {
            let cell = &row[0];
            axis.push(
                cell.parse::<f64>()
                    .map_err(|_| format!("non-numeric axis cell `{cell}`"))?,
            );
            axis_labels.push(cell.clone());
        }
        // Non-numeric columns (e.g. a boolean `ok` column) are simply
        // not series; checks referencing them report a missing series.
        // The axis column itself is exposed as a series too, so ratio
        // checks can compare counts against it (e.g. Theorem 3.1's
        // `within / n`); extremum checks skip it by name.
        let mut series = vec![(axis_name.clone(), axis.clone())];
        series.extend(table.header.iter().skip(1).filter_map(|name| {
            table
                .numeric_column(name)
                .map(|values| (name.clone(), values))
        }));
        Ok(SeriesSet {
            axis_name,
            axis,
            axis_labels,
            series,
        })
    }

    fn long(table: &Table, value: &'static str) -> Result<SeriesSet, String> {
        if table.header.len() < 3 {
            return Err("long table needs axis, group, and value columns".to_owned());
        }
        let axis_name = table.header[0].clone();
        let value_idx = table
            .column_index(value)
            .ok_or_else(|| format!("long table has no `{value}` column"))?;
        let mut axis: Vec<f64> = Vec::new();
        let mut axis_labels: Vec<String> = Vec::new();
        let mut series: Vec<(String, Vec<f64>)> = Vec::new();
        for row in &table.rows {
            let x = row[0]
                .parse::<f64>()
                .map_err(|_| format!("non-numeric axis cell `{}`", row[0]))?;
            let group = row[1].clone();
            let v = row[value_idx]
                .parse::<f64>()
                .map_err(|_| format!("non-numeric `{value}` cell `{}`", row[value_idx]))?;
            let point = match axis.iter().position(|&a| a == x) {
                Some(i) => i,
                None => {
                    axis.push(x);
                    axis_labels.push(row[0].clone());
                    axis.len() - 1
                }
            };
            let entry = match series.iter_mut().find(|(name, _)| *name == group) {
                Some(s) => s,
                None => {
                    series.push((group, Vec::new()));
                    series.last_mut().expect("just pushed")
                }
            };
            if entry.1.len() != point {
                return Err(format!(
                    "group `{}` misses a point before axis {x}",
                    entry.0
                ));
            }
            entry.1.push(v);
        }
        let n = axis.len();
        if let Some((name, s)) = series.iter().find(|(_, s)| s.len() != n) {
            return Err(format!("group `{name}` has {} of {n} points", s.len()));
        }
        Ok(SeriesSet {
            axis_name,
            axis,
            axis_labels,
            series,
        })
    }

    fn rows(table: &Table) -> Result<SeriesSet, String> {
        if table.header.len() < 2 {
            return Err("row table needs a key column and at least one stat".to_owned());
        }
        let axis_labels: Vec<String> = table.header[1..].to_vec();
        let axis: Vec<f64> = (0..axis_labels.len()).map(|i| i as f64).collect();
        let mut series = Vec::with_capacity(table.rows.len());
        for row in &table.rows {
            let mut values = Vec::with_capacity(axis.len());
            for cell in &row[1..] {
                values.push(
                    cell.parse::<f64>()
                        .map_err(|_| format!("non-numeric stat cell `{cell}`"))?,
                );
            }
            series.push((row[0].clone(), values));
        }
        Ok(SeriesSet {
            axis_name: "stat".to_owned(),
            axis,
            axis_labels,
            series,
        })
    }

    /// The values of a named series.
    pub fn values(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// The largest axis value (0 for an empty set) — the scale signal
    /// tier gates key on.
    pub fn max_axis(&self) -> f64 {
        self.axis.iter().copied().fold(0.0, f64::max)
    }
}

/// Which axis points a check applies to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Axis {
    /// The first axis point.
    First,
    /// The last axis point.
    Last,
    /// The point whose axis value equals this (within `1e-9` relative).
    At(f64),
    /// The point whose axis *label* equals this (row-table stats).
    Named(&'static str),
    /// Every axis point.
    All,
}

impl Axis {
    fn resolve(self, set: &SeriesSet) -> Result<Vec<usize>, String> {
        let n = set.axis.len();
        if n == 0 {
            return Err("series set has no axis points".to_owned());
        }
        match self {
            Axis::First => Ok(vec![0]),
            Axis::Last => Ok(vec![n - 1]),
            Axis::All => Ok((0..n).collect()),
            Axis::At(x) => {
                let tol = 1e-9 * x.abs().max(1.0);
                set.axis
                    .iter()
                    .position(|a| (a - x).abs() <= tol)
                    .map(|i| vec![i])
                    .ok_or_else(|| format!("no axis point at {x} in {:?}", set.axis))
            }
            Axis::Named(label) => set
                .axis_labels
                .iter()
                .position(|l| l == label)
                .map(|i| vec![i])
                .ok_or_else(|| format!("no axis label `{label}` in {:?}", set.axis_labels)),
        }
    }
}

/// One scale-free assertion about a [`SeriesSet`].
#[derive(Debug, Clone)]
pub enum ShapeCheck {
    /// `a ≤ b · (1 + slack)` at each selected point.
    Less {
        /// The series expected to be smaller.
        a: &'static str,
        /// The series expected to be larger.
        b: &'static str,
        /// Where to compare.
        at: Axis,
        /// Relative slack on the larger side.
        slack: f64,
    },
    /// `series` is the strict maximum across all series at each
    /// selected point.
    Max {
        /// The series expected on top.
        series: &'static str,
        /// Where to compare.
        at: Axis,
    },
    /// `series` is the strict minimum across all series at each
    /// selected point.
    Min {
        /// The series expected at the bottom.
        series: &'static str,
        /// Where to compare.
        at: Axis,
    },
    /// Each step of `series` may drop at most `slack` (relative).
    NonDecreasing {
        /// The monotone series.
        series: &'static str,
        /// Allowed relative backslide per step.
        slack: f64,
    },
    /// Each step of `series` may rise at most `slack` (relative).
    NonIncreasing {
        /// The monotone series.
        series: &'static str,
        /// Allowed relative rise per step.
        slack: f64,
    },
    /// `num / den ∈ [lo, hi]` at each selected point.
    RatioBand {
        /// Numerator series.
        num: &'static str,
        /// Denominator series.
        den: &'static str,
        /// Where to compare.
        at: Axis,
        /// Inclusive lower ratio bound.
        lo: f64,
        /// Inclusive upper ratio bound (`f64::INFINITY` for one-sided).
        hi: f64,
    },
    /// The `num / den` ratio at the last point is at least `factor`
    /// times the ratio at the first point — the gap widens along the
    /// axis (e.g. Theorem 4.1's exponential separation in load).
    Widening {
        /// Numerator series.
        num: &'static str,
        /// Denominator series.
        den: &'static str,
        /// Minimum last/first ratio growth.
        factor: f64,
    },
    /// `series` is constant: its spread is at most `tol` relative to
    /// its mean magnitude.
    Flat {
        /// The constant series.
        series: &'static str,
        /// Allowed relative spread.
        tol: f64,
    },
    /// The full chain `order[0] ≤ order[1] ≤ ...` (each with `slack`)
    /// at each selected point.
    Ordering {
        /// Series names from smallest to largest.
        order: &'static [&'static str],
        /// Where to compare.
        at: Axis,
        /// Relative slack per adjacent pair.
        slack: f64,
    },
}

/// One failed check, with enough context to read without the spec.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Spec id (`fig4a.quick.base-worst`, ...).
    pub spec: String,
    /// The claim text the spec encodes.
    pub claim: String,
    /// What failed and by how much.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} — {}", self.spec, self.claim, self.detail)
    }
}

/// Which tier of committed/fresh data a spec is calibrated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Laptop-CI scale (`Scenario::quick`, `figures --quick`).
    Quick,
    /// Table 2 scale (n = 2048, 1000–5000 lookups).
    Paper,
    /// Scale-independent (theorem tables, model-vs-sim ratios).
    Any,
}

/// A machine-checkable encoding of one ✅ claim from EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct ShapeSpec {
    /// Stable identifier, `<figure>.<tier>.<slug>`.
    pub id: &'static str,
    /// The claim text (quoted or condensed from EXPERIMENTS.md).
    pub claim: &'static str,
    /// CSV stem the spec reads (`fig_4a` → `results/fig_4a.csv`), equal
    /// to [`ert_experiments::Table::csv_stem`] of the live table.
    pub table: &'static str,
    /// How to extract series from that table.
    pub layout: Layout,
    /// Calibration tier (documentation; gating is via `axis_gate`).
    pub tier: Tier,
    /// Apply only when the max axis value lies in `[lo, hi]` — this is
    /// how quick- and paper-scale calibrations of the same figure
    /// coexist (orderings genuinely differ between scales; see
    /// EXPERIMENTS.md). `None` applies at any scale.
    pub axis_gate: Option<(f64, f64)>,
    /// The assertions.
    pub checks: Vec<ShapeCheck>,
}

impl ShapeSpec {
    /// Whether this spec's gate admits the extracted series.
    pub fn applies(&self, set: &SeriesSet) -> bool {
        match self.axis_gate {
            None => true,
            Some((lo, hi)) => {
                let m = set.max_axis();
                m >= lo && m <= hi
            }
        }
    }

    /// Evaluates every check, returning one violation per failure.
    pub fn eval(&self, set: &SeriesSet) -> Vec<Violation> {
        let mut out = Vec::new();
        for check in &self.checks {
            if let Err(detail) = eval_check(check, set) {
                out.push(Violation {
                    spec: self.id.to_owned(),
                    claim: self.claim.to_owned(),
                    detail,
                });
            }
        }
        out
    }
}

fn need<'a>(set: &'a SeriesSet, name: &str) -> Result<&'a [f64], String> {
    set.values(name)
        .ok_or_else(|| format!("series `{name}` missing from table"))
}

fn point_name(set: &SeriesSet, i: usize) -> String {
    format!("{}={}", set.axis_name, set.axis_labels[i])
}

fn eval_check(check: &ShapeCheck, set: &SeriesSet) -> Result<(), String> {
    match *check {
        ShapeCheck::Less { a, b, at, slack } => {
            let (va, vb) = (need(set, a)?, need(set, b)?);
            for i in at.resolve(set)? {
                let bound = vb[i] * (1.0 + slack) + 1e-12;
                if va[i] > bound {
                    return Err(format!(
                        "{a}={} exceeds {b}={} (slack {slack}) at {}",
                        va[i],
                        vb[i],
                        point_name(set, i)
                    ));
                }
            }
            Ok(())
        }
        ShapeCheck::Max { series, at } => extremum(set, series, at, true),
        ShapeCheck::Min { series, at } => extremum(set, series, at, false),
        ShapeCheck::NonDecreasing { series, slack } => monotone(set, series, slack, true),
        ShapeCheck::NonIncreasing { series, slack } => monotone(set, series, slack, false),
        ShapeCheck::RatioBand {
            num,
            den,
            at,
            lo,
            hi,
        } => {
            let (vn, vd) = (need(set, num)?, need(set, den)?);
            for i in at.resolve(set)? {
                if vd[i].abs() < 1e-12 {
                    if vn[i].abs() < 1e-12 && lo <= 0.0 {
                        continue; // 0/0 with a band admitting 0
                    }
                    return Err(format!(
                        "{den} is 0 at {} (num {num}={})",
                        point_name(set, i),
                        vn[i]
                    ));
                }
                let r = vn[i] / vd[i];
                if r < lo - 1e-12 || r > hi + 1e-12 {
                    return Err(format!(
                        "{num}/{den}={r:.4} outside [{lo}, {hi}] at {}",
                        point_name(set, i)
                    ));
                }
            }
            Ok(())
        }
        ShapeCheck::Widening { num, den, factor } => {
            let (vn, vd) = (need(set, num)?, need(set, den)?);
            let last = set.axis.len() - 1;
            if vd[0].abs() < 1e-12 || vd[last].abs() < 1e-12 {
                return Err(format!("{den} is 0 at an endpoint"));
            }
            let (r0, r1) = (vn[0] / vd[0], vn[last] / vd[last]);
            if r1 < r0 * factor {
                return Err(format!(
                    "{num}/{den} grew {r0:.3} → {r1:.3}, below the ×{factor} widening"
                ));
            }
            Ok(())
        }
        ShapeCheck::Flat { series, tol } => {
            let v = need(set, series)?;
            let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let scale = (v.iter().map(|x| x.abs()).sum::<f64>() / v.len() as f64).max(1e-12);
            if (hi - lo) / scale > tol {
                return Err(format!(
                    "{series} spreads [{lo}, {hi}] — not flat within {tol} relative"
                ));
            }
            Ok(())
        }
        ShapeCheck::Ordering { order, at, slack } => {
            for pair in order.windows(2) {
                eval_check(
                    &ShapeCheck::Less {
                        a: pair[0],
                        b: pair[1],
                        at,
                        slack,
                    },
                    set,
                )?;
            }
            Ok(())
        }
    }
}

fn extremum(set: &SeriesSet, series: &str, at: Axis, max: bool) -> Result<(), String> {
    let v = need(set, series)?;
    for i in at.resolve(set)? {
        for (other, w) in &set.series {
            if other == series || *other == set.axis_name {
                continue;
            }
            let beaten = if max { w[i] >= v[i] } else { w[i] <= v[i] };
            if beaten {
                return Err(format!(
                    "{series}={} is not the strict {} at {}: {other}={}",
                    v[i],
                    if max { "max" } else { "min" },
                    point_name(set, i),
                    w[i]
                ));
            }
        }
    }
    Ok(())
}

fn monotone(set: &SeriesSet, series: &str, slack: f64, up: bool) -> Result<(), String> {
    let v = need(set, series)?;
    for (i, w) in v.windows(2).enumerate() {
        let give = slack * w[0].abs().max(1e-12) + 1e-12;
        let broken = if up {
            w[1] < w[0] - give
        } else {
            w[1] > w[0] + give
        };
        if broken {
            return Err(format!(
                "{series} moves {} → {} between {} and {} (slack {slack})",
                w[0],
                w[1],
                point_name(set, i),
                point_name(set, i + 1)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> SeriesSet {
        SeriesSet::from_csv(
            "lookups,Base,NS,VS\n100,1.0,0.9,0.5\n200,2.0,1.8,0.6\n300,3.0,4.5,0.7\n",
            Layout::Wide,
        )
        .unwrap()
    }

    fn spec(checks: Vec<ShapeCheck>) -> ShapeSpec {
        ShapeSpec {
            id: "t.test",
            claim: "demo",
            table: "demo",
            layout: Layout::Wide,
            tier: Tier::Any,
            axis_gate: None,
            checks,
        }
    }

    #[test]
    fn wide_parsing_extracts_axis_and_series() {
        let s = demo();
        assert_eq!(s.axis, vec![100.0, 200.0, 300.0]);
        assert_eq!(s.values("NS"), Some(&[0.9, 1.8, 4.5][..]));
        assert_eq!(s.max_axis(), 300.0);
        assert!(s.values("absent").is_none());
    }

    #[test]
    fn wide_parsing_skips_non_numeric_columns() {
        let s = SeriesSet::from_csv("c,d,ok\n50,100,true\n", Layout::Wide).unwrap();
        assert!(s.values("d").is_some());
        assert!(s.values("ok").is_none());
    }

    #[test]
    fn long_parsing_groups_by_protocol() {
        let csv = "lookups,protocol,mean,p99\n\
                   100,Base,1.0,3.0\n100,VS,2.0,9.0\n\
                   200,Base,1.1,3.1\n200,VS,2.5,9.9\n";
        let s = SeriesSet::from_csv(csv, Layout::Long { value: "p99" }).unwrap();
        assert_eq!(s.axis, vec![100.0, 200.0]);
        assert_eq!(s.values("VS"), Some(&[9.0, 9.9][..]));
        let m = SeriesSet::from_csv(csv, Layout::Long { value: "mean" }).unwrap();
        assert_eq!(m.values("Base"), Some(&[1.0, 1.1][..]));
    }

    #[test]
    fn rows_parsing_transposes() {
        let s = SeriesSet::from_csv(
            "protocol,mean,p99\nBase,4.1,26.0\nNS,18.2,53.4\n",
            Layout::Rows,
        )
        .unwrap();
        assert_eq!(s.axis_labels, vec!["mean", "p99"]);
        assert_eq!(s.values("NS"), Some(&[18.2, 53.4][..]));
        // Named axis resolution picks the stat.
        let v = spec(vec![ShapeCheck::Max {
            series: "NS",
            at: Axis::Named("mean"),
        }])
        .eval(&s);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn checks_pass_and_fail_as_calibrated() {
        let s = demo();
        let good = spec(vec![
            ShapeCheck::Max {
                series: "NS",
                at: Axis::Last,
            },
            ShapeCheck::Min {
                series: "VS",
                at: Axis::All,
            },
            ShapeCheck::NonDecreasing {
                series: "Base",
                slack: 0.0,
            },
            ShapeCheck::Less {
                a: "VS",
                b: "Base",
                at: Axis::All,
                slack: 0.0,
            },
            ShapeCheck::RatioBand {
                num: "NS",
                den: "Base",
                at: Axis::First,
                lo: 0.85,
                hi: 0.95,
            },
            ShapeCheck::Widening {
                num: "NS",
                den: "VS",
                factor: 3.0,
            },
            ShapeCheck::Ordering {
                order: &["VS", "Base", "NS"],
                at: Axis::Last,
                slack: 0.0,
            },
        ]);
        assert!(good.eval(&s).is_empty(), "{:?}", good.eval(&s));

        // Each inverted claim is caught.
        for bad in [
            ShapeCheck::Max {
                series: "VS",
                at: Axis::Last,
            },
            ShapeCheck::Min {
                series: "NS",
                at: Axis::Last,
            },
            ShapeCheck::NonIncreasing {
                series: "Base",
                slack: 0.0,
            },
            ShapeCheck::Less {
                a: "NS",
                b: "VS",
                at: Axis::Last,
                slack: 0.0,
            },
            ShapeCheck::RatioBand {
                num: "NS",
                den: "Base",
                at: Axis::Last,
                lo: 0.9,
                hi: 1.0,
            },
            ShapeCheck::Flat {
                series: "Base",
                tol: 0.01,
            },
        ] {
            let v = spec(vec![bad.clone()]).eval(&s);
            assert_eq!(v.len(), 1, "{bad:?} should fail");
        }
    }

    #[test]
    fn max_is_strict_so_ties_fail() {
        let s = SeriesSet::from_csv("x,A,B\n1,2.0,2.0\n", Layout::Wide).unwrap();
        let v = spec(vec![ShapeCheck::Max {
            series: "A",
            at: Axis::Last,
        }])
        .eval(&s);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn missing_series_is_a_violation_not_a_panic() {
        let v = spec(vec![ShapeCheck::Flat {
            series: "ghost",
            tol: 0.1,
        }])
        .eval(&demo());
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("missing"));
    }

    #[test]
    fn axis_gate_controls_applicability() {
        let s = demo(); // max axis 300
        let mut sp = spec(vec![]);
        sp.axis_gate = Some((0.0, 500.0));
        assert!(sp.applies(&s));
        sp.axis_gate = Some((1000.0, f64::INFINITY));
        assert!(!sp.applies(&s));
        sp.axis_gate = None;
        assert!(sp.applies(&s));
    }

    #[test]
    fn at_axis_resolution() {
        let s = demo();
        assert_eq!(Axis::At(200.0).resolve(&s).unwrap(), vec![1]);
        assert!(Axis::At(150.0).resolve(&s).is_err());
        assert_eq!(Axis::First.resolve(&s).unwrap(), vec![0]);
        assert_eq!(Axis::Last.resolve(&s).unwrap(), vec![2]);
        assert_eq!(Axis::All.resolve(&s).unwrap(), vec![0, 1, 2]);
    }
}
