//! Guards for the committed perf trajectory (`BENCH_core.json`,
//! `BENCH_par.json` at the workspace root).
//!
//! Absolute rates belong to the machine that ran the bench, so the
//! guards never pin numbers. What they do pin:
//!
//! * **Schema** — every key the record types (`ert_bench::CoreBenchRecord`,
//!   `ert_bench::ParBenchRecord`) promise is present with the right
//!   JSON type, so downstream tooling can rely on the committed files.
//! * **Coherence tolerance bands** — derived rates must equal
//!   `counter / wall_seconds` to within [`RATE_COHERENCE`], counters
//!   must be ordered (a run processes at least one engine event per
//!   lookup and per forwarded hop), wall time must be positive and
//!   under an hour, and headline rates must land in the wide
//!   plausibility band [`MIN_EVENTS_PER_SECOND`]..[`MAX_EVENTS_PER_SECOND`]
//!   that catches corrupted or zeroed regenerations on any real
//!   machine.
//!
//! `BENCH_core.json` holds one record per line — the same scenario
//! timed on the one-reactor core (`shards = 1`) and on a multi-shard
//! split — and [`check_core_trajectory`] additionally pins that the
//! simulation counters agree across the lines: the bench-level face of
//! the shard-count invariance contract.
//!
//! CI regenerates the quick-shape core trajectory every PR and
//! validates it with the same checker (see the `ERT_BENCH_FRESH_CORE`
//! gated test), so a regression that breaks the bench pipeline fails
//! before a stale trajectory is committed.

use std::path::PathBuf;

use ert_obs::Json;

/// Relative tolerance between a recorded rate and `counter / wall`.
/// The bench computes rates from the same numbers, so this only
/// absorbs decimal round-tripping.
pub const RATE_COHERENCE: f64 = 1e-6;

/// Lower plausibility bound on engine events per second. A simulator
/// that processes fewer than this is not a hot loop measurement — it
/// is a hung run or a corrupted record.
pub const MIN_EVENTS_PER_SECOND: f64 = 1e2;

/// Upper plausibility bound on engine events per second (three orders
/// of magnitude above current hardware).
pub const MAX_EVENTS_PER_SECOND: f64 = 1e12;

/// Path of a bench artifact at the workspace root.
pub fn bench_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

fn field<'a>(obj: &'a Json, key: &str, errs: &mut Vec<String>) -> Option<&'a Json> {
    let v = obj.get(key);
    if v.is_none() {
        errs.push(format!("missing key `{key}`"));
    }
    v
}

fn num(obj: &Json, key: &str, errs: &mut Vec<String>) -> Option<f64> {
    match field(obj, key, errs) {
        Some(v) => match v.as_f64() {
            Some(x) => Some(x),
            None => {
                errs.push(format!("key `{key}` is not a number"));
                None
            }
        },
        None => None,
    }
}

fn count(obj: &Json, key: &str, errs: &mut Vec<String>) -> Option<u64> {
    match field(obj, key, errs) {
        Some(v) => match v.as_u64() {
            Some(x) => Some(x),
            None => {
                errs.push(format!("key `{key}` is not a non-negative integer"));
                None
            }
        },
        None => None,
    }
}

fn check_rate(name: &str, rate: f64, counter: u64, wall: f64, errs: &mut Vec<String>) {
    let derived = counter as f64 / wall;
    let denom = derived.abs().max(1e-12);
    if ((rate - derived) / denom).abs() > RATE_COHERENCE {
        errs.push(format!(
            "{name} = {rate} disagrees with {counter} / {wall} = {derived}"
        ));
    }
}

/// Validates one `BENCH_core.json` payload. Returns every violation
/// found (empty = valid).
pub fn check_core_record(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let root = match Json::parse(text.trim()) {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    let Some(scenario) = field(&root, "scenario", &mut errs) else {
        return errs;
    };
    let n = count(scenario, "n", &mut errs);
    let lookups = count(scenario, "lookups", &mut errs);
    count(scenario, "seed", &mut errs);
    if field(scenario, "quick", &mut errs).is_some_and(|v| v.as_bool().is_none()) {
        errs.push("key `quick` is not a bool".into());
    }
    count(&root, "shards", &mut errs);
    if field(&root, "protocol", &mut errs).is_some_and(|v| v.as_str().is_none()) {
        errs.push("key `protocol` is not a string".into());
    }
    let wall = num(&root, "wall_seconds", &mut errs);
    let events = count(&root, "events_processed", &mut errs);
    let events_rate = num(&root, "events_per_second", &mut errs);
    let completed = count(&root, "lookups_completed", &mut errs);
    let lookups_rate = num(&root, "lookups_per_second", &mut errs);
    let hops = count(&root, "hops_forwarded", &mut errs);
    let forwards_rate = num(&root, "forwards_per_second", &mut errs);
    let adapts = count(&root, "adapt_rounds", &mut errs);
    let adapts_rate = num(&root, "adapt_rounds_per_second", &mut errs);

    let (Some(wall), Some(events), Some(completed), Some(hops), Some(adapts)) =
        (wall, events, completed, hops, adapts)
    else {
        return errs;
    };
    if !(wall > 0.0 && wall < 3600.0) {
        errs.push(format!("wall_seconds {wall} outside (0, 3600)"));
    }
    if n == Some(0) || lookups == Some(0) {
        errs.push("scenario n / lookups must be positive".into());
    }
    if let Some(l) = lookups {
        if completed > l {
            errs.push(format!(
                "lookups_completed {completed} exceeds injected {l}"
            ));
        }
    }
    if completed == 0 {
        errs.push("no lookups completed — not a hot-loop measurement".into());
    }
    if events < completed || events < hops || events < adapts {
        errs.push(format!(
            "events_processed {events} below a counter it subsumes \
             (completed {completed}, hops {hops}, adapt rounds {adapts})"
        ));
    }
    if adapts == 0 {
        errs.push("adapt_rounds is zero — the adaptation loop never ran".into());
    }
    if let Some(rate) = events_rate {
        check_rate("events_per_second", rate, events, wall, &mut errs);
        if !(MIN_EVENTS_PER_SECOND..=MAX_EVENTS_PER_SECOND).contains(&rate) {
            errs.push(format!(
                "events_per_second {rate} outside plausibility band \
                 [{MIN_EVENTS_PER_SECOND}, {MAX_EVENTS_PER_SECOND}]"
            ));
        }
    }
    if let Some(rate) = lookups_rate {
        check_rate("lookups_per_second", rate, completed, wall, &mut errs);
    }
    if let Some(rate) = forwards_rate {
        check_rate("forwards_per_second", rate, hops, wall, &mut errs);
    }
    if let Some(rate) = adapts_rate {
        check_rate("adapt_rounds_per_second", rate, adapts, wall, &mut errs);
    }
    errs
}

/// Validates a full `BENCH_core.json` trajectory: one record per
/// non-empty line, each individually valid per [`check_core_record`],
/// covering both the one-reactor core (`shards <= 1`) and a
/// multi-shard split, with identical scenarios and identical
/// simulation counters across lines (only wall time and the rates
/// derived from it may differ between shard counts). Returns every
/// violation found (empty = valid).
pub fn check_core_trajectory(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if lines.len() < 2 {
        errs.push(format!(
            "need >= 2 records (single-shard and multi-shard), got {}",
            lines.len()
        ));
    }
    let mut single = false;
    let mut multi = false;
    // (scenario JSON, events, completed, hops, adapts) of the first record.
    let mut reference: Option<(Option<Json>, u64, u64, u64, u64)> = None;
    for (i, line) in lines.iter().enumerate() {
        for e in check_core_record(line) {
            errs.push(format!("record {i}: {e}"));
        }
        let Ok(root) = Json::parse(line) else {
            continue;
        };
        match root.get("shards").and_then(Json::as_u64) {
            Some(s) if s <= 1 => single = true,
            Some(_) => multi = true,
            None => {}
        }
        let scenario = root.get("scenario").cloned();
        let counter = |key: &str| root.get(key).and_then(Json::as_u64).unwrap_or(0);
        let sig = (
            scenario,
            counter("events_processed"),
            counter("lookups_completed"),
            counter("hops_forwarded"),
            counter("adapt_rounds"),
        );
        match &reference {
            None => reference = Some(sig),
            Some(r) if *r != sig => errs.push(format!(
                "record {i}: scenario or simulation counters diverge from record 0                  — the shard-count invariance contract is broken"
            )),
            Some(_) => {}
        }
    }
    if !lines.is_empty() && !single {
        errs.push("no record with shards <= 1 (single-reactor baseline missing)".into());
    }
    if !lines.is_empty() && !multi {
        errs.push("no record with shards > 1 (sharded measurement missing)".into());
    }
    errs
}

/// Validates one `BENCH_par.json` payload. Returns every violation
/// found (empty = valid).
pub fn check_par_record(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let root = match Json::parse(text.trim()) {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    count(&root, "n", &mut errs);
    count(&root, "lookups", &mut errs);
    count(&root, "batch_runs", &mut errs);
    let speedup = num(&root, "speedup", &mut errs);
    match field(&root, "byte_identical", &mut errs).and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => errs.push("byte_identical is false — determinism contract broken".into()),
        None => errs.push("key `byte_identical` is not a bool".into()),
    }
    let Some(points) = field(&root, "points", &mut errs).and_then(Json::as_arr) else {
        return errs;
    };
    if points.len() < 2 {
        errs.push(format!("need >= 2 timed points, got {}", points.len()));
        return errs;
    }
    let mut walls = Vec::new();
    let mut last_workers = 0u64;
    for (i, p) in points.iter().enumerate() {
        let workers = count(p, "workers", &mut errs).unwrap_or(0);
        let wall = num(p, "wall_seconds", &mut errs).unwrap_or(0.0);
        if workers <= last_workers {
            errs.push(format!("point {i}: workers {workers} not ascending"));
        }
        if !(wall > 0.0 && wall < 3600.0) {
            errs.push(format!("point {i}: wall_seconds {wall} outside (0, 3600)"));
        }
        last_workers = workers;
        walls.push(wall);
    }
    if let (Some(speedup), Some(&first), Some(&last)) = (speedup, walls.first(), walls.last()) {
        if last > 0.0 {
            let derived = first / last;
            if ((speedup - derived) / derived.abs().max(1e-12)).abs() > RATE_COHERENCE {
                errs.push(format!(
                    "speedup {speedup} disagrees with wall(first)/wall(last) = {derived}"
                ));
            }
        }
        // Plausibility band, not a perf assertion: a 1024-fold speedup
        // or slowdown means the record is garbage, not a fast machine.
        if !(1.0 / 1024.0..=1024.0).contains(&speedup) {
            errs.push(format!("speedup {speedup} outside plausibility band"));
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(name: &str) -> String {
        let path = bench_file(name);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("committed {} unreadable: {e}", path.display()))
    }

    /// The committed core trajectory parses and satisfies every schema
    /// and tolerance-band invariant, covers both shard regimes, and
    /// keeps its simulation counters identical across shard counts.
    #[test]
    fn committed_core_trajectory_is_valid() {
        let errs = check_core_trajectory(&read("BENCH_core.json"));
        assert!(errs.is_empty(), "BENCH_core.json violations: {errs:#?}");
    }

    /// Same guard for the committed parallel-speedup record.
    #[test]
    fn committed_par_record_is_valid() {
        let errs = check_par_record(&read("BENCH_par.json"));
        assert!(errs.is_empty(), "BENCH_par.json violations: {errs:#?}");
    }

    /// CI hook: after regenerating a fresh quick-shape trajectory, set
    /// `ERT_BENCH_FRESH_CORE=<path>` and this test validates it with
    /// the same checker as the committed file. Skips silently when the
    /// variable is unset (local `cargo test`).
    #[test]
    fn fresh_core_record_is_valid_when_provided() {
        let Ok(path) = std::env::var("ERT_BENCH_FRESH_CORE") else {
            return;
        };
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("ERT_BENCH_FRESH_CORE={path} unreadable: {e}"));
        let errs = check_core_trajectory(&text);
        assert!(errs.is_empty(), "{path} violations: {errs:#?}");
    }

    #[test]
    fn core_checker_rejects_broken_records() {
        assert!(!check_core_record("not json").is_empty());
        assert!(!check_core_record("{}").is_empty());
        // A coherent record altered to lie about its rate.
        let good = r#"{"scenario":{"n":128,"lookups":200,"seed":97,"quick":true},
            "shards":1,"protocol":"ERT/AF","wall_seconds":0.5,
            "events_processed":4000,"events_per_second":8000.0,
            "lookups_completed":200,"lookups_per_second":400.0,
            "hops_forwarded":900,"forwards_per_second":1800.0,
            "adapt_rounds":30,"adapt_rounds_per_second":60.0}"#;
        assert_eq!(check_core_record(good), Vec::<String>::new());
        let shardless = good.replace("\"shards\":1,", "");
        assert!(check_core_record(&shardless)
            .iter()
            .any(|e| e.contains("shards")));
        let lying = good.replace(
            "\"events_per_second\":8000.0",
            "\"events_per_second\":9000.0",
        );
        assert!(check_core_record(&lying)
            .iter()
            .any(|e| e.contains("events_per_second")));
        let zeroed = good.replace("\"adapt_rounds\":30", "\"adapt_rounds\":0");
        assert!(check_core_record(&zeroed)
            .iter()
            .any(|e| e.contains("adapt_rounds")));
    }

    /// Single-line flattening of the `good` record with a chosen shard
    /// count and wall time (rates rescaled to stay coherent).
    fn trajectory_line(shards: usize, wall: f64) -> String {
        let scale = 0.5 / wall;
        format!(
            r#"{{"scenario":{{"n":128,"lookups":200,"seed":97,"quick":true}},
            "shards":{shards},"protocol":"ERT/AF","wall_seconds":{wall},
            "events_processed":4000,"events_per_second":{},
            "lookups_completed":200,"lookups_per_second":{},
            "hops_forwarded":900,"forwards_per_second":{},
            "adapt_rounds":30,"adapt_rounds_per_second":{}}}"#,
            8000.0 * scale,
            400.0 * scale,
            1800.0 * scale,
            60.0 * scale,
        )
        .replace('\n', " ")
    }

    #[test]
    fn trajectory_checker_accepts_both_regimes_and_rejects_divergence() {
        let good = format!(
            "{}\n{}\n",
            trajectory_line(1, 0.5),
            trajectory_line(8, 0.625)
        );
        assert_eq!(check_core_trajectory(&good), Vec::<String>::new());

        // A lone record is not a trajectory.
        let lone = format!("{}\n", trajectory_line(1, 0.5));
        assert!(check_core_trajectory(&lone)
            .iter()
            .any(|e| e.contains(">= 2 records")));

        // Two single-shard records: the multi-shard measurement is missing.
        let single_only = format!(
            "{}\n{}\n",
            trajectory_line(1, 0.5),
            trajectory_line(1, 0.625)
        );
        assert!(check_core_trajectory(&single_only)
            .iter()
            .any(|e| e.contains("shards > 1")));

        // Diverging counters across shard counts break the invariance
        // contract even when each record is self-coherent.
        let skewed = trajectory_line(8, 0.625)
            .replace("\"events_processed\":4000", "\"events_processed\":4100")
            .replace("\"events_per_second\":6400", "\"events_per_second\":6560");
        let diverged = format!("{}\n{}\n", trajectory_line(1, 0.5), skewed);
        assert!(check_core_trajectory(&diverged)
            .iter()
            .any(|e| e.contains("invariance")));
    }

    #[test]
    fn par_checker_rejects_broken_records() {
        assert!(!check_par_record("[]").is_empty());
        let good = r#"{"n":128,"lookups":200,"batch_runs":16,
            "points":[{"workers":1,"wall_seconds":2.0},{"workers":4,"wall_seconds":0.5}],
            "speedup":4.0,"byte_identical":true}"#;
        assert_eq!(check_par_record(good), Vec::<String>::new());
        let broken = good.replace("\"byte_identical\":true", "\"byte_identical\":false");
        assert!(check_par_record(&broken)
            .iter()
            .any(|e| e.contains("determinism")));
        let wrong = good.replace("\"speedup\":4.0", "\"speedup\":2.0");
        assert!(check_par_record(&wrong)
            .iter()
            .any(|e| e.contains("speedup")));
    }
}
