//! Golden-master evaluation: run the [`crate::specs`] catalogue
//! against the committed `results/*.csv` files and against
//! freshly-generated quick-mode sweeps.
//!
//! Matching is by CSV stem: a spec's `table` field names the stem the
//! experiment harness derives from the panel title
//! (`Table::csv_stem`), so the same spec finds its data whether it
//! arrives as a committed file or a fresh in-memory [`Table`].
//! Tier gates ([`ShapeSpec::applies`]) decide per data set whether a
//! spec evaluates or skips, so quick-calibrated and paper-calibrated
//! tiers coexist in one catalogue.

use std::path::{Path, PathBuf};

use ert_experiments::{adversarial, fig4, fig5, fig7, Scenario, Table};

use crate::shape::{SeriesSet, ShapeSpec, Violation};

/// Outcome of evaluating a spec batch against one data source.
#[derive(Debug, Default)]
pub struct GoldenReport {
    /// Spec ids that matched data and ran their checks.
    pub evaluated: Vec<&'static str>,
    /// Spec ids whose tier gate rejected the data they matched
    /// (e.g. a paper-scale spec offered a quick-scale sweep).
    pub skipped: Vec<&'static str>,
    /// Spec ids whose table was absent from the data source entirely.
    pub missing: Vec<&'static str>,
    /// Every violation across all evaluated specs.
    pub violations: Vec<Violation>,
}

impl GoldenReport {
    /// True when at least one spec evaluated and none violated.
    #[must_use]
    pub fn clean(&self) -> bool {
        !self.evaluated.is_empty() && self.violations.is_empty()
    }

    /// Human-readable multi-line summary (used in test failure
    /// messages).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} evaluated, {} skipped (tier gate), {} missing, {} violations\n",
            self.evaluated.len(),
            self.skipped.len(),
            self.missing.len(),
            self.violations.len()
        );
        for v in &self.violations {
            out.push_str(&format!("  {v}\n"));
        }
        out
    }

    fn absorb(&mut self, spec: &ShapeSpec, set: Result<SeriesSet, String>) {
        match set {
            Err(e) => self.violations.push(Violation {
                spec: spec.id.to_owned(),
                claim: spec.claim.to_owned(),
                detail: format!("could not parse table '{}': {e}", spec.table),
            }),
            Ok(set) => {
                if spec.applies(&set) {
                    self.evaluated.push(spec.id);
                    self.violations.extend(spec.eval(&set));
                } else {
                    self.skipped.push(spec.id);
                }
            }
        }
    }
}

/// The repository `results/` directory, resolved relative to this
/// crate's manifest so tests work from any working directory.
#[must_use]
pub fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results")
}

/// Evaluates `specs` against committed CSV files under `dir`.
/// A spec whose `<table>.csv` does not exist lands in
/// [`GoldenReport::missing`] — the caller decides whether that is an
/// error (it is for the shipped catalogue, whose tables are all
/// committed).
#[must_use]
pub fn check_committed(specs: &[ShapeSpec], dir: &Path) -> GoldenReport {
    let mut report = GoldenReport::default();
    for spec in specs {
        let path = dir.join(format!("{}.csv", spec.table));
        match std::fs::read_to_string(&path) {
            Err(_) => report.missing.push(spec.id),
            Ok(csv) => report.absorb(spec, SeriesSet::from_csv(&csv, spec.layout)),
        }
    }
    report
}

/// Evaluates `specs` against in-memory tables (fresh sweep output),
/// matching by [`Table::csv_stem`]. Tables with no matching spec are
/// ignored; specs with no matching table land in `missing`.
#[must_use]
pub fn check_tables(specs: &[ShapeSpec], tables: &[Table]) -> GoldenReport {
    let stems: Vec<(String, &Table)> = tables.iter().map(|t| (t.csv_stem(), t)).collect();
    let mut report = GoldenReport::default();
    for spec in specs {
        match stems.iter().find(|(stem, _)| stem == spec.table) {
            None => report.missing.push(spec.id),
            Some((_, table)) => report.absorb(spec, SeriesSet::from_table(table, spec.layout)),
        }
    }
    report
}

/// The service times the fresh quick conformance sweep probes —
/// chosen to sit inside the quick tier's axis gate.
pub const QUICK_SERVICE_TIMES: [f64; 2] = [0.1, 0.6];

/// Runs the figure harness at quick scale — the same recipe as
/// `figures --quick` (single seed, n = 192) — and returns every panel
/// the catalogue knows how to judge. Deterministic: identical output
/// every run.
#[must_use]
pub fn quick_tables() -> Vec<Table> {
    let base = Scenario {
        seeds: vec![1],
        ..Scenario::quick(7)
    };
    let sweep = fig4::lookup_sweep(&base, &fig4::quick_points());
    let mut tables = fig4::tables(&sweep);
    tables.push(fig4::service_time_variant(&base, &QUICK_SERVICE_TIMES));
    tables.push(fig5::table_5a(&sweep));
    tables.push(fig5::table_5b(&base, &fig5::quick_sizes()));
    tables.push(fig5::table_5c(&base));
    tables.extend(fig7::tables(&sweep));
    tables
}

/// Runs the adversarial panels at quick scale — the same recipe as
/// `adversarial --quick` (single seed, n = 192, seed 17) — so the
/// quick-tier `adv_*` specs judge freshly regenerated attack data,
/// not just the committed full-scale snapshot. Deterministic.
#[must_use]
pub fn adversarial_quick_tables() -> Vec<Table> {
    let base = Scenario {
        seeds: vec![1],
        ..Scenario::quick(17)
    };
    adversarial::tables(&base, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{Axis, Layout, ShapeCheck, Tier};

    fn toy_spec(gate: Option<(f64, f64)>) -> ShapeSpec {
        ShapeSpec {
            id: "toy",
            claim: "b tops",
            table: "toy_panel",
            layout: Layout::Wide,
            tier: Tier::Any,
            axis_gate: gate,
            checks: vec![ShapeCheck::Max {
                series: "b",
                at: Axis::Last,
            }],
        }
    }

    fn toy_table() -> Table {
        let mut t = Table::new("Toy panel — demo", &["x", "a", "b"]);
        t.row(vec!["1".into(), "1.0".into(), "2.0".into()]);
        t.row(vec!["2".into(), "1.5".into(), "3.0".into()]);
        t
    }

    #[test]
    fn check_tables_matches_by_stem() {
        let report = check_tables(&[toy_spec(None)], &[toy_table()]);
        assert_eq!(report.evaluated, vec!["toy"]);
        assert!(report.violations.is_empty(), "{}", report.summary());
        assert!(report.clean());
    }

    #[test]
    fn gate_mismatch_skips_instead_of_failing() {
        let report = check_tables(&[toy_spec(Some((100.0, f64::INFINITY)))], &[toy_table()]);
        assert_eq!(report.skipped, vec!["toy"]);
        assert!(report.evaluated.is_empty());
        assert!(!report.clean(), "nothing evaluated must not count as clean");
    }

    #[test]
    fn absent_table_lands_in_missing() {
        let report = check_tables(&[toy_spec(None)], &[]);
        assert_eq!(report.missing, vec!["toy"]);
    }

    #[test]
    fn committed_results_directory_resolves() {
        assert!(
            results_dir().join("fig_4a.csv").exists(),
            "results dir not found at {}",
            results_dir().display()
        );
    }
}
