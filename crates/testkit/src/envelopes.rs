//! Multi-seed theorem envelopes.
//!
//! The `ert-experiments::bounds` checkers validate one seed at a time;
//! these wrappers sweep seed lists and aggregate, so a theorem test
//! makes one call and gets a per-seed audit trail back. A bound that
//! holds "with high probability" (Thm 3.3's γ-dependent outdegree cap,
//! Thm 4.1's exponential improvement) is only convincing when it holds
//! across independent topologies — a single lucky seed is not a proof
//! artifact.

use ert_experiments::bounds::{theorem31_check, theorem33_check};
use ert_supermarket::{expected_time, ChoicePolicy, SupermarketSim};

/// Aggregated multi-seed verdict for one theorem bound.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// What was checked.
    pub label: String,
    /// One `(seed, ok)` entry per run.
    pub runs: Vec<(u64, bool)>,
    /// Per-seed diagnostic lines (table renders or ratio summaries).
    pub details: Vec<String>,
}

impl Envelope {
    /// True when every seed satisfied the bound.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        !self.runs.is_empty() && self.runs.iter().all(|&(_, ok)| ok)
    }

    /// Seeds that violated the bound.
    #[must_use]
    pub fn failing_seeds(&self) -> Vec<u64> {
        self.runs
            .iter()
            .filter(|&&(_, ok)| !ok)
            .map(|&(s, _)| s)
            .collect()
    }

    /// Failure-message summary: label, verdicts, and the diagnostics
    /// of failing seeds.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!("{}: {:?}\n", self.label, self.runs);
        for ((_, ok), detail) in self.runs.iter().zip(&self.details) {
            if !ok {
                out.push_str(detail);
                out.push('\n');
            }
        }
        out
    }
}

/// Theorem 3.1 over a seed grid: every node's initial indegree cap
/// lies within the capacity-estimation envelope, at each `gamma_c`.
#[must_use]
pub fn theorem31_envelope(n: usize, gamma_cs: &[f64], seeds: &[u64]) -> Envelope {
    let mut runs = Vec::new();
    let mut details = Vec::new();
    for &seed in seeds {
        let mut seed_ok = true;
        let mut detail = String::new();
        for &gc in gamma_cs {
            let (table, ok) = theorem31_check(n, gc, seed, 0);
            seed_ok &= ok;
            detail.push_str(&table.render());
        }
        runs.push((seed, seed_ok));
        details.push(detail);
    }
    Envelope {
        label: format!("Thm 3.1 (n={n}, gamma_c {gamma_cs:?})"),
        runs,
        details,
    }
}

/// Theorem 3.3 over seeds: after a lookup burst drives adaptation,
/// every node's outdegree respects the `c_max/ν_min`-scaled cap.
#[must_use]
pub fn theorem33_envelope(n: usize, lookups: usize, seeds: &[u64]) -> Envelope {
    let mut runs = Vec::new();
    let mut details = Vec::new();
    for &seed in seeds {
        let (table, ok) = theorem33_check(n, lookups, seed, 0);
        runs.push((seed, ok));
        details.push(table.render());
    }
    Envelope {
        label: format!("Thm 3.3 (n={n}, {lookups} lookups)"),
        runs,
        details,
    }
}

/// Theorem 4.1 over seeds: the simulated two-choice system beats the
/// simulated one-choice system by at least `min_speedup`, and the
/// measured times land on the model's side of the exponential gap.
#[must_use]
pub fn theorem41_envelope(
    n: usize,
    lambda: f64,
    horizon: f64,
    min_speedup: f64,
    seeds: &[u64],
) -> Envelope {
    let sim = SupermarketSim::new(n, lambda);
    let model_gap = expected_time(lambda, 1) / expected_time(lambda, 2);
    let mut runs = Vec::new();
    let mut details = Vec::new();
    for &seed in seeds {
        let t1 = sim
            .run(ChoicePolicy::shortest_of(1), horizon, seed)
            .mean_time_in_system;
        let t2 = sim
            .run(ChoicePolicy::shortest_of(2), horizon, seed)
            .mean_time_in_system;
        let speedup = t1 / t2;
        let ok = speedup >= min_speedup;
        runs.push((seed, ok));
        details.push(format!(
            "seed {seed}: t1 {t1:.3} / t2 {t2:.3} = {speedup:.3}x (floor {min_speedup}, model gap {model_gap:.3})"
        ));
    }
    Envelope {
        label: format!("Thm 4.1 (n={n}, λ={lambda}, ≥{min_speedup}x)"),
        runs,
        details,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_aggregation_logic() {
        let e = Envelope {
            label: "t".into(),
            runs: vec![(1, true), (2, false)],
            details: vec!["d1".into(), "d2".into()],
        };
        assert!(!e.all_ok());
        assert_eq!(e.failing_seeds(), vec![2]);
        assert!(e.summary().contains("d2"));
        assert!(!e.summary().contains("d1"));
        let empty = Envelope {
            label: "e".into(),
            runs: vec![],
            details: vec![],
        };
        assert!(!empty.all_ok(), "vacuous envelopes must not pass");
    }
}
