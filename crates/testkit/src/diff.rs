//! Pillar 2: differential oracles.
//!
//! Two independent implementations of the same quantity must agree
//! within a stated tolerance:
//!
//! * [`model_vs_sim`] — the supermarket closed form (built on
//!   Lemma A.1's fixed point) against the discrete-event
//!   [`SupermarketSim`] on matched `(λ, b)`;
//! * [`euler_vs_rk4`] — two discretizations of the mean-field ODE on
//!   one trajectory;
//! * [`fixed_point_vs_ode`] — Lemma A.1's closed-form tail fractions
//!   against the integrated ODE's long-horizon state;
//! * [`forwarding_vs_model`] — the full `ert-network` forwarding path:
//!   random-walk forwarding against two-choice forwarding on one
//!   scenario, with the supermarket model predicting the *direction*
//!   and an upper envelope for the improvement (the network is not a
//!   clean supermarket system — topology constrains the candidate
//!   sets — so this is a coarse consistency band, not an equality);
//! * [`minidht_vs_registry`] — the `ert-minidht` Chord platform
//!   against pure `ChordRegistry` greedy routing on the identical
//!   member set: exact owner agreement, path-length means within a
//!   band. (The repo's full `ert-network` substrate is Cycloid-only,
//!   so the registry-level Chord geometry is the reference
//!   implementation here.)
//!
//! The [`wire`] submodule holds the strictest oracle of the family:
//! live `ert-node` wire clusters against the `MiniDht` simulator with
//! **exact** (bit-identical) agreement required, no tolerance band.

pub mod wire;

use ert_experiments::ablation::forwarding_ladder;
use ert_experiments::Scenario;
use ert_minidht::{ChordGeometry, Geometry, MiniDht, MiniDhtConfig, MiniProtocol};
use ert_overlay::{ring, ChordRegistry, ChordSpace};
use ert_sim::SimRng;
use ert_supermarket::{
    expected_time, fixed_point, ChoicePolicy, IntegrationMethod, OdeModel, SupermarketSim,
};

/// One compared quantity: two independent computations and the
/// relative error budget they must meet.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// What was compared.
    pub label: String,
    /// Reference value (model / closed form / registry).
    pub reference: f64,
    /// Subject value (simulation / alternate stepper / platform).
    pub subject: f64,
    /// `|subject − reference| / |reference|`.
    pub rel_err: f64,
    /// Documented tolerance for this comparison.
    pub tol: f64,
}

impl DiffOutcome {
    fn new(label: String, reference: f64, subject: f64, tol: f64) -> DiffOutcome {
        // ert-lint: allow(float-eq) — guard against literal zero reference before dividing
        let rel_err = if reference == 0.0 {
            subject.abs()
        } else {
            (subject - reference).abs() / reference.abs()
        };
        DiffOutcome {
            label,
            reference,
            subject,
            rel_err,
            tol,
        }
    }

    /// Did the two implementations agree within tolerance?
    #[must_use]
    pub fn ok(&self) -> bool {
        self.rel_err <= self.tol
    }
}

impl std::fmt::Display for DiffOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: reference {:.4} vs subject {:.4} (rel err {:.3}, tol {:.3}){}",
            self.label,
            self.reference,
            self.subject,
            self.rel_err,
            self.tol,
            if self.ok() { "" } else { "  ← VIOLATED" }
        )
    }
}

/// Closed-form expected time-in-system vs the discrete-event
/// supermarket simulation, averaged over `seeds`.
///
/// Tolerance guidance (calibrated in `tests/conformance.rs`): the
/// finite system and horizon bias the simulation slightly low, more so
/// as `λ → 1` for `b = 1` where the M/M/1 tail relaxes on a `1/(1−λ)²`
/// time scale — pass a looser `tol` there.
#[must_use]
pub fn model_vs_sim(
    lambda: f64,
    b: u32,
    n: usize,
    horizon: f64,
    seeds: &[u64],
    tol: f64,
) -> DiffOutcome {
    let sim = SupermarketSim::new(n, lambda);
    let mean: f64 = seeds
        .iter()
        .map(|&s| {
            sim.run(ChoicePolicy::shortest_of(b), horizon, s)
                .mean_time_in_system
        })
        .sum::<f64>()
        / seeds.len() as f64;
    DiffOutcome::new(
        format!(
            "supermarket model vs sim (λ={lambda}, b={b}, {} seeds)",
            seeds.len()
        ),
        expected_time(lambda, b),
        mean,
        tol,
    )
}

/// Forward Euler vs RK4 on the same trajectory, compared through the
/// mean queue length of the final state.
#[must_use]
pub fn euler_vs_rk4(lambda: f64, b: u32, horizon: f64, dt: f64, tol: f64) -> DiffOutcome {
    let model = OdeModel::new(lambda, b, 40);
    let rk4 = model.integrate_with(IntegrationMethod::Rk4, model.empty_state(), horizon, dt);
    let euler = model.integrate_with(IntegrationMethod::Euler, model.empty_state(), horizon, dt);
    DiffOutcome::new(
        format!("Euler vs RK4 (λ={lambda}, b={b})"),
        OdeModel::mean_queue(&rk4),
        OdeModel::mean_queue(&euler),
        tol,
    )
}

/// Lemma A.1's closed-form fixed point vs the ODE integrated to a long
/// horizon, compared through the mean queue (`Σ s_i`).
#[must_use]
pub fn fixed_point_vs_ode(lambda: f64, b: u32, horizon: f64, tol: f64) -> DiffOutcome {
    let model = OdeModel::new(lambda, b, 40);
    let s = model.integrate_from_empty(horizon, 2e-3);
    let fp = fixed_point(lambda, b, 40);
    DiffOutcome::new(
        format!("Lemma A.1 fixed point vs ODE (λ={lambda}, b={b})"),
        OdeModel::mean_queue(&fp),
        OdeModel::mean_queue(&s),
        tol,
    )
}

/// Outcome of the network-forwarding differential: the measured
/// random-walk / two-choice improvement on the full network, and the
/// supermarket model's prediction for an idealized system.
#[derive(Debug, Clone)]
pub struct ForwardingDiff {
    /// Mean lookup time under random-walk forwarding.
    pub random_walk_mean: f64,
    /// Mean lookup time under plain two-choice forwarding.
    pub two_choice_mean: f64,
    /// `random_walk_mean / two_choice_mean` — how much two sampled
    /// choices buy on the real forwarding path.
    pub measured_ratio: f64,
    /// `expected_time(λ_eff, 1) / expected_time(λ_eff, 2)` — the
    /// idealized supermarket prediction at the effective per-node load.
    pub model_ratio: f64,
}

impl ForwardingDiff {
    /// The consistency band: two-choice must not be slower than
    /// random walk (beyond `slack`), and must not beat the idealized
    /// supermarket prediction by more than `headroom` (the model is an
    /// upper envelope — the network's topology-constrained candidate
    /// sets can only dilute the two-choice advantage).
    #[must_use]
    pub fn consistent(&self, slack: f64, headroom: f64) -> bool {
        self.measured_ratio >= 1.0 - slack && self.measured_ratio <= self.model_ratio * headroom
    }
}

/// Runs the ablation ladder's `random-walk` and `2choice` protocol
/// specs — identical tables and adaptation, only the forwarding rule
/// differs — on one scenario/seed, and compares the improvement with
/// the supermarket model at effective load `lambda_eff`.
///
/// # Panics
///
/// Panics if the ablation ladder loses its two reference rungs.
#[must_use]
pub fn forwarding_vs_model(scenario: &Scenario, seed: u64, lambda_eff: f64) -> ForwardingDiff {
    let ladder = forwarding_ladder();
    let rw = ladder
        .iter()
        .find(|s| s.name == "random-walk")
        .expect("ladder rung");
    let tc = ladder
        .iter()
        .find(|s| s.name == "2choice")
        .expect("ladder rung");
    let r_rw = scenario.run_once(rw, seed);
    let r_tc = scenario.run_once(tc, seed);
    let measured_ratio = r_rw.lookup_time.mean / r_tc.lookup_time.mean;
    ForwardingDiff {
        random_walk_mean: r_rw.lookup_time.mean,
        two_choice_mean: r_tc.lookup_time.mean,
        measured_ratio,
        model_ratio: expected_time(lambda_eff, 1) / expected_time(lambda_eff, 2),
    }
}

/// Outcome of the MiniDht-vs-registry Chord differential for one seed.
#[derive(Debug, Clone)]
pub struct ChordDiff {
    /// The seed the geometry and workloads were derived from.
    pub seed: u64,
    /// Keys whose owner the platform and the registry disagreed on.
    pub owner_mismatches: usize,
    /// Keys sampled for the owner check.
    pub keys_checked: usize,
    /// Mean path length of completed MiniDht Classic lookups.
    pub platform_mean_path: f64,
    /// Mean hop count of the registry-level classic-finger reference
    /// router on matched samples.
    pub registry_mean_path: f64,
    /// Mean hop count of the registry's *optimal-finger* greedy router
    /// (`ChordRegistry::route_path`) on the same samples — a lower
    /// bound the classic paths must dominate.
    pub greedy_mean_path: f64,
    /// Lookups the platform dropped (should be 0 at benign load).
    pub dropped: u64,
}

impl ChordDiff {
    /// Relative gap between the two mean path lengths.
    #[must_use]
    pub fn path_rel_err(&self) -> f64 {
        (self.platform_mean_path - self.registry_mean_path).abs() / self.registry_mean_path
    }
}

/// One hop of the classic Chord finger rule, computed from registry
/// primitives alone: the table entry for finger `m` is the *first*
/// member clockwise in `finger_region(cur, m)` (exactly what
/// `ChordGeometry::classic_pick` stores), and routing takes the
/// highest-finger entry that does not overshoot the owner, falling
/// back to the successor — mirroring `ChordGeometry::hop_candidates`.
fn classic_next_hop(registry: &ChordRegistry, space: ChordSpace, cur: u64, owner: u64) -> u64 {
    let size = space.ring_size();
    let budget = ring::forward_distance(cur, owner, size);
    let mut m = space.best_finger(cur, owner).unwrap_or(0);
    loop {
        let entry = registry
            .nodes_in(space.finger_region(cur, m))
            .into_iter()
            .find(|&c| c != cur);
        if let Some(e) = entry {
            let d = ring::forward_distance(cur, e, size);
            if d > 0 && d <= budget {
                return e;
            }
        }
        if m == 0 {
            return registry.successor(cur).expect("nonempty ring");
        }
        m -= 1;
    }
}

/// Hop count of a classic-finger route, `None` if `max_hops` is hit.
fn classic_route_hops(
    registry: &ChordRegistry,
    space: ChordSpace,
    from: u64,
    key: u64,
    max_hops: usize,
) -> Option<usize> {
    let owner = registry.owner(key)?;
    let mut cur = from;
    let mut hops = 0usize;
    while cur != owner {
        if hops >= max_hops {
            return None;
        }
        cur = classic_next_hop(registry, space, cur, owner);
        hops += 1;
    }
    Some(hops)
}

/// Builds one Chord ring of `n` members on `2^bits` IDs from `seed`,
/// then compares the MiniDht Classic platform against the pure
/// [`ChordRegistry`] reference on the identical member set: owners on
/// `keys` sampled keys must agree exactly; the platform's mean path
/// length is compared against a registry-level reimplementation of
/// the classic finger rule (and the registry's optimal-finger greedy
/// router is reported as the lower bound it must dominate).
/// Capacities are uniform so queueing never diverts the platform's
/// routing.
///
/// # Panics
///
/// Panics if the platform rejects the generated configuration or a
/// reference route fails to terminate.
#[must_use]
pub fn minidht_vs_registry(
    bits: u8,
    n: usize,
    lookups: usize,
    keys: usize,
    seed: u64,
) -> ChordDiff {
    let mut rng = SimRng::seed_from(seed);
    let geometry = ChordGeometry::populate(bits, n, &mut rng);
    let space = geometry.space();
    let members = geometry.members();

    // Rebuild the reference registry from the member list alone.
    let mut registry = ChordRegistry::new(space);
    for &m in &members {
        registry.insert(m);
    }

    let mut owner_mismatches = 0usize;
    for _ in 0..keys {
        let key = space.random_id(&mut rng);
        if geometry.owner(key) != registry.owner(key) {
            owner_mismatches += 1;
        }
    }

    // Reference routes on (source, key) samples drawn from the
    // continued RNG stream: classic-finger hops (the rule the platform
    // implements) and optimal-finger greedy hops (the lower bound).
    let max_hops = 4 * bits as usize + 8;
    let mut classic_hops = 0usize;
    let mut greedy_hops = 0usize;
    let mut routed = 0usize;
    for _ in 0..lookups {
        let from = *rng.choose(&members).expect("nonempty ring");
        let key = space.random_id(&mut rng);
        classic_hops += classic_route_hops(&registry, space, from, key, max_hops)
            .expect("classic route must terminate");
        let path = registry
            .route_path(from, key, max_hops)
            .expect("greedy route must terminate");
        greedy_hops += path.len() - 1;
        routed += 1;
    }
    let registry_mean_path = classic_hops as f64 / routed as f64;
    let greedy_mean_path = greedy_hops as f64 / routed as f64;

    let capacities = vec![1_000.0; n];
    let cfg = MiniDhtConfig::defaults(bits, seed);
    let mut dht = MiniDht::new(cfg, geometry, &capacities, MiniProtocol::Classic)
        .expect("valid mini platform");
    let report = dht.run_poisson(lookups, n as f64 * 0.25);

    ChordDiff {
        seed,
        owner_mismatches,
        keys_checked: keys,
        platform_mean_path: report.mean_path_length,
        registry_mean_path,
        greedy_mean_path,
        dropped: report.dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_outcome_tolerance_logic() {
        let good = DiffOutcome::new("x".into(), 10.0, 10.5, 0.1);
        assert!(good.ok());
        let bad = DiffOutcome::new("x".into(), 10.0, 12.0, 0.1);
        assert!(!bad.ok());
        assert!(format!("{bad}").contains("VIOLATED"));
        let zero_ref = DiffOutcome::new("z".into(), 0.0, 0.0, 0.01);
        assert!(zero_ref.ok());
    }

    #[test]
    fn euler_vs_rk4_within_tight_band() {
        let d = euler_vs_rk4(0.9, 2, 60.0, 1e-3, 1e-3);
        assert!(d.ok(), "{d}");
    }

    #[test]
    fn fixed_point_vs_ode_converges() {
        let d = fixed_point_vs_ode(0.9, 2, 150.0, 5e-3);
        assert!(d.ok(), "{d}");
    }
}
