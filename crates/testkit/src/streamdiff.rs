//! Differential oracle for streaming statistics (`--stream-stats`).
//!
//! The streaming mode swaps the per-query metric collectors for
//! O(1)-memory P² sketches (`ert_obs::StreamSummary`). The contract
//! the oracle pins, across seeds and workload shapes:
//!
//! * **Exact fields stay bit-identical.** Counts, push-order means,
//!   and maxima are computed the same way in both modes, as is every
//!   per-host structural metric (degree envelopes, utilization,
//!   fairness shares) — those digests deliberately stay exact, bounded
//!   by network size. [`compare_reports`] checks them with
//!   `f64::to_bits` equality, not an epsilon.
//! * **Estimated fields stay inside a documented band.** Only the
//!   interior percentiles of the two per-query collectors are
//!   estimates: `lookup_time.{p01,p50,p99}` and
//!   `p99_min_capacity_congestion`. Their relative error against the
//!   exact run is bounded by [`RUN_P50_RTOL`] / [`RUN_P99_RTOL`]
//!   (few-hundred-observation runs) and by [`BULK_P50_RTOL`] /
//!   [`BULK_P99_RTOL`] on the million-observation synthetic
//!   differential, where the sketch has converged.
//!
//! EXPERIMENTS.md documents the same bands for operators reading
//! `--stream-stats` output.

use ert_experiments::Scenario;
use ert_network::{ProtocolSpec, RunReport};

/// Relative tolerance for sketched `p01` on a simulation run's few
/// hundred observations.
pub const RUN_P01_RTOL: f64 = 0.30;

/// Relative tolerance for sketched `p50` on a simulation run's few
/// hundred observations. The widest band: P²'s parabolic interpolation
/// smooths the median of heavy-tailed lookup-time distributions
/// (observed worst case ≈ 0.25 on 300-lookup Base runs).
pub const RUN_P50_RTOL: f64 = 0.35;

/// Relative tolerance for sketched `p99` on a simulation run's few
/// hundred observations. The tail marker tracks the empirical extreme
/// closely (observed worst case ≈ 0.06), so the band is tighter than
/// the median's.
pub const RUN_P99_RTOL: f64 = 0.15;

/// Absolute tolerance for the sketched `p99_min_capacity_congestion`.
/// That collector sees few, coarsely-quantized observations (queue
/// depth over capacity at one host), where relative error is
/// meaningless — observed absolute deviations stay ≤ 0.26.
pub const RUN_MINCAP_ATOL: f64 = 0.5;

/// Relative tolerance for sketched `p50` after 10^6 observations.
pub const BULK_P50_RTOL: f64 = 0.02;

/// Relative tolerance for sketched `p99` after 10^6 observations.
pub const BULK_P99_RTOL: f64 = 0.05;

fn rel_err(stream: f64, exact: f64) -> f64 {
    (stream - exact).abs() / exact.abs().max(1e-9)
}

fn check_band(name: &str, stream: f64, exact: f64, rtol: f64, errs: &mut Vec<String>) {
    let err = rel_err(stream, exact);
    if err > rtol {
        errs.push(format!(
            "{name}: stream {stream} vs exact {exact} — relative error {err:.4} > {rtol}"
        ));
    }
}

fn check_bits(name: &str, stream: f64, exact: f64, errs: &mut Vec<String>) {
    if stream.to_bits() != exact.to_bits() {
        errs.push(format!(
            "{name}: stream {stream} != exact {exact} (must be bit-identical)"
        ));
    }
}

/// Runs `scenario` under `spec` at `seed` twice — exact collectors and
/// streaming sketches — and returns `(exact, stream)` reports.
pub fn run_pair(scenario: &Scenario, spec: &ProtocolSpec, seed: u64) -> (RunReport, RunReport) {
    let mut exact = scenario.clone();
    exact.stream_stats = false;
    let mut stream = scenario.clone();
    stream.stream_stats = true;
    (exact.run_once(spec, seed), stream.run_once(spec, seed))
}

/// Compares a streaming-mode report against its exact twin: every
/// field outside the two sketched collectors must be bit-identical,
/// the sketched percentiles must sit inside the run-scale band.
/// Returns every violation found (empty = conforming).
pub fn compare_reports(exact: &RunReport, stream: &RunReport) -> Vec<String> {
    let mut errs = Vec::new();
    // Exact counters.
    for (name, e, s) in [
        (
            "lookups_started",
            exact.lookups_started,
            stream.lookups_started,
        ),
        (
            "lookups_completed",
            exact.lookups_completed,
            stream.lookups_completed,
        ),
        (
            "lookups_dropped",
            exact.lookups_dropped,
            stream.lookups_dropped,
        ),
        (
            "lookups_failed",
            exact.lookups_failed,
            stream.lookups_failed,
        ),
        (
            "heavy_encounters",
            exact.heavy_encounters,
            stream.heavy_encounters,
        ),
    ] {
        if e != s {
            errs.push(format!("{name}: stream {s} != exact {e}"));
        }
    }
    if exact.lookup_time.count != stream.lookup_time.count {
        errs.push(format!(
            "lookup_time.count: stream {} != exact {}",
            stream.lookup_time.count, exact.lookup_time.count
        ));
    }
    // Exact-by-construction scalars: push-order means, maxima, and
    // every per-host digest (those stay exact Samples in both modes).
    check_bits(
        "lookup_time.mean",
        stream.lookup_time.mean,
        exact.lookup_time.mean,
        &mut errs,
    );
    check_bits(
        "lookup_time.max",
        stream.lookup_time.max,
        exact.lookup_time.max,
        &mut errs,
    );
    check_bits(
        "mean_path_length",
        stream.mean_path_length,
        exact.mean_path_length,
        &mut errs,
    );
    check_bits(
        "p99_max_congestion",
        stream.p99_max_congestion,
        exact.p99_max_congestion,
        &mut errs,
    );
    check_bits("p99_share", stream.p99_share, exact.p99_share, &mut errs);
    for (name, e, s) in [
        ("max_indegree", &exact.max_indegree, &stream.max_indegree),
        ("max_outdegree", &exact.max_outdegree, &stream.max_outdegree),
        ("utilization", &exact.utilization, &stream.utilization),
    ] {
        check_bits(&format!("{name}.p99"), s.p99, e.p99, &mut errs);
        check_bits(&format!("{name}.mean"), s.mean, e.mean, &mut errs);
    }
    check_bits(
        "capacity_utilization_correlation",
        stream.capacity_utilization_correlation,
        exact.capacity_utilization_correlation,
        &mut errs,
    );
    check_bits(
        "sim_seconds",
        stream.sim_seconds,
        exact.sim_seconds,
        &mut errs,
    );
    // The sketched estimates.
    check_band(
        "lookup_time.p01",
        stream.lookup_time.p01,
        exact.lookup_time.p01,
        RUN_P01_RTOL,
        &mut errs,
    );
    check_band(
        "lookup_time.p50",
        stream.lookup_time.p50,
        exact.lookup_time.p50,
        RUN_P50_RTOL,
        &mut errs,
    );
    check_band(
        "lookup_time.p99",
        stream.lookup_time.p99,
        exact.lookup_time.p99,
        RUN_P99_RTOL,
        &mut errs,
    );
    let mincap_dev = (stream.p99_min_capacity_congestion - exact.p99_min_capacity_congestion).abs();
    if mincap_dev > RUN_MINCAP_ATOL {
        errs.push(format!(
            "p99_min_capacity_congestion: stream {} vs exact {} — absolute deviation {mincap_dev:.4} > {RUN_MINCAP_ATOL}",
            stream.p99_min_capacity_congestion, exact.p99_min_capacity_congestion
        ));
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ert_baselines::base;
    use ert_experiments::Workload;
    use ert_obs::{Digest, Record, StreamSummary};
    use ert_sim::stats::Samples;

    fn quick(seed: u64) -> Scenario {
        let mut s = Scenario::quick(seed);
        s.n = 128;
        s.lookups = 300;
        s
    }

    /// The headline differential: seeds × workload shapes × protocols,
    /// streaming vs exact, every report conforming to the contract.
    #[test]
    fn stream_reports_match_exact_across_seeds_and_shapes() {
        let shapes = [
            ("uniform", Workload::Uniform),
            ("impulse", Workload::Impulse { nodes: 20, keys: 5 }),
        ];
        for spec in [base(), ProtocolSpec::ert_af()] {
            for (shape_name, workload) in shapes {
                for seed in [1, 2, 3] {
                    let mut scenario = quick(seed);
                    scenario.workload = workload;
                    let (exact, stream) = run_pair(&scenario, &spec, seed);
                    let errs = compare_reports(&exact, &stream);
                    assert!(
                        errs.is_empty(),
                        "{} / {shape_name} / seed {seed}: {errs:#?}",
                        spec.name
                    );
                }
            }
        }
    }

    /// The million-observation synthetic differential: a service-time
    /// shaped mixture (bulk near 0.2 s, a 5× heavy mode, and queueing
    /// delay tails) pushed through both digests. The sketch has
    /// converged, so the bands are the tight bulk ones — and memory is
    /// O(1) by construction (`StreamSummary` is `Copy` with a
    /// compile-time size bound; the exact twin holds all 10^6 values).
    #[test]
    fn million_observation_sketch_stays_in_band() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut uniform = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut exact = Samples::new();
        let mut sketch = StreamSummary::new();
        for _ in 0..1_000_000 {
            let u = uniform();
            let base = if uniform() < 0.1 { 1.0 } else { 0.2 };
            // Exponential-ish queueing tail on top of the service time.
            let v = base + 0.05 * (-(1.0 - u).ln());
            exact.push(v);
            sketch.observe(v);
        }
        assert_eq!(sketch.count(), 1_000_000);
        assert_eq!(sketch.count() as usize, exact.summary().count);
        // Push-order sums: bit-identical means, exact min/max.
        assert_eq!(sketch.mean().to_bits(), exact.mean().to_bits());
        assert_eq!(sketch.max().to_bits(), exact.max().to_bits());
        for (p, rtol) in [(0.5, BULK_P50_RTOL), (0.99, BULK_P99_RTOL)] {
            let (e, s) = (exact.percentile(p), sketch.quantile(p));
            let err = rel_err(s, e);
            assert!(
                err <= rtol,
                "p{}: sketch {s} vs exact {e} — relative error {err:.5} > {rtol}",
                (p * 100.0) as u32
            );
        }
    }

    /// The comparator actually rejects: a doctored report with a wrong
    /// exact field or an out-of-band estimate fails.
    #[test]
    fn comparator_rejects_drift() {
        let scenario = quick(9);
        let (exact, stream) = run_pair(&scenario, &base(), 9);
        assert!(compare_reports(&exact, &stream).is_empty());
        let mut wrong_mean = stream.clone();
        wrong_mean.lookup_time.mean += 1e-12;
        assert!(compare_reports(&exact, &wrong_mean)
            .iter()
            .any(|e| e.contains("lookup_time.mean")));
        let mut wrong_p50 = stream.clone();
        wrong_p50.lookup_time.p50 = exact.lookup_time.p50 * 2.0;
        assert!(compare_reports(&exact, &wrong_p50)
            .iter()
            .any(|e| e.contains("lookup_time.p50")));
    }
}
