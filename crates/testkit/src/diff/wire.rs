//! The wire differential oracle: live in-memory `ert-node` cluster
//! against the `ert-minidht` deterministic simulator.
//!
//! Unlike the tolerance-banded oracles in the parent module, this one
//! demands **exact** agreement. Both sides are seeded from the same
//! `(bits, n, seed)` triple, run the identical externally generated
//! injection schedule, and must produce:
//!
//! * identical [`RouteTrace`]s — same per-query source draw, same
//!   hop-by-hop forwarding decisions in the same global order, same
//!   completion/drop records, and (under `Chord+ERT`) the same
//!   per-node indegree-adaptation sequence;
//! * identical post-run routing-table fingerprints;
//! * bit-identical scalar outcomes (completions, drops, mean lookup
//!   time compared via `f64::to_bits`).
//!
//! The correspondence is engineered, not accidental: the wire cluster
//! orders events on the same `(time, seq)` merge key as the simulator
//! heap, allocates sequence numbers at emission, and draws from the
//! same seeded streams at the same program points (platform build
//! permutation, per-injection source fork, per-node `"decide"` forks).
//! DESIGN.md "Wire Protocol & Live Node" spells out the argument;
//! `tests/wire_conformance.rs` pins it across seeds, workload shapes,
//! and both protocols.

use ert_faults::{FaultPlan, RetryPolicy};
use ert_minidht::{ChordGeometry, Geometry, MiniDht, MiniDhtConfig, MiniProtocol, RouteTrace};
use ert_node::WireCluster;
use ert_overlay::ChordSpace;
use ert_sim::{SimDuration, SimRng, SimTime};

use super::super::strategies::ramp_capacities;

/// Outcome of one wire-vs-sim differential run.
#[derive(Debug, Clone)]
pub struct WireDiff {
    /// Scenario label (`bits/n/seed/protocol/schedule-shape`).
    pub label: String,
    /// Sim-side decision trace.
    pub sim_trace: RouteTrace,
    /// Wire-side decision trace.
    pub wire_trace: RouteTrace,
    /// Sim-side post-run table fingerprints.
    pub sim_tables: Vec<String>,
    /// Wire-side post-run table fingerprints.
    pub wire_tables: Vec<String>,
    /// `(completed, dropped)` on the sim side.
    pub sim_counts: (u64, u64),
    /// `(completed, dropped)` on the wire side.
    pub wire_counts: (u64, u64),
    /// Bit pattern of the sim's mean lookup time.
    pub sim_lookup_mean_bits: u64,
    /// Bit pattern of the wire cluster's mean lookup time.
    pub wire_lookup_mean_bits: u64,
}

impl WireDiff {
    /// Exact match on every compared axis.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.mismatch().is_none()
    }

    /// First axis that disagrees, with enough context to debug it, or
    /// `None` on an exact match.
    #[must_use]
    pub fn mismatch(&self) -> Option<String> {
        if self.sim_trace.sources != self.wire_trace.sources {
            return Some(format!(
                "{}: source draws diverge (sim {:?} vs wire {:?})",
                self.label, self.sim_trace.sources, self.wire_trace.sources
            ));
        }
        if self.sim_trace.hops != self.wire_trace.hops {
            let i = self
                .sim_trace
                .hops
                .iter()
                .zip(&self.wire_trace.hops)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| self.sim_trace.hops.len().min(self.wire_trace.hops.len()));
            return Some(format!(
                "{}: hop streams diverge at index {i} (sim {:?} vs wire {:?}; lengths {} vs {})",
                self.label,
                self.sim_trace.hops.get(i),
                self.wire_trace.hops.get(i),
                self.sim_trace.hops.len(),
                self.wire_trace.hops.len()
            ));
        }
        if self.sim_trace.completions != self.wire_trace.completions {
            return Some(format!(
                "{}: completion streams diverge (sim {} vs wire {} records)",
                self.label,
                self.sim_trace.completions.len(),
                self.wire_trace.completions.len()
            ));
        }
        if self.sim_trace.drops != self.wire_trace.drops {
            return Some(format!(
                "{}: drop streams diverge (sim {:?} vs wire {:?})",
                self.label, self.sim_trace.drops, self.wire_trace.drops
            ));
        }
        if self.sim_trace.adapts != self.wire_trace.adapts {
            let i = self
                .sim_trace
                .adapts
                .iter()
                .zip(&self.wire_trace.adapts)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| {
                    self.sim_trace
                        .adapts
                        .len()
                        .min(self.wire_trace.adapts.len())
                });
            return Some(format!(
                "{}: adaptation sequences diverge at index {i} (sim {:?} vs wire {:?}; lengths {} vs {})",
                self.label,
                self.sim_trace.adapts.get(i),
                self.wire_trace.adapts.get(i),
                self.sim_trace.adapts.len(),
                self.wire_trace.adapts.len()
            ));
        }
        if self.sim_tables != self.wire_tables {
            let i = self
                .sim_tables
                .iter()
                .zip(&self.wire_tables)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return Some(format!(
                "{}: table fingerprints diverge at node {i}\n  sim:  {}\n  wire: {}",
                self.label,
                self.sim_tables.get(i).map_or("<missing>", |s| s),
                self.wire_tables.get(i).map_or("<missing>", |s| s),
            ));
        }
        if self.sim_counts != self.wire_counts {
            return Some(format!(
                "{}: outcome counts diverge (sim {:?} vs wire {:?})",
                self.label, self.sim_counts, self.wire_counts
            ));
        }
        if self.sim_lookup_mean_bits != self.wire_lookup_mean_bits {
            return Some(format!(
                "{}: mean lookup time bits diverge (sim {:#018x} vs wire {:#018x})",
                self.label, self.sim_lookup_mean_bits, self.wire_lookup_mean_bits
            ));
        }
        None
    }
}

/// Uniform-key Poisson-paced schedule, generated outside both systems
/// so neither side's RNG state is disturbed by workload draws.
#[must_use]
pub fn uniform_schedule(
    bits: u8,
    count: usize,
    rate_per_sec: f64,
    wseed: u64,
) -> Vec<(SimTime, u64)> {
    let space = ChordSpace::new(bits);
    let mut rng = SimRng::seed_from(wseed).fork("wire-workload");
    let mut at = SimTime::ZERO;
    (0..count)
        .map(|_| {
            at += SimDuration::from_secs_f64(rng.exp_secs(rate_per_sec));
            (at, space.random_id(&mut rng))
        })
        .collect()
}

/// Hotspot schedule: a fixed fraction of queries hammer one region of
/// the ring (keys drawn from a `2^(bits-3)`-wide window), the rest are
/// uniform. Stresses the adaptation path far harder than uniform keys.
#[must_use]
pub fn hotspot_schedule(
    bits: u8,
    count: usize,
    rate_per_sec: f64,
    wseed: u64,
) -> Vec<(SimTime, u64)> {
    let space = ChordSpace::new(bits);
    let mut rng = SimRng::seed_from(wseed).fork("wire-hotspot");
    let hot_base = space.random_id(&mut rng);
    let window = (space.ring_size() >> 3).max(1);
    let mut at = SimTime::ZERO;
    (0..count)
        .map(|i| {
            at += SimDuration::from_secs_f64(rng.exp_secs(rate_per_sec));
            let key = if i % 4 != 0 {
                // 75% of traffic lands in the hot window.
                let off = space.random_id(&mut rng) % window;
                (hot_base + off) % space.ring_size()
            } else {
                space.random_id(&mut rng)
            };
            (at, key)
        })
        .collect()
}

/// Runs the same `(bits, n, seed, schedule, protocol)` scenario through
/// the live wire cluster and the simulator and collects every compared
/// axis. Panics only on scenario construction failure (invalid
/// parameters), never on disagreement — callers assert via
/// [`WireDiff::ok`]/[`WireDiff::mismatch`].
#[must_use]
pub fn wire_vs_sim(
    bits: u8,
    n: usize,
    seed: u64,
    schedule: &[(SimTime, u64)],
    protocol: MiniProtocol,
) -> WireDiff {
    let cfg = MiniDhtConfig::defaults(bits, seed);
    let geometry = ChordGeometry::populate(bits, n, &mut SimRng::seed_from(seed));
    let members = geometry.members();
    let caps = ramp_capacities(members.len());

    let mut sim = MiniDht::new(cfg, geometry, &caps, protocol).expect("sim construction");
    sim.enable_trace();
    // The wire node owns a per-node decision stream (it cannot share
    // one platform RNG across processes); switch the sim to the same
    // per-node streams so forwarding draws align.
    sim.use_node_decision_rngs();
    let sim_report = sim.run_schedule(schedule);
    let sim_trace = sim.take_trace().unwrap_or_default();
    let sim_tables = sim.table_fingerprints();

    let mut wire = WireCluster::new(
        cfg,
        bits,
        &members,
        &caps,
        protocol,
        &FaultPlan::new(seed),
        RetryPolicy::default(),
        None,
    )
    .expect("wire cluster construction");
    wire.enable_trace();
    let wire_report = wire.run_schedule(schedule).expect("wire run");
    let wire_trace = wire.take_trace().unwrap_or_default();
    let wire_tables = wire.table_fingerprints();

    WireDiff {
        label: format!("bits={bits}/n={n}/seed={seed}/{protocol:?}"),
        sim_trace,
        wire_trace,
        sim_tables,
        wire_tables,
        sim_counts: (sim_report.completed, sim_report.dropped),
        wire_counts: (wire_report.completed, wire_report.dropped),
        sim_lookup_mean_bits: sim_report.lookup_time.mean.to_bits(),
        wire_lookup_mean_bits: wire_report.lookup_time.mean.to_bits(),
    }
}
