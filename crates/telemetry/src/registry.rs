//! Named counters, gauges, and time-bucketed histograms.
//!
//! The registry is plain data; the cheap-when-disabled discipline lives
//! in `Telemetry`, whose recording methods take closures and return
//! before evaluating them when telemetry is off (the same pattern as
//! `TraceLog::record`). Keys are `&'static str` at the call sites but
//! stored owned, so the registry serializes standalone.

use std::collections::BTreeMap;

use serde::Serialize;

/// Per-run metric registry, serialized into the final report record.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, TimeHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets the named gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        match self.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records `value` at sim-time `at_micros` into the named
    /// time-bucketed histogram, creating it with `DEFAULT_BUCKET_MICROS`
    /// on first use (pre-register with [`Registry::histogram`] for a
    /// different bucket width).
    pub fn observe(&mut self, name: &str, at_micros: u64, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(at_micros, value);
        } else {
            let mut h = TimeHistogram::new(DEFAULT_BUCKET_MICROS);
            h.observe(at_micros, value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Pre-registers (or fetches) a histogram with an explicit bucket
    /// width in sim-microseconds.
    pub fn histogram(&mut self, name: &str, bucket_micros: u64) -> &mut TimeHistogram {
        if !self.histograms.contains_key(name) {
            self.histograms
                .insert(name.to_string(), TimeHistogram::new(bucket_micros));
        }
        self.histograms.get_mut(name).expect("just inserted")
    }

    /// The named counter's value (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Read access to a histogram.
    pub fn get_histogram(&self, name: &str) -> Option<&TimeHistogram> {
        self.histograms.get(name)
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Default histogram bucket width: one sim-second.
pub const DEFAULT_BUCKET_MICROS: u64 = 1_000_000;

/// A histogram over sim-time buckets: per bucket, the count and sum of
/// observed values (enough to plot rates and running means without
/// retaining every sample).
#[derive(Debug, Clone, Serialize)]
pub struct TimeHistogram {
    bucket_micros: u64,
    buckets: BTreeMap<u64, Bucket>,
}

/// Aggregates for one time bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct Bucket {
    /// Observations in the bucket.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl TimeHistogram {
    /// A histogram with the given bucket width in sim-microseconds.
    pub fn new(bucket_micros: u64) -> TimeHistogram {
        TimeHistogram {
            bucket_micros: bucket_micros.max(1),
            buckets: BTreeMap::new(),
        }
    }

    /// Records one observation at `at_micros`.
    pub fn observe(&mut self, at_micros: u64, value: f64) {
        let bucket = self
            .buckets
            .entry(at_micros / self.bucket_micros)
            .or_default();
        bucket.count += 1;
        bucket.sum += value;
    }

    /// The bucket width in sim-microseconds.
    pub fn bucket_micros(&self) -> u64 {
        self.bucket_micros
    }

    /// Observations across all buckets.
    pub fn total_count(&self) -> u64 {
        self.buckets.values().map(|b| b.count).sum()
    }

    /// Iterates `(bucket_start_micros, stats)` in time order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Bucket)> + '_ {
        self.buckets
            .iter()
            .map(|(&idx, &b)| (idx * self.bucket_micros, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.counter_add("lookups", 1);
        r.counter_add("lookups", 2);
        assert_eq!(r.counter("lookups"), 3);
        assert_eq!(r.counter("never"), 0);
    }

    #[test]
    fn gauges_keep_latest() {
        let mut r = Registry::new();
        r.gauge_set("load", 1.5);
        r.gauge_set("load", 0.5);
        assert_eq!(r.gauge("load"), Some(0.5));
        assert_eq!(r.gauge("never"), None);
    }

    #[test]
    fn histogram_buckets_by_time() {
        let mut h = TimeHistogram::new(1_000_000);
        h.observe(100, 2.0);
        h.observe(900_000, 4.0);
        h.observe(1_500_000, 8.0);
        let buckets: Vec<(u64, Bucket)> = h.iter().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (0, Bucket { count: 2, sum: 6.0 }));
        assert_eq!(buckets[1], (1_000_000, Bucket { count: 1, sum: 8.0 }));
        assert_eq!(h.total_count(), 3);
    }

    #[test]
    fn registry_observe_uses_default_width() {
        let mut r = Registry::new();
        r.observe("queue", 2_500_000, 3.0);
        let h = r.get_histogram("queue").unwrap();
        assert_eq!(h.bucket_micros(), DEFAULT_BUCKET_MICROS);
        assert_eq!(h.total_count(), 1);
    }

    #[test]
    fn serializes_to_json_object() {
        let mut r = Registry::new();
        r.counter_add("a", 1);
        r.gauge_set("g", 2.0);
        let json = serde::json::to_string(&r);
        assert!(json.contains("\"counters\":{\"a\":1}"), "{json}");
        assert!(json.contains("\"gauges\":{\"g\":2.0}"), "{json}");
    }
}
