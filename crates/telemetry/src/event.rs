//! Typed structured events emitted by the simulator.
//!
//! Node and key identifiers are linearized ring positions (`u64`, see
//! `CycloidSpace::lin`) so the event stream is overlay-agnostic and
//! serializes to plain integers. The `Display` impl renders the compact
//! one-line form retained in the human-readable trace ring
//! (`q42 forward 13 -> 77`); the `Serialize` impl produces the typed
//! JSON form written to sinks (`{"LookupHop":{"q":42,...}}`).

use std::fmt;

use serde::Serialize;

/// One structured simulator event.
///
/// Grouped by lifecycle: query events carry the query index `q`;
/// link/topology events carry linearized node ids.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TelemetryEvent {
    /// A lookup was injected at `source` for `key`.
    LookupStart {
        /// Query index within the run.
        q: u64,
        /// Linearized id of the source node.
        source: u64,
        /// Linearized target key.
        key: u64,
    },
    /// A lookup was forwarded one hop.
    LookupHop {
        /// Query index.
        q: u64,
        /// Linearized id of the forwarding node.
        from: u64,
        /// Linearized id of the chosen next hop.
        to: u64,
    },
    /// A forwarding step hit a departed node and paid a timeout.
    LookupTimeout {
        /// Query index.
        q: u64,
        /// Linearized id of the node whose link was stale.
        at: u64,
        /// Linearized id of the dead peer the link pointed to.
        dead: u64,
    },
    /// A query in flight (or queued) was handed to the ring successor
    /// of a departed node.
    LookupHandoff {
        /// Query index.
        q: u64,
        /// Linearized id of the successor taking over.
        successor: u64,
    },
    /// A lookup reached its owner (and, in anonymity mode, returned).
    LookupComplete {
        /// Query index.
        q: u64,
        /// Hops taken.
        hops: u32,
        /// Heavy nodes encountered along the path.
        heavy: u32,
    },
    /// A lookup was dropped (hop budget exhausted or overlay emptied).
    LookupDropped {
        /// Query index.
        q: u64,
        /// Hops taken before the drop.
        hops: u32,
    },
    /// Adaptation shed inlinks from an overloaded node.
    LinkShed {
        /// Linearized id of the shedding node.
        node: u64,
        /// Inlinks removed.
        count: u32,
    },
    /// Adaptation grew inlinks toward an underloaded node.
    LinkGrown {
        /// Linearized id of the growing node.
        node: u64,
        /// Inlinks requested.
        count: u32,
    },
    /// A stale outlink to a departed peer was purged after a timeout.
    LinkPurged {
        /// Linearized id of the purging node.
        node: u64,
        /// Linearized id of the departed peer.
        peer: u64,
    },
    /// A host joined the overlay mid-run.
    NodeJoined {
        /// Linearized id of the new node.
        node: u64,
    },
    /// A host departed the overlay mid-run.
    NodeDeparted {
        /// Host index of the departed host.
        host: u64,
        /// Overlay nodes it took down with it.
        nodes: u32,
    },
    /// An item-movement round relocated a light node next to a heavy
    /// one.
    NodeRelocated {
        /// Linearized id of the node's old position.
        from: u64,
        /// Linearized id of the new position.
        to: u64,
    },
    /// One periodic adaptation tick ran.
    AdaptTick {
        /// Tick ordinal (1-based).
        round: u64,
    },
    /// A scheduled fault fired (see `ert-faults`).
    FaultInjected {
        /// Index of the event within the (canonically ordered) plan.
        seq: u64,
        /// The fault's kind tag (`Crash`, `Degrade`, `DropMessages`,
        /// `Partition`, `Heal`).
        fault: String,
    },
    /// A forward attempt was lost to a fault (message drop or partition
    /// block); the sender will retry or fail the lookup.
    MessageLost {
        /// Query index.
        q: u64,
        /// Linearized id of the sending node.
        from: u64,
        /// Linearized id of the unreachable target.
        to: u64,
    },
    /// A lost forward is being retried after deterministic backoff.
    LookupRetry {
        /// Query index.
        q: u64,
        /// Failed attempts so far at this hop.
        attempt: u32,
    },
    /// A lookup failed: lost to a crash, or its retry budget ran out.
    LookupFailed {
        /// Query index.
        q: u64,
        /// Hops taken before the failure.
        hops: u32,
    },
    /// A scheduled adversary activation fired (see `ert-adversary`).
    AdversaryActivated {
        /// Index of the event within the (canonically ordered) plan.
        seq: u64,
        /// The actor-class tag (`CapacityLiar`, `SybilSwarm`,
        /// `QueryFlood`, `RoutingDefector`, `Restore`).
        actor: String,
    },
    /// A host began misreporting its capacity estimate.
    CapacityMisreport {
        /// Host index of the liar.
        host: u64,
        /// Multiplicative factor applied to the honest estimate.
        factor: f64,
    },
    /// A defecting node inverted the two-choice rule and forwarded to
    /// the most-loaded reachable candidate.
    DefectedForward {
        /// Query index.
        q: u64,
        /// Linearized id of the defecting node.
        from: u64,
        /// Linearized id of the (deliberately bad) next hop.
        to: u64,
    },
    /// A query-flood flash crowd was injected onto one key.
    FloodBurst {
        /// Linearized target key under flood.
        key: u64,
        /// Number of flood lookups injected.
        count: u32,
    },
    /// One causal span in a lookup's trace tree: a single completed
    /// service at one node, covering the hop's queueing
    /// (`enqueued → service_start`) and service
    /// (`service_start → service_end`) phases. Span identifiers follow
    /// the deterministic `ert-obs` scheme: `span = (q << 16) | (hop+1)`
    /// and `parent` is the previous hop's span (or the lookup root
    /// `q << 16` at hop 0), so trees reconstruct offline from the
    /// event stream alone. Re-deliveries of the same hop index (after
    /// handoffs or retries) emit sibling spans under the same parent.
    HopSpan {
        /// Query index.
        q: u64,
        /// Hop index at the time of service (0 = source node).
        hop: u32,
        /// Linearized id of the serving node.
        node: u64,
        /// Deterministic span id (`ert_obs::span::span_id(q, hop)`).
        span: u64,
        /// Parent span id (`ert_obs::span::parent_id(q, hop)`).
        parent: u64,
        /// Sim time (µs) the query entered this node's queue.
        enqueued: u64,
        /// Sim time (µs) service began.
        service_start: u64,
        /// Sim time (µs) service completed.
        service_end: u64,
    },
}

impl TelemetryEvent {
    /// The stable kind tag (the JSON enum tag) — handy for filtering.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::LookupStart { .. } => "LookupStart",
            TelemetryEvent::LookupHop { .. } => "LookupHop",
            TelemetryEvent::LookupTimeout { .. } => "LookupTimeout",
            TelemetryEvent::LookupHandoff { .. } => "LookupHandoff",
            TelemetryEvent::LookupComplete { .. } => "LookupComplete",
            TelemetryEvent::LookupDropped { .. } => "LookupDropped",
            TelemetryEvent::LinkShed { .. } => "LinkShed",
            TelemetryEvent::LinkGrown { .. } => "LinkGrown",
            TelemetryEvent::LinkPurged { .. } => "LinkPurged",
            TelemetryEvent::NodeJoined { .. } => "NodeJoined",
            TelemetryEvent::NodeDeparted { .. } => "NodeDeparted",
            TelemetryEvent::NodeRelocated { .. } => "NodeRelocated",
            TelemetryEvent::AdaptTick { .. } => "AdaptTick",
            TelemetryEvent::FaultInjected { .. } => "FaultInjected",
            TelemetryEvent::MessageLost { .. } => "MessageLost",
            TelemetryEvent::LookupRetry { .. } => "LookupRetry",
            TelemetryEvent::LookupFailed { .. } => "LookupFailed",
            TelemetryEvent::AdversaryActivated { .. } => "AdversaryActivated",
            TelemetryEvent::CapacityMisreport { .. } => "CapacityMisreport",
            TelemetryEvent::DefectedForward { .. } => "DefectedForward",
            TelemetryEvent::FloodBurst { .. } => "FloodBurst",
            TelemetryEvent::HopSpan { .. } => "HopSpan",
        }
    }
}

impl fmt::Display for TelemetryEvent {
    /// The compact trace-ring line. Query events keep the historical
    /// `q{index} <verb> ...` shape so trace filters written against the
    /// old free-form strings keep working.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryEvent::LookupStart { q, source, key } => {
                write!(f, "q{q} inject at {source} key {key}")
            }
            TelemetryEvent::LookupHop { q, from, to } => {
                write!(f, "q{q} forward {from} -> {to}")
            }
            TelemetryEvent::LookupTimeout { q, at, dead } => {
                write!(f, "q{q} timeout at {at} dead {dead}")
            }
            TelemetryEvent::LookupHandoff { q, successor } => {
                write!(f, "q{q} handoff to {successor}")
            }
            TelemetryEvent::LookupComplete { q, hops, heavy } => {
                write!(f, "q{q} complete hops={hops} heavy={heavy}")
            }
            TelemetryEvent::LookupDropped { q, hops } => {
                write!(f, "q{q} dropped hops={hops}")
            }
            TelemetryEvent::LinkShed { node, count } => {
                write!(f, "node {node} shed {count} inlinks")
            }
            TelemetryEvent::LinkGrown { node, count } => {
                write!(f, "node {node} grew {count} inlinks")
            }
            TelemetryEvent::LinkPurged { node, peer } => {
                write!(f, "node {node} purged dead link {peer}")
            }
            TelemetryEvent::NodeJoined { node } => write!(f, "node {node} joined"),
            TelemetryEvent::NodeDeparted { host, nodes } => {
                write!(f, "host {host} departed ({nodes} nodes)")
            }
            TelemetryEvent::NodeRelocated { from, to } => {
                write!(f, "node {from} relocated to {to}")
            }
            TelemetryEvent::AdaptTick { round } => write!(f, "adapt tick {round}"),
            TelemetryEvent::FaultInjected { seq, fault } => {
                write!(f, "fault {seq} injected: {fault}")
            }
            TelemetryEvent::MessageLost { q, from, to } => {
                write!(f, "q{q} lost {from} -> {to}")
            }
            TelemetryEvent::LookupRetry { q, attempt } => {
                write!(f, "q{q} retry attempt={attempt}")
            }
            TelemetryEvent::LookupFailed { q, hops } => {
                write!(f, "q{q} failed hops={hops}")
            }
            TelemetryEvent::AdversaryActivated { seq, actor } => {
                write!(f, "adversary {seq} activated: {actor}")
            }
            TelemetryEvent::CapacityMisreport { host, factor } => {
                write!(f, "host {host} misreports capacity x{factor}")
            }
            TelemetryEvent::DefectedForward { q, from, to } => {
                write!(f, "q{q} defected {from} -> {to}")
            }
            TelemetryEvent::FloodBurst { key, count } => {
                write!(f, "flood burst key {key} x{count}")
            }
            TelemetryEvent::HopSpan {
                q,
                hop,
                node,
                enqueued,
                service_end,
                ..
            } => {
                write!(
                    f,
                    "q{q} span hop={hop} node={node} {enqueued}..{service_end}"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_trace_shapes() {
        let e = TelemetryEvent::LookupStart {
            q: 42,
            source: 7,
            key: 9,
        };
        assert_eq!(e.to_string(), "q42 inject at 7 key 9");
        let e = TelemetryEvent::LookupHop {
            q: 42,
            from: 7,
            to: 8,
        };
        assert_eq!(e.to_string(), "q42 forward 7 -> 8");
        let e = TelemetryEvent::LookupComplete {
            q: 42,
            hops: 5,
            heavy: 1,
        };
        assert_eq!(e.to_string(), "q42 complete hops=5 heavy=1");
    }

    #[test]
    fn serializes_externally_tagged() {
        let e = TelemetryEvent::LookupHop {
            q: 1,
            from: 2,
            to: 3,
        };
        assert_eq!(
            serde::json::to_string(&e),
            r#"{"LookupHop":{"q":1,"from":2,"to":3}}"#
        );
    }

    #[test]
    fn kind_matches_serialized_tag() {
        let e = TelemetryEvent::AdaptTick { round: 3 };
        assert!(serde::json::to_string(&e).starts_with(&format!("{{\"{}\"", e.kind())));
    }

    #[test]
    fn fault_events_render_and_serialize() {
        let e = TelemetryEvent::FaultInjected {
            seq: 2,
            fault: "Crash".into(),
        };
        assert_eq!(e.to_string(), "fault 2 injected: Crash");
        assert_eq!(e.kind(), "FaultInjected");
        assert_eq!(
            serde::json::to_string(&e),
            r#"{"FaultInjected":{"seq":2,"fault":"Crash"}}"#
        );
        let e = TelemetryEvent::MessageLost {
            q: 4,
            from: 1,
            to: 9,
        };
        assert_eq!(e.to_string(), "q4 lost 1 -> 9");
        let e = TelemetryEvent::LookupRetry { q: 4, attempt: 2 };
        assert_eq!(e.to_string(), "q4 retry attempt=2");
        let e = TelemetryEvent::LookupFailed { q: 4, hops: 7 };
        assert_eq!(e.to_string(), "q4 failed hops=7");
        assert_eq!(
            serde::json::to_string(&e),
            r#"{"LookupFailed":{"q":4,"hops":7}}"#
        );
    }

    #[test]
    fn adversary_events_render_and_serialize() {
        let e = TelemetryEvent::AdversaryActivated {
            seq: 1,
            actor: "CapacityLiar".into(),
        };
        assert_eq!(e.to_string(), "adversary 1 activated: CapacityLiar");
        assert_eq!(e.kind(), "AdversaryActivated");
        assert_eq!(
            serde::json::to_string(&e),
            r#"{"AdversaryActivated":{"seq":1,"actor":"CapacityLiar"}}"#
        );
        let e = TelemetryEvent::CapacityMisreport {
            host: 12,
            factor: 4.0,
        };
        assert_eq!(e.to_string(), "host 12 misreports capacity x4");
        assert_eq!(e.kind(), "CapacityMisreport");
        let e = TelemetryEvent::DefectedForward {
            q: 9,
            from: 3,
            to: 5,
        };
        assert_eq!(e.to_string(), "q9 defected 3 -> 5");
        assert_eq!(
            serde::json::to_string(&e),
            r#"{"DefectedForward":{"q":9,"from":3,"to":5}}"#
        );
        let e = TelemetryEvent::FloodBurst {
            key: 77,
            count: 500,
        };
        assert_eq!(e.to_string(), "flood burst key 77 x500");
        assert_eq!(e.kind(), "FloodBurst");
    }

    #[test]
    fn hop_span_renders_and_serializes() {
        let e = TelemetryEvent::HopSpan {
            q: 3,
            hop: 1,
            node: 12,
            span: (3 << 16) | 2,
            parent: (3 << 16) | 1,
            enqueued: 100,
            service_start: 150,
            service_end: 350,
        };
        assert_eq!(e.kind(), "HopSpan");
        assert_eq!(e.to_string(), "q3 span hop=1 node=12 100..350");
        assert_eq!(
            serde::json::to_string(&e),
            r#"{"HopSpan":{"q":3,"hop":1,"node":12,"span":196610,"parent":196609,"enqueued":100,"service_start":150,"service_end":350}}"#
        );
    }
}
