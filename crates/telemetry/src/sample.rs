//! Periodic time-series snapshots of run state.
//!
//! A [`Snapshot`] is one row of the time series: aggregate run state at
//! one sim instant, cheap enough to take every Δt without disturbing
//! the run. The simulator fills one in at each sample tick and hands it
//! to `Telemetry::record_snapshot`, which retains it in memory and
//! writes it to any sinks as a `{"kind":"snapshot",...}` JSONL record.

use ert_sim::SimTime;
use serde::Serialize;

/// Aggregate run state at one sampling instant.
///
/// Degree statistics cover alive overlay nodes; congestion, queue and
/// utilization statistics cover alive hosts. All fields are plain
/// numbers so a snapshot row maps 1:1 onto a CSV/dataframe column set.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Snapshot {
    /// Sim time of the sample (serialized as integer microseconds).
    pub at: SimTime,
    /// Queries injected but not yet completed or dropped.
    pub lookups_in_flight: u64,
    /// Completions so far.
    pub lookups_completed: u64,
    /// Drops so far.
    pub lookups_dropped: u64,
    /// Sum of host queue lengths (including in-service slots).
    pub queue_depth_total: u64,
    /// Longest single host queue.
    pub queue_depth_max: u64,
    /// Median host congestion (load over capacity).
    pub congestion_p50: f64,
    /// 99th-percentile host congestion.
    pub congestion_p99: f64,
    /// Maximum host congestion.
    pub congestion_max: f64,
    /// Mean host utilization: busy time over elapsed time.
    pub utilization_mean: f64,
    /// Minimum alive-node indegree.
    pub indegree_min: u64,
    /// Mean alive-node indegree.
    pub indegree_mean: f64,
    /// Maximum alive-node indegree.
    pub indegree_max: u64,
    /// Minimum alive-node outdegree.
    pub outdegree_min: u64,
    /// Mean alive-node outdegree.
    pub outdegree_mean: f64,
    /// Maximum alive-node outdegree.
    pub outdegree_max: u64,
    /// Alive overlay nodes.
    pub alive_nodes: u64,
    /// Alive hosts.
    pub alive_hosts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_serializes_flat() {
        let s = Snapshot {
            at: SimTime::from_micros(1_500_000),
            lookups_in_flight: 3,
            lookups_completed: 10,
            lookups_dropped: 0,
            queue_depth_total: 4,
            queue_depth_max: 2,
            congestion_p50: 0.5,
            congestion_p99: 1.5,
            congestion_max: 2.0,
            utilization_mean: 0.25,
            indegree_min: 1,
            indegree_mean: 6.5,
            indegree_max: 12,
            outdegree_min: 2,
            outdegree_mean: 7.0,
            outdegree_max: 11,
            alive_nodes: 64,
            alive_hosts: 64,
        };
        let json = serde::json::to_string(&s);
        assert!(json.starts_with("{\"at\":1500000,"), "{json}");
        assert!(json.contains("\"congestion_p99\":1.5"), "{json}");
        assert!(json.contains("\"alive_hosts\":64"), "{json}");
    }
}
