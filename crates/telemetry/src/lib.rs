//! Telemetry for the ERT simulator: a typed structured-event stream
//! with pluggable sinks, a metric registry, and a periodic time-series
//! sampler — one observability layer shared by every run.
//!
//! The center is [`Telemetry`], which a simulation owns and drives:
//!
//! - [`Telemetry::emit`] records a [`TelemetryEvent`] lazily: the
//!   closure building the event runs only when telemetry is enabled, so
//!   the disabled path is a single branch (the same discipline as
//!   `ert_sim::TraceLog`, and benchmarked under 5 ns in `ert-bench`).
//!   Enabled, each event goes to every attached [`EventSink`] as a
//!   JSONL record and — when a trace capacity is set — to the bounded
//!   human-readable trace ring via the event's `Display` form.
//! - [`Telemetry::counter_add`] / [`gauge_set`](Telemetry::gauge_set) /
//!   [`observe`](Telemetry::observe) feed the [`Registry`] of named
//!   counters, gauges, and time-bucketed histograms.
//! - [`Telemetry::record_snapshot`] retains periodic [`Snapshot`] rows
//!   (driven by the sim clock at a configurable Δt) and streams them to
//!   the sinks alongside the events.
//!
//! The JSONL stream is self-describing: every line is an object with a
//! `kind` of `"event"`, `"snapshot"`, or `"report"`.
//!
//! ```
//! use ert_sim::SimTime;
//! use ert_telemetry::{MemorySink, Telemetry, TelemetryEvent};
//!
//! let sink = MemorySink::new();
//! let lines = sink.handle();
//! let mut tel = Telemetry::disabled();
//! tel.add_sink(Box::new(sink));
//! tel.emit(SimTime::from_micros(5), || TelemetryEvent::AdaptTick { round: 1 });
//! tel.flush();
//! assert_eq!(
//!     lines.lock().unwrap()[0],
//!     r#"{"kind":"event","at":5,"seq":0,"event":{"AdaptTick":{"round":1}}}"#
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod registry;
mod sample;
mod sink;

pub use event::TelemetryEvent;
pub use registry::{Bucket, Registry, TimeHistogram, DEFAULT_BUCKET_MICROS};
pub use sample::Snapshot;
pub use sink::{EventSink, JsonlSink, MemorySink, RingSink, SpanSink};

use ert_sim::{SimTime, TraceLog};
use serde::Serialize;

/// The per-run telemetry pipeline: event stream, metric registry,
/// snapshot series, and the human-readable trace ring.
pub struct Telemetry {
    /// True when any recording destination exists; the only branch on
    /// the disabled fast path.
    enabled: bool,
    events_emitted: u64,
    sinks: Vec<Box<dyn EventSink>>,
    trace: TraceLog,
    registry: Registry,
    snapshots: Vec<Snapshot>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("events_emitted", &self.events_emitted)
            .field("sinks", &self.sinks.len())
            .field("trace_len", &self.trace.len())
            .field("snapshots", &self.snapshots.len())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// Telemetry with no destinations: every recording call is a single
    /// branch.
    pub fn disabled() -> Telemetry {
        Telemetry::with_trace_capacity(0)
    }

    /// Telemetry whose trace ring retains the last `capacity` events
    /// (zero disables the ring; sinks can still be attached).
    pub fn with_trace_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            enabled: capacity > 0,
            events_emitted: 0,
            sinks: Vec::new(),
            trace: TraceLog::new(capacity),
            registry: Registry::new(),
            snapshots: Vec::new(),
        }
    }

    /// Attaches a sink; every subsequent event and snapshot reaches it.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
        self.enabled = true;
    }

    /// Whether recording calls do any work.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a structured event. The closure runs only when telemetry
    /// is enabled — keep event construction inside it.
    #[inline]
    pub fn emit(&mut self, at: SimTime, event: impl FnOnce() -> TelemetryEvent) {
        if !self.enabled {
            return;
        }
        self.emit_enabled(at, event());
    }

    /// The enabled path, out of line so `emit` inlines to one branch.
    fn emit_enabled(&mut self, at: SimTime, event: TelemetryEvent) {
        let seq = self.events_emitted;
        self.events_emitted += 1;
        if !self.sinks.is_empty() {
            let mut line = String::with_capacity(96);
            line.push_str("{\"kind\":\"event\",\"at\":");
            line.push_str(&at.as_micros().to_string());
            line.push_str(",\"seq\":");
            line.push_str(&seq.to_string());
            line.push_str(",\"event\":");
            event.serialize_json(&mut line);
            line.push('}');
            for sink in &mut self.sinks {
                sink.record(&line);
            }
        }
        self.trace.record(at, || event.to_string());
    }

    /// Adds to a named counter (no-op when disabled).
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        self.registry.counter_add(name, delta);
    }

    /// Sets a named gauge; the closure runs only when enabled.
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, value: impl FnOnce() -> f64) {
        if !self.enabled {
            return;
        }
        let v = value();
        self.registry.gauge_set(name, v);
    }

    /// Records into a named time-bucketed histogram; the closure runs
    /// only when enabled.
    #[inline]
    pub fn observe(&mut self, name: &'static str, at: SimTime, value: impl FnOnce() -> f64) {
        if !self.enabled {
            return;
        }
        let v = value();
        self.registry.observe(name, at.as_micros(), v);
    }

    /// Retains a periodic snapshot and streams it to the sinks. Not
    /// gated on `enabled`: the sampler only runs when a sample interval
    /// was configured, and the retained series is its product even with
    /// no sinks attached.
    pub fn record_snapshot(&mut self, snapshot: Snapshot) {
        if !self.sinks.is_empty() {
            let mut line = String::with_capacity(256);
            line.push_str("{\"kind\":\"snapshot\",\"snapshot\":");
            snapshot.serialize_json(&mut line);
            line.push('}');
            for sink in &mut self.sinks {
                sink.record(&line);
            }
        }
        self.snapshots.push(snapshot);
    }

    /// Writes the end-of-run report record: the caller's report plus
    /// this run's metric registry, as one `{"kind":"report",...}` line.
    pub fn record_report<T: Serialize>(&mut self, report: &T) {
        if self.sinks.is_empty() {
            return;
        }
        let mut line = String::with_capacity(512);
        line.push_str("{\"kind\":\"report\",\"report\":");
        report.serialize_json(&mut line);
        line.push_str(",\"registry\":");
        self.registry.serialize_json(&mut line);
        line.push('}');
        for sink in &mut self.sinks {
            sink.record(&line);
        }
    }

    /// Flushes every sink (call at end of run).
    pub fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }

    /// The retained snapshot series, in time order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// The human-readable trace ring.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Structured events recorded so far (independent of sink count).
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(q: u64) -> TelemetryEvent {
        TelemetryEvent::LookupHop { q, from: 1, to: 2 }
    }

    #[test]
    fn telemetry_is_send_for_the_parallel_fan_out() {
        // Instrumented runs execute on ert-par worker threads; the
        // pipeline (and thus every boxed sink, via `EventSink: Send`)
        // must cross thread boundaries.
        fn assert_send<T: Send>() {}
        assert_send::<Telemetry>();
        assert_send::<Box<dyn EventSink>>();
    }

    #[test]
    fn disabled_runs_no_closures() {
        let mut tel = Telemetry::disabled();
        tel.emit(SimTime::ZERO, || panic!("closure must not run"));
        tel.gauge_set("g", || panic!("closure must not run"));
        tel.observe("h", SimTime::ZERO, || panic!("closure must not run"));
        assert_eq!(tel.events_emitted(), 0);
        assert!(tel.registry().is_empty());
    }

    #[test]
    fn events_reach_every_sink_with_monotone_seq() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let (ha, hb) = (a.handle(), b.handle());
        let mut tel = Telemetry::disabled();
        tel.add_sink(Box::new(a));
        tel.add_sink(Box::new(b));
        tel.emit(SimTime::from_micros(10), || hop(0));
        tel.emit(SimTime::from_micros(20), || hop(1));
        let lines = ha.lock().unwrap().clone();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":0"), "{}", lines[0]);
        assert!(lines[1].contains("\"seq\":1"), "{}", lines[1]);
        assert_eq!(lines, *hb.lock().unwrap());
    }

    #[test]
    fn trace_ring_gets_display_form() {
        let mut tel = Telemetry::with_trace_capacity(8);
        tel.emit(SimTime::from_micros(3), || hop(42));
        let rendered = tel.trace().render();
        assert!(rendered.contains("q42 forward 1 -> 2"), "{rendered}");
        assert_eq!(tel.events_emitted(), 1);
    }

    fn zeroed_snapshot(at: SimTime) -> Snapshot {
        Snapshot {
            at,
            lookups_in_flight: 0,
            lookups_completed: 0,
            lookups_dropped: 0,
            queue_depth_total: 0,
            queue_depth_max: 0,
            congestion_p50: 0.0,
            congestion_p99: 0.0,
            congestion_max: 0.0,
            utilization_mean: 0.0,
            indegree_min: 0,
            indegree_mean: 0.0,
            indegree_max: 0,
            outdegree_min: 0,
            outdegree_mean: 0.0,
            outdegree_max: 0,
            alive_nodes: 0,
            alive_hosts: 0,
        }
    }

    #[test]
    fn snapshots_stream_and_retain() {
        let sink = MemorySink::new();
        let lines = sink.handle();
        let mut tel = Telemetry::disabled();
        tel.add_sink(Box::new(sink));
        tel.record_snapshot(zeroed_snapshot(SimTime::from_micros(7)));
        assert_eq!(tel.snapshots().len(), 1);
        let line = &lines.lock().unwrap()[0];
        assert!(
            line.starts_with("{\"kind\":\"snapshot\",\"snapshot\":{\"at\":7,"),
            "{line}"
        );
    }

    #[test]
    fn report_record_embeds_registry() {
        let sink = MemorySink::new();
        let lines = sink.handle();
        let mut tel = Telemetry::disabled();
        tel.add_sink(Box::new(sink));
        tel.counter_add("x", 2);
        tel.record_report(&42u64);
        let line = lines.lock().unwrap().pop().unwrap();
        assert_eq!(
            line,
            "{\"kind\":\"report\",\"report\":42,\
             \"registry\":{\"counters\":{\"x\":2},\"gauges\":{},\"histograms\":{}}}"
        );
    }
}
