//! Pluggable destinations for serialized telemetry records.
//!
//! A sink receives each record as one JSON line (no trailing newline);
//! how it stores or ships the line is its business. The two built-ins
//! cover the common cases: [`JsonlSink`] appends to a file for offline
//! analysis, [`RingSink`] / [`MemorySink`] capture lines in memory for
//! tests and determinism checks (both hand out an [`Arc`] handle so the
//! captured lines stay readable after the sink — boxed inside a
//! `Telemetry` — is out of reach).

// D10 mirror exception: the in-memory sinks hand out Arc<Mutex<_>>
// read handles on purpose (captured lines must stay readable after the
// sink is boxed away), and ert-telemetry is observability plumbing
// outside the shard-bound crates ert-lint scopes D10 to.
#![allow(clippy::disallowed_types)]

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A destination for serialized telemetry records.
///
/// `Send` so a `Telemetry` (and anything holding one, like a network)
/// can move across threads.
pub trait EventSink: Send {
    /// Accepts one serialized record (a JSON object, no newline).
    fn record(&mut self, line: &str);

    /// Flushes buffered records; called at end of run.
    fn flush(&mut self) {}
}

/// Appends records to a file, one JSON object per line (JSONL).
pub struct JsonlSink {
    writer: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl EventSink for JsonlSink {
    fn record(&mut self, line: &str) {
        // Telemetry must not abort a simulation: swallow write errors
        // (the flush at end of run surfaces a short write as a missing
        // tail, which is the JSONL convention for truncated logs).
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Captures every record in memory, unbounded. For tests.
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink {
            lines: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle that stays readable after the sink is boxed away.
    pub fn handle(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.lines)
    }
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink for MemorySink {
    fn record(&mut self, line: &str) {
        self.lines
            .lock()
            // ert-lint: allow(transitive-panic) — poisoning needs a panicked writer, which the panic-free sim path rules out
            .expect("no poisoned telemetry lock")
            .push(line.to_string());
    }
}

/// Keeps only the most recent `capacity` records. For tests that want
/// a bounded tail, mirroring the trace ring.
pub struct RingSink {
    capacity: usize,
    lines: Arc<Mutex<VecDeque<String>>>,
}

impl RingSink {
    /// A sink retaining the last `capacity` records.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity,
            lines: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// A handle that stays readable after the sink is boxed away.
    pub fn handle(&self) -> Arc<Mutex<VecDeque<String>>> {
        Arc::clone(&self.lines)
    }
}

impl EventSink for RingSink {
    fn record(&mut self, line: &str) {
        // ert-lint: allow(transitive-panic) — poisoning needs a panicked writer, which the panic-free sim path rules out
        let mut lines = self.lines.lock().expect("no poisoned telemetry lock");
        if self.capacity == 0 {
            return;
        }
        if lines.len() == self.capacity {
            lines.pop_front();
        }
        lines.push_back(line.to_string());
    }
}

/// Captures only the records a lookup-trace tree is built from:
/// [`HopSpan`](crate::TelemetryEvent::HopSpan) spans plus the
/// `LookupStart` / `LookupComplete` lifecycle events that delimit each
/// tree. Everything else (link events, snapshots, reports) is dropped,
/// so a span stream of a large run stays proportional to hops served
/// rather than to total telemetry volume. The captured lines are valid
/// JSONL input for `ert-obs`'s `trace-analyze`.
pub struct SpanSink {
    lines: Arc<Mutex<Vec<String>>>,
}

/// The event tags a [`SpanSink`] retains, matched against the
/// serialized line (events are externally tagged, so the tag is the
/// first key of the `"event"` object).
const SPAN_TAGS: [&str; 3] = [
    "\"event\":{\"HopSpan\"",
    "\"event\":{\"LookupStart\"",
    "\"event\":{\"LookupComplete\"",
];

impl SpanSink {
    /// An empty span sink.
    pub fn new() -> SpanSink {
        SpanSink {
            lines: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle that stays readable after the sink is boxed away.
    pub fn handle(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.lines)
    }
}

impl Default for SpanSink {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink for SpanSink {
    fn record(&mut self, line: &str) {
        if SPAN_TAGS.iter().any(|tag| line.contains(tag)) {
            self.lines
                .lock()
                // ert-lint: allow(transitive-panic) — poisoning needs a panicked writer, which the panic-free sim path rules out
                .expect("no poisoned telemetry lock")
                .push(line.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_captures_in_order() {
        let mut sink = MemorySink::new();
        let handle = sink.handle();
        sink.record("a");
        sink.record("b");
        assert_eq!(
            *handle.lock().unwrap(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn ring_sink_keeps_only_the_tail() {
        let mut sink = RingSink::new(2);
        let handle = sink.handle();
        for line in ["a", "b", "c", "d"] {
            sink.record(line);
        }
        let lines: Vec<String> = handle.lock().unwrap().iter().cloned().collect();
        assert_eq!(lines, vec!["c".to_string(), "d".to_string()]);
    }

    #[test]
    fn zero_capacity_ring_discards_everything() {
        let mut sink = RingSink::new(0);
        let handle = sink.handle();
        sink.record("a");
        assert!(handle.lock().unwrap().is_empty());
    }

    #[test]
    fn span_sink_keeps_only_trace_records() {
        let mut sink = SpanSink::new();
        let handle = sink.handle();
        let kept = [
            r#"{"kind":"event","at":0,"seq":0,"event":{"LookupStart":{"q":0,"source":1,"key":2}}}"#,
            r#"{"kind":"event","at":5,"seq":1,"event":{"HopSpan":{"q":0,"hop":0,"node":1,"span":1,"parent":0,"enqueued":0,"service_start":0,"service_end":5}}}"#,
            r#"{"kind":"event","at":9,"seq":3,"event":{"LookupComplete":{"q":0,"hops":1,"heavy":0}}}"#,
        ];
        let dropped = [
            r#"{"kind":"event","at":7,"seq":2,"event":{"LookupHop":{"q":0,"from":1,"to":2}}}"#,
            r#"{"kind":"snapshot","snapshot":{"at":8}}"#,
            r#"{"kind":"report","report":42}"#,
        ];
        for line in kept.iter().chain(dropped.iter()) {
            sink.record(line);
        }
        let got = handle.lock().unwrap().clone();
        assert_eq!(got, kept.map(String::from).to_vec());
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let path = std::env::temp_dir().join("ert_telemetry_sink_test.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.record(r#"{"kind":"event"}"#);
            sink.record(r#"{"kind":"snapshot"}"#);
            sink.flush();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "{\"kind\":\"event\"}\n{\"kind\":\"snapshot\"}\n");
        let _ = std::fs::remove_file(&path);
    }
}
