//! Runtime invariant sanitizer — the dynamic counterpart of `ert-lint`.
//!
//! Where the static pass keeps nondeterminism out of the source, this
//! module asserts the paper's *provable* properties while a simulation
//! actually runs: event-clock monotonicity, FIFO service discipline on
//! every host, and the Theorem 3.1–3.3 degree envelopes (with explicit
//! structural slack for the mandatory Cycloid links the theorems'
//! asymptotic `O(1)` terms absorb).
//!
//! The checks are compiled in under `debug_assertions` (so the whole
//! debug test suite runs sanitized for free) or the `sanitize` cargo
//! feature (so CI can run them against release-speed builds:
//! `cargo test --release --features sanitize -p ert-network`). In a
//! plain release build [`Sanitizer::ACTIVE`] is `false` and every call
//! compiles to nothing.
//!
//! Cost model: per-event checks are O(1) (plus O(queue) when a host is
//! touched); the degree sweep is O(nodes) and runs only on adaptation
//! ticks and at the end of the run.

use ert_adversary::{AdversaryKind, AdversaryPlan};
use ert_core::bounds::{theorem31_initial_indegree_bounds, theorem33_outdegree_bound};
use ert_sim::SimTime;

use crate::spec::TablePolicy;
use crate::state::Host;
use crate::topology::Topology;

/// Which theorem envelopes the degree sweep must *not* assert for one
/// run, because the run's [`AdversaryPlan`] deliberately violates the
/// assumption the theorem rests on. Each relaxed envelope carries a tag
/// naming the violated assumption, so a relaxation is never silent: the
/// tag is what reports and the byzantine harness surface.
///
/// Derivation is deliberately narrow — defectors and query floods
/// attack routing and workload, not the degree structure, so they relax
/// nothing and every envelope stays armed under them:
///
/// * **capacity liars** break the γ_c honest-estimate premise. That
///   invalidates Theorem 3.1 directly (capacity_eval vs. *true*
///   capacity), and transitively 3.2 and 3.3 whose caps are derived
///   from capacity evaluations liars can deflate under live links.
/// * **Sybil swarms** break the independent-identity premise behind the
///   indegree concentration argument, so Theorem 3.2's cap is off for
///   victims; per-host 3.1 and the 3.3 outdegree ceiling still hold
///   (Sybils report their own capacity honestly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnvelopeRelaxations {
    /// Violated-assumption tag relaxing the Theorem 3.1 envelope.
    pub thm31: Option<&'static str>,
    /// Violated-assumption tag relaxing the Theorem 3.2 cap.
    pub thm32: Option<&'static str>,
    /// Violated-assumption tag relaxing the Theorem 3.3 ceiling.
    pub thm33: Option<&'static str>,
}

/// Tag for envelopes invalidated by capacity misreports.
const GAMMA_C_VIOLATED: &str = "CapacityLiar: ĉ misreported beyond γ_c";
/// Tag for the indegree cap invalidated by identity concentration.
const SYBIL_CONCENTRATION: &str = "SybilSwarm: coordinated identities concentrate indegree";

impl EnvelopeRelaxations {
    /// No relaxation: every envelope armed (the fault-only default).
    pub const NONE: EnvelopeRelaxations = EnvelopeRelaxations {
        thm31: None,
        thm32: None,
        thm33: None,
    };

    /// Derives the relaxations a plan warrants. An empty plan — and any
    /// plan of only defectors, floods, and restores — relaxes nothing.
    pub fn from_plan(plan: &AdversaryPlan) -> EnvelopeRelaxations {
        let mut relax = EnvelopeRelaxations::NONE;
        if plan.any_kind(|k| matches!(k, AdversaryKind::CapacityLiar { .. })) {
            relax.thm31 = Some(GAMMA_C_VIOLATED);
            relax.thm32 = Some(GAMMA_C_VIOLATED);
            relax.thm33 = Some(GAMMA_C_VIOLATED);
        }
        if plan.any_kind(|k| matches!(k, AdversaryKind::SybilSwarm { .. })) {
            relax.thm32.get_or_insert(SYBIL_CONCENTRATION);
        }
        relax
    }

    /// True when every envelope is still armed.
    pub fn is_none(&self) -> bool {
        *self == EnvelopeRelaxations::NONE
    }

    /// The `(theorem, violated-assumption)` pairs in force, for report
    /// surfaces.
    pub fn tags(&self) -> Vec<(&'static str, &'static str)> {
        let mut out = Vec::new();
        if let Some(t) = self.thm31 {
            out.push(("Theorem 3.1", t));
        }
        if let Some(t) = self.thm32 {
            out.push(("Theorem 3.2", t));
        }
        if let Some(t) = self.thm33 {
            out.push(("Theorem 3.3", t));
        }
        out
    }
}

/// Runtime invariant checker owned by a [`crate::Network`].
#[derive(Debug)]
pub(crate) struct Sanitizer {
    last_event_at: SimTime,
    checks: u64,
}

impl Sanitizer {
    /// Whether the sanitizer does anything in this build.
    pub(crate) const ACTIVE: bool = cfg!(any(debug_assertions, feature = "sanitize"));

    pub(crate) fn new() -> Self {
        Sanitizer {
            last_event_at: SimTime::ZERO,
            checks: 0,
        }
    }

    /// Number of individual invariant checks performed so far (0 when
    /// the sanitizer is compiled out).
    pub(crate) fn checks(&self) -> u64 {
        self.checks
    }

    /// Event-clock monotonicity: a discrete-event simulation must never
    /// pop an event earlier than one it already processed.
    pub(crate) fn on_event(&mut self, now: SimTime) {
        if !Self::ACTIVE {
            return;
        }
        assert!(
            now >= self.last_event_at,
            "sanitize: event clock ran backwards ({:?} after {:?})",
            now,
            self.last_event_at
        );
        self.last_event_at = now;
        self.checks += 1;
    }

    /// Lookup conservation: at every point of a run each started lookup
    /// is in exactly one of four states — completed, dropped at the hop
    /// limit, failed to a fault, or still outstanding. A fault path that
    /// loses a query without accounting for it shows up here
    /// immediately rather than as a silently-short report.
    pub(crate) fn check_conservation(
        &mut self,
        started: u64,
        completed: u64,
        dropped: u64,
        failed: u64,
        outstanding: u64,
    ) {
        if !Self::ACTIVE {
            return;
        }
        assert!(
            started == completed + dropped + failed + outstanding,
            "sanitize: lookup conservation violated: started {started} != \
             completed {completed} + dropped {dropped} + failed {failed} + \
             outstanding {outstanding}"
        );
        self.checks += 1;
    }

    /// FIFO service discipline on one host, checked whenever an event
    /// touches it: the service slot drains before the queue holds
    /// anything, nothing finished sits in the queue, and the load
    /// accounting stays consistent.
    pub(crate) fn check_host(
        &mut self,
        host: &Host,
        host_idx: usize,
        done: impl Fn(usize) -> bool,
    ) {
        if !Self::ACTIVE || !host.alive {
            return;
        }
        assert!(
            host.in_service.is_some() || host.queue.is_empty(),
            "sanitize: host {host_idx} queues {} queries with an idle service slot",
            host.queue.len()
        );
        if let Some(q) = host.in_service {
            assert!(
                !done(q),
                "sanitize: host {host_idx} is serving already-completed query {q}"
            );
            assert!(
                !host.queue.contains(&q),
                "sanitize: query {q} both in service and queued on host {host_idx}"
            );
        }
        for &q in &host.queue {
            assert!(
                !done(q),
                "sanitize: completed query {q} still queued on host {host_idx}"
            );
        }
        assert!(
            host.load() as u64 <= host.total_received,
            "sanitize: host {host_idx} holds {} queries but only ever received {}",
            host.load(),
            host.total_received
        );
        assert!(
            host.period_load <= host.total_received,
            "sanitize: host {host_idx} period load {} exceeds lifetime total {}",
            host.period_load,
            host.total_received
        );
        self.checks += 1;
    }

    /// The O(nodes) degree sweep: Theorem 3.1 capacity-evaluation
    /// envelopes per host, the Theorem 3.2-enforcing elastic indegree
    /// cap per node, and the Theorem 3.3 outdegree ceiling. `gamma_c`
    /// is the capacity estimation error factor in force; `relax` names
    /// the envelopes the run's adversary plan has invalidated (each
    /// skip is deliberate and tagged, never a blanket disarm).
    pub(crate) fn sweep(&mut self, topo: &Topology, gamma_c: f64, relax: EnvelopeRelaxations) {
        if !Self::ACTIVE {
            return;
        }
        if relax.thm31.is_none() {
            let all: Vec<usize> = (0..topo.hosts.len()).collect();
            sweep_hosts(topo, gamma_c, &all);
        }
        if topo.table_policy != TablePolicy::Elastic {
            // Degree elasticity (and Theorems 3.2/3.3) only applies to
            // ERT tables; Base/VS tables are structurally fixed.
            self.checks += 1;
            return;
        }
        let c_max = topo
            .hosts
            .iter()
            .filter(|h| h.alive)
            .map(|h| h.capacity_eval)
            .max()
            .unwrap_or(1);
        let all: Vec<usize> = (0..topo.nodes.len()).collect();
        sweep_nodes(topo, gamma_c, relax, c_max, &all);
        self.checks += 1;
    }

    /// The sharded form of [`Sanitizer::sweep`]: theorem envelopes are
    /// evaluated per shard — each worker checks the host/node slices one
    /// shard owns — and merged. The only cross-shard quantity is the
    /// Theorem 3.3 `c_max`, which is computed as the max over per-shard
    /// maxima before the node pass. Runs on the `ert-par` ordered worker
    /// pool (the workspace's one sanctioned fan-out point, keeping D7
    /// satisfied); every assertion is identical to the sequential sweep,
    /// so a violation fails the run no matter which shard finds it.
    pub(crate) fn sweep_sharded(
        &mut self,
        topo: &Topology,
        gamma_c: f64,
        relax: EnvelopeRelaxations,
        host_shards: &[Vec<usize>],
        node_shards: &[Vec<usize>],
        workers: usize,
    ) {
        if !Self::ACTIVE {
            return;
        }
        // Per-shard host pass: thm31 envelopes plus the shard-local
        // capacity maximum (merged into the global c_max below).
        let shard_maxima = ert_par::map_ordered(workers, host_shards.to_vec(), |hosts| {
            if relax.thm31.is_none() {
                sweep_hosts(topo, gamma_c, &hosts);
            }
            hosts
                .iter()
                .map(|&h| &topo.hosts[h])
                .filter(|h| h.alive)
                .map(|h| h.capacity_eval)
                .max()
                .unwrap_or(0)
        });
        if topo.table_policy != TablePolicy::Elastic {
            self.checks += 1;
            return;
        }
        let c_max = shard_maxima.into_iter().max().unwrap_or(1).max(1);
        // Per-shard node pass: thm32 caps and the thm33 ceiling, each
        // shard over its own node slice.
        ert_par::map_ordered(workers, node_shards.to_vec(), |nodes| {
            sweep_nodes(topo, gamma_c, relax, c_max, &nodes);
        });
        self.checks += 1;
    }
}

/// Structural slack shared by the degree envelopes: mandatory Cycloid
/// links (leaf-set, cyclic, cubical) sit outside the elastic budget;
/// the theorems bury them in O(1)/O(2^d/d) terms, so the envelopes get
/// an explicit allowance. The extra constant covers saturated-fallback
/// recruitment during table construction.
fn envelope_slack(topo: &Topology) -> u64 {
    2 * topo.params.leaf_window as u64 + topo.space.dim() as u64 + 8
}

/// Theorem 3.1 envelope over one slice of host indices. Shared by the
/// sequential sweep (one slice holding every host) and the sharded
/// sweep (one slice per shard).
fn sweep_hosts(topo: &Topology, gamma_c: f64, hosts: &[usize]) {
    let params = &topo.params;
    for &i in hosts {
        let host = &topo.hosts[i];
        if !host.alive {
            continue;
        }
        // Theorem 3.1: capacity_eval = ⌊0.5 + α·ĉ⌋ with ĉ within a
        // factor γ_c of the true normalized capacity must land in
        // [αc/γ_c − O(1), αcγ_c + O(1)] (the clamp to ≥ 1 only ever
        // raises it toward the lower bound).
        let (lo, hi) = theorem31_initial_indegree_bounds(params.alpha, host.norm_capacity, gamma_c);
        let ce = host.capacity_eval as f64;
        assert!(
            ce >= lo && ce <= hi,
            "sanitize: host {i} capacity_eval {ce} outside Theorem 3.1 envelope \
             [{lo:.2}, {hi:.2}] (α={}, c={}, γ_c={gamma_c})",
            params.alpha,
            host.norm_capacity
        );
    }
}

/// Theorem 3.2/3.3 envelopes over one slice of node indices, given the
/// globally merged `c_max`.
fn sweep_nodes(
    topo: &Topology,
    gamma_c: f64,
    relax: EnvelopeRelaxations,
    c_max: u32,
    nodes: &[usize],
) {
    let params = &topo.params;
    let slack = envelope_slack(topo);
    // Theorem 3.3 leading term with ν_min at one query per link per
    // period (the implementation's accounting unit).
    let out_bound =
        theorem33_outdegree_bound(c_max as f64, gamma_c, params.gamma_l, 1.0) as u64 + slack;
    for &i in nodes {
        let node = &topo.nodes[i];
        if !node.alive {
            continue;
        }
        assert!(node.d_max >= 1, "sanitize: node {i} adapted d_max to zero");
        // Theorem 3.2 enforcement: adaptation keeps the elastic
        // indegree within a capacity-proportional band. The growth
        // cap in `on_adapt_tick` is 8·max(capacity_eval, 8); links
        // outside the elastic budget are covered by `slack`.
        let host = &topo.hosts[node.host];
        if relax.thm32.is_none() {
            let in_cap = 8 * u64::from(host.capacity_eval.max(8)) + slack;
            let ind = node.table.indegree() as u64;
            assert!(
                ind <= in_cap,
                "sanitize: node {i} indegree {ind} exceeds adapted Theorem 3.2 cap {in_cap} \
                 (capacity_eval {})",
                host.capacity_eval
            );
        }
        if relax.thm33.is_none() {
            let outd = node.table.outdegree() as u64;
            assert!(
                outd <= out_bound,
                "sanitize: node {i} outdegree {outd} exceeds Theorem 3.3 bound {out_bound} \
                 (c_max {c_max})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizer_is_active_in_debug_or_feature_builds() {
        // The test suite itself runs under debug_assertions or with the
        // feature on, so ACTIVE must hold here — this guards against the
        // cfg expression rotting into never-true.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(Sanitizer::ACTIVE);
        }
    }

    #[test]
    fn clock_monotonicity_accepts_equal_times() {
        let mut s = Sanitizer::new();
        let t = SimTime::ZERO + ert_sim::SimDuration::from_secs_f64(1.0);
        s.on_event(t);
        s.on_event(t); // Simultaneous events are fine.
        assert_eq!(s.checks(), 2);
    }

    #[test]
    #[should_panic(expected = "event clock ran backwards")]
    fn clock_regression_panics() {
        let mut s = Sanitizer::new();
        let t = SimTime::ZERO + ert_sim::SimDuration::from_secs_f64(2.0);
        s.on_event(t);
        s.on_event(SimTime::ZERO + ert_sim::SimDuration::from_secs_f64(1.0));
    }

    #[test]
    #[should_panic(expected = "idle service slot")]
    fn queued_query_with_idle_slot_panics() {
        let mut host = Host::new(1000.0, 1.0, 1.0, 4, ert_overlay::Coord::new(0.0, 0.0));
        host.queue.push_back(0);
        host.total_received = 1;
        let mut s = Sanitizer::new();
        s.check_host(&host, 0, |_| false);
    }

    #[test]
    #[should_panic(expected = "already-completed query")]
    fn serving_a_done_query_panics() {
        let mut host = Host::new(1000.0, 1.0, 1.0, 4, ert_overlay::Coord::new(0.0, 0.0));
        host.in_service = Some(3);
        host.total_received = 1;
        let mut s = Sanitizer::new();
        s.check_host(&host, 0, |_| true);
    }

    #[test]
    fn conservation_accepts_balanced_counts() {
        let mut s = Sanitizer::new();
        s.check_conservation(10, 4, 1, 2, 3);
        assert_eq!(s.checks(), 1);
    }

    #[test]
    #[should_panic(expected = "lookup conservation violated")]
    fn conservation_rejects_lost_lookups() {
        let mut s = Sanitizer::new();
        s.check_conservation(10, 4, 1, 2, 2); // one lookup vanished
    }

    #[test]
    fn relaxations_derive_only_from_degree_violating_actors() {
        use ert_sim::SimTime;

        let mut plan = AdversaryPlan::new(1);
        assert!(EnvelopeRelaxations::from_plan(&plan).is_none());

        plan.events.push(ert_adversary::AdversaryEvent {
            at: SimTime::ZERO,
            kind: AdversaryKind::RoutingDefector { fraction: 0.2 },
        });
        plan.events.push(ert_adversary::AdversaryEvent {
            at: SimTime::ZERO,
            kind: AdversaryKind::QueryFlood {
                key: 0.5,
                queries: 100,
                window: ert_sim::SimDuration::from_secs_f64(1.0),
            },
        });
        // Defectors and floods attack routing/workload, not degrees.
        assert!(EnvelopeRelaxations::from_plan(&plan).is_none());

        plan.events.push(ert_adversary::AdversaryEvent {
            at: SimTime::ZERO,
            kind: AdversaryKind::SybilSwarm {
                count: 8,
                region: 0.3,
            },
        });
        let relax = EnvelopeRelaxations::from_plan(&plan);
        assert!(relax.thm31.is_none() && relax.thm33.is_none());
        assert!(relax.thm32.unwrap().contains("SybilSwarm"));
        assert_eq!(relax.tags().len(), 1);

        plan.events.push(ert_adversary::AdversaryEvent {
            at: SimTime::ZERO,
            kind: AdversaryKind::CapacityLiar {
                fraction: 0.2,
                error: 4.0,
            },
        });
        let relax = EnvelopeRelaxations::from_plan(&plan);
        assert!(!relax.is_none());
        // γ_c violation invalidates all three; the Sybil tag on 3.2 is
        // not displaced because the liar tag was inserted first.
        assert!(relax.thm31.unwrap().contains("γ_c"));
        assert!(relax.thm32.unwrap().contains("γ_c"));
        assert!(relax.thm33.unwrap().contains("γ_c"));
        assert_eq!(relax.tags().len(), 3);
    }

    #[test]
    fn healthy_host_passes() {
        let mut host = Host::new(1000.0, 1.0, 1.0, 4, ert_overlay::Coord::new(0.0, 0.0));
        host.in_service = Some(0);
        host.queue.push_back(1);
        host.total_received = 2;
        let mut s = Sanitizer::new();
        s.check_host(&host, 0, |_| false);
        assert_eq!(s.checks(), 1);
    }
}
