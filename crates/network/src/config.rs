//! Simulation configuration (Table 2 of the paper).

use ert_core::{ErtParams, Estimator};
use ert_faults::RetryPolicy;
use ert_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Environment parameters of one simulation run.
///
/// Defaults reproduce Table 2: query processing takes 0.2 s on a light
/// node and 1 s on a heavy one; the indegree-adaptation period is 1 s;
/// `α = d + 3` is set by [`NetworkConfig::for_dimension`].
///
/// ```
/// use ert_network::NetworkConfig;
/// let cfg = NetworkConfig::for_dimension(8, 42);
/// assert_eq!(cfg.ert.alpha, 11.0);
/// assert_eq!(cfg.light_service.as_secs_f64(), 0.2);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Master seed; every random stream of the run forks from it.
    pub seed: u64,
    /// Service time of one query on a light host.
    pub light_service: SimDuration,
    /// Service time of one query on a heavy host.
    pub heavy_service: SimDuration,
    /// Per-hop network latency per unit of coordinate distance.
    /// Coordinates live on the unit torus (max distance ≈ 0.707), so the
    /// default 0.05 yields hops of 0–35 ms.
    pub latency_scale: f64,
    /// Latency penalty paid when a query is forwarded to a departed
    /// node before the stale link is discovered.
    pub timeout_penalty: SimDuration,
    /// ERT protocol parameters (`α`, `β`, `γ_l`, `μ`, period, `b`).
    pub ert: ErtParams,
    /// Capacity / network-size estimation error model (`γ_c`, `γ_n`).
    pub estimator: Estimator,
    /// Safety valve: a query is dropped after this many hops (never hit
    /// in correct configurations; guards against livelock in tests).
    pub max_hops: u32,
    /// Anonymity mode (introduction: Freenet/Mantis-style systems relay
    /// data through the query path instead of a direct connection):
    /// when on, the response retraces the request path hop by hop,
    /// loading every intermediate node a second time.
    pub anonymous_responses: bool,
    /// Number of trace entries to retain for debugging (0 disables
    /// tracing; see [`ert_sim::TraceLog`]).
    pub trace_capacity: usize,
    /// Telemetry sampling interval: every Δt of sim time the run takes
    /// a time-series snapshot (congestion percentiles, degree census,
    /// queue depths, utilization). Zero — the default — disables the
    /// sampler entirely: no sample events are scheduled, so the event
    /// sequence is identical to an unsampled run.
    pub sample_interval: SimDuration,
    /// When nonzero, physical distances are *estimated* from landmark
    /// vectors of this many landmarks (the paper's landmarking method,
    /// refs. \[30\],\[31\]) instead of read exactly from coordinates.
    pub landmark_count: usize,
    /// Classic-DHT periodic stabilization: when on, every adaptation
    /// period each node proactively purges departed entry neighbors and
    /// repairs the slots, instead of discovering them lazily through
    /// timeouts. Off by default (the paper's protocols repair lazily;
    /// ERT's candidate sets make stabilization largely redundant).
    pub stabilization: bool,
    /// How forwards lost to injected faults (message drops, partition
    /// blocks — see `ert-faults`) are retried. The default grants a
    /// single attempt (retries off), so paper runs without a fault plan
    /// behave byte-identically to a build that has never heard of
    /// faults.
    pub retry: RetryPolicy,
    /// Streaming statistics mode: when on, the per-query metric
    /// collectors (lookup times, path lengths, min-capacity congestion)
    /// are O(1)-memory P² sketches instead of exact sample vectors —
    /// count/mean/max stay exact, interior percentiles become estimates
    /// within the tolerance band `ert-testkit` pins. Off by default:
    /// paper runs keep exact percentiles and byte-identical reports.
    pub stream_stats: bool,
    /// Shard count for the shared-nothing sharded event core. Zero —
    /// the default — keeps the legacy single global event loop; any
    /// `S >= 1` runs the same simulation on [`ert_sim::ShardedEngine`]
    /// with the node population partitioned by ID-space prefix.
    /// Reports are byte-identical for every value of this knob (pinned
    /// by `tests/shard_determinism.rs`).
    #[serde(default)]
    pub shards: usize,
}

impl NetworkConfig {
    /// Table 2 defaults for a Cycloid of dimension `dim`, with `α` set
    /// to `dim + 3`.
    pub fn for_dimension(dim: u8, seed: u64) -> Self {
        NetworkConfig {
            seed,
            light_service: SimDuration::from_secs_f64(0.2),
            heavy_service: SimDuration::from_secs_f64(1.0),
            latency_scale: 0.05,
            timeout_penalty: SimDuration::from_secs_f64(0.5),
            ert: ErtParams::default().with_alpha_for_dim(dim),
            estimator: Estimator::default(),
            max_hops: 64 + 8 * dim as u32,
            anonymous_responses: false,
            trace_capacity: 0,
            sample_interval: SimDuration::ZERO,
            landmark_count: 0,
            stabilization: false,
            retry: RetryPolicy::default(),
            stream_stats: false,
            shards: 0,
        }
    }

    /// Sets both service times, keeping the paper's 5× heavy/light ratio
    /// used in the skewed-lookup sweep (Section 5.4).
    #[must_use]
    pub fn with_light_service_secs(mut self, light: f64) -> Self {
        self.light_service = SimDuration::from_secs_f64(light);
        self.heavy_service = SimDuration::from_secs_f64(light * 5.0);
        self
    }

    /// Checks configuration sanity.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.ert.validate().map_err(|e| e.to_string())?;
        if self.light_service == SimDuration::ZERO {
            return Err("light service time must be positive".into());
        }
        if self.heavy_service == SimDuration::ZERO {
            return Err("heavy service time must be positive".into());
        }
        if self.heavy_service < self.light_service {
            return Err("heavy service must not be faster than light".into());
        }
        if !(self.latency_scale >= 0.0 && self.latency_scale.is_finite()) {
            return Err("latency scale must be non-negative and finite".into());
        }
        if self.max_hops == 0 {
            return Err("max hops must be positive".into());
        }
        self.retry
            .validate()
            .map_err(|e| format!("retry policy: {e}"))?;
        if self.shards > 4096 {
            return Err("shard count above 4096 is surely a typo".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        NetworkConfig::for_dimension(8, 1).validate().unwrap();
    }

    #[test]
    fn service_sweep_keeps_ratio() {
        let cfg = NetworkConfig::for_dimension(8, 1).with_light_service_secs(0.6);
        assert!((cfg.light_service.as_secs_f64() - 0.6).abs() < 1e-9);
        assert!((cfg.heavy_service.as_secs_f64() - 3.0).abs() < 1e-9);
        cfg.validate().unwrap();
    }

    #[test]
    fn rejects_inverted_service_times() {
        let mut cfg = NetworkConfig::for_dimension(8, 1);
        cfg.heavy_service = SimDuration::from_secs_f64(0.1);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_light_service() {
        let mut cfg = NetworkConfig::for_dimension(8, 1);
        cfg.light_service = SimDuration::ZERO;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("light service"), "{err}");
    }

    #[test]
    fn rejects_zero_heavy_service() {
        let mut cfg = NetworkConfig::for_dimension(8, 1);
        // Zero light would trip first; make light tiny but positive.
        cfg.light_service = SimDuration::from_micros(1);
        cfg.heavy_service = SimDuration::ZERO;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("heavy service"), "{err}");
    }

    #[test]
    fn rejects_nan_latency_scale() {
        let mut cfg = NetworkConfig::for_dimension(8, 1);
        cfg.latency_scale = f64::NAN;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("latency scale"), "{err}");
    }

    #[test]
    fn rejects_infinite_latency_scale() {
        let mut cfg = NetworkConfig::for_dimension(8, 1);
        cfg.latency_scale = f64::INFINITY;
        assert!(cfg.validate().is_err());
        cfg.latency_scale = -0.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_inconsistent_retry_policy() {
        let mut cfg = NetworkConfig::for_dimension(8, 1);
        cfg.retry.max_attempts = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.starts_with("retry policy:"), "{err}");

        // Enabled retries with a zero base backoff are inconsistent...
        let mut cfg = NetworkConfig::for_dimension(8, 1);
        cfg.retry.max_attempts = 3;
        cfg.retry.base = SimDuration::ZERO;
        assert!(cfg.validate().is_err());

        // ...as is a shrinking backoff factor.
        let mut cfg = NetworkConfig::for_dimension(8, 1);
        cfg.retry = RetryPolicy::standard();
        cfg.retry.factor = 0.25;
        assert!(cfg.validate().is_err());

        // A well-formed enabled policy passes.
        let mut cfg = NetworkConfig::for_dimension(8, 1);
        cfg.retry = RetryPolicy::standard();
        cfg.validate().unwrap();
    }
}
