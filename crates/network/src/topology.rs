//! The live overlay: nodes, hosts, registry, and every table operation
//! the protocols perform (construction, expansion, shedding, repair,
//! and routing-candidate assembly).

use std::collections::BTreeMap;

use ert_core::{
    assign::initial_indegree_target, build_table, expand_indegree, select_shed_victims, Directory,
    ErtParams, ShedCandidate,
};
use ert_overlay::{
    ring::forward_distance, CycloidId, CycloidRegion, CycloidRegistry, CycloidSpace, LandmarkFrame,
    RouteStep, SlotKind,
};
use ert_sim::SimRng;

use crate::spec::{CycloidSlot, TablePolicy};
use crate::state::{Host, OverlayNode};

/// Routing candidates for one hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteCandidates {
    /// The table slot the candidates came from (`None` for ascend steps,
    /// which are assembled from the membership view).
    pub slot: Option<CycloidSlot>,
    /// The candidate next hops. May include departed nodes when
    /// `filter_dead` was false — discovering those is how timeouts
    /// happen.
    pub ids: Vec<CycloidId>,
    /// The live node owning the key — the routing target the candidates
    /// make progress toward.
    pub owner: CycloidId,
    /// Whether the geometric step dead-ended (empty region / nothing to
    /// ascend to) and the candidates are a ring fallback. The caller
    /// should route the query by ring from here on: in sparse overlays,
    /// re-attempting the geometric descent can oscillate, while the ring
    /// walk is monotone — the same degradation real Cycloid exhibits
    /// when routing tables cannot be filled.
    pub fell_back: bool,
}

/// The overlay state shared by every protocol: membership, tables,
/// hosts, and the geometric helpers.
#[derive(Debug)]
pub struct Topology {
    /// The Cycloid ID space.
    pub space: CycloidSpace,
    /// Live membership.
    pub registry: CycloidRegistry,
    /// ID → node slab index (latest holder of the ID).
    pub id_map: BTreeMap<CycloidId, usize>,
    /// All overlay nodes ever created (departed ones keep their slot).
    pub nodes: Vec<OverlayNode>,
    /// All hosts ever created (departed ones keep their slot).
    pub hosts: Vec<Host>,
    /// Table construction policy.
    pub table_policy: TablePolicy,
    /// ERT parameters (also carries the leaf window).
    pub params: ErtParams,
    /// When present, physical distances are estimated from landmark
    /// vectors instead of exact coordinates.
    pub landmarks: Option<LandmarkFrame>,
    /// Elastic link operations performed (adds, sheds, purges): the
    /// maintenance-message count of Section 5.3.
    pub link_ops: u64,
}

impl Topology {
    /// Creates an empty overlay.
    pub fn new(space: CycloidSpace, table_policy: TablePolicy, params: ErtParams) -> Self {
        Topology {
            space,
            registry: CycloidRegistry::new(space),
            id_map: BTreeMap::new(),
            nodes: Vec::new(),
            hosts: Vec::new(),
            table_policy,
            params,
            landmarks: None,
            link_ops: 0,
        }
    }

    /// Registers a host; returns its index. Under the landmarking
    /// distance model the host measures its landmark vector on arrival.
    pub fn add_host(&mut self, mut host: Host) -> usize {
        if let Some(frame) = &self.landmarks {
            host.landmark_vec = Some(frame.vector(host.coord));
        }
        self.hosts.push(host);
        self.hosts.len() - 1
    }

    /// Registers an overlay node on `host` with the given `d^∞`;
    /// returns its index. The node joins the membership immediately.
    ///
    /// # Panics
    ///
    /// Panics if the ID is already live.
    pub fn add_node(&mut self, id: CycloidId, host: usize, d_max: u32) -> usize {
        assert!(self.registry.insert(id), "duplicate live id {id}");
        let idx = self.nodes.len();
        self.nodes.push(OverlayNode::new(id, host, d_max));
        self.id_map.insert(id, idx);
        self.hosts[host].nodes.push(idx);
        idx
    }

    /// Removes `node` from the overlay (its table state is kept for
    /// post-run metrics; other nodes' links to it go stale and are
    /// discovered lazily).
    pub fn remove_node(&mut self, node: usize) {
        let id = self.nodes[node].id;
        self.nodes[node].alive = false;
        self.registry.remove(id);
        if self.id_map.get(&id) == Some(&node) {
            self.id_map.remove(&id);
        }
    }

    /// The slab index currently holding `id`, if the ID is live.
    pub fn node_idx(&self, id: CycloidId) -> Option<usize> {
        self.id_map
            .get(&id)
            .copied()
            .filter(|&i| self.nodes[i].alive)
    }

    /// Whether `id` is a live overlay node.
    pub fn is_alive(&self, id: CycloidId) -> bool {
        self.node_idx(id).is_some()
    }

    /// The host backing the live node `id`, if any.
    pub fn host_of_id(&self, id: CycloidId) -> Option<usize> {
        self.node_idx(id).map(|i| self.nodes[i].host)
    }

    /// Physical distance between the hosts of two live nodes (0 when
    /// either is unknown — distance then simply stops discriminating).
    /// Exact coordinate distance by default; the landmark estimate when
    /// the landmarking model is enabled.
    pub fn phys_dist(&self, a: CycloidId, b: CycloidId) -> f64 {
        let (ha, hb) = match (self.host_of_id(a), self.host_of_id(b)) {
            (Some(ha), Some(hb)) => (ha, hb),
            _ => return 0.0,
        };
        if let (Some(frame), Some(va), Some(vb)) = (
            &self.landmarks,
            &self.hosts[ha].landmark_vec,
            &self.hosts[hb].landmark_vec,
        ) {
            return frame.estimate(va, vb);
        }
        self.hosts[ha].coord.distance(self.hosts[hb].coord)
    }

    /// Estimated remaining overlay distance from `from` to `key`:
    /// descending and ascending hops dominate (weighted by `4d`), with a
    /// sub-dominant ring-distance term so candidates in the same
    /// geometric class compare by ring closeness. Smaller is closer.
    pub fn logical_metric(&self, from: CycloidId, key: CycloidId) -> u64 {
        if from == key {
            return 0;
        }
        let d = self.space.dim() as u64;
        let fwd = forward_distance(
            self.space.lin(from),
            self.space.lin(key),
            self.space.ring_size(),
        );
        let ring = fwd.min(self.space.ring_size() - fwd);
        if from.a() == key.a() {
            return ring;
        }
        let m = (31 - (from.a() ^ key.a()).leading_zeros()) as u64;
        let ascend = m.saturating_sub(from.k() as u64);
        // Ring term scaled below 4d so it only breaks class ties.
        4 * d * (m + 1 + ascend) + ring * 4 * d / self.space.ring_size()
    }

    fn cube_dist(&self, a: u32, b: u32) -> u64 {
        let fwd = forward_distance(a as u64, b as u64, self.space.cube_size());
        fwd.min(self.space.cube_size() - fwd)
    }

    /// The live region member whose cubical ID is closest to `ideal_a`
    /// (the classic Cycloid neighbor choice), excluding `exclude`.
    fn closest_in_region(
        &self,
        region: CycloidRegion,
        ideal_a: u32,
        exclude: CycloidId,
    ) -> Option<CycloidId> {
        self.registry
            .nodes_in_region(region)
            .into_iter()
            .filter(|&m| m != exclude)
            .min_by_key(|&m| self.cube_dist(m.a(), ideal_a))
    }

    /// The classic pair of cyclic neighbors: the region members with the
    /// closest-larger and closest-smaller cubical IDs relative to `a`.
    fn cyclic_pair(&self, region: CycloidRegion, a: u32, exclude: CycloidId) -> Vec<CycloidId> {
        let members: Vec<CycloidId> = self
            .registry
            .nodes_in_region(region)
            .into_iter()
            .filter(|&m| m != exclude)
            .collect();
        if members.is_empty() {
            return Vec::new();
        }
        let cube = self.space.cube_size();
        let larger = members
            .iter()
            .copied()
            .min_by_key(|m| forward_distance(a as u64, m.a() as u64, cube))
            .expect("members nonempty");
        let smaller = members
            .iter()
            .copied()
            .filter(|&m| m != larger)
            .min_by_key(|m| forward_distance(m.a() as u64, a as u64, cube));
        let mut out = vec![larger];
        out.extend(smaller);
        out
    }

    /// The highest-capacity region member with spare indegree (ties by
    /// physical proximity to `node`), falling back to the most-spare
    /// member — the NS neighbor choice.
    fn highest_capacity_in_region(
        &self,
        region: CycloidRegion,
        node: CycloidId,
        already: &[CycloidId],
    ) -> Option<CycloidId> {
        let members: Vec<CycloidId> = self
            .registry
            .nodes_in_region(region)
            .into_iter()
            .filter(|&m| m != node && !already.contains(&m))
            .collect();
        if members.is_empty() {
            return None;
        }
        let capacity = |id: CycloidId| {
            self.host_of_id(id)
                .map_or(0.0, |h| self.hosts[h].est_capacity)
        };
        let with_spare: Vec<CycloidId> = members
            .iter()
            .copied()
            .filter(|&m| {
                self.node_idx(m)
                    .is_some_and(|i| self.nodes[i].spare_indegree() >= 1)
            })
            .collect();
        let pool = if with_spare.is_empty() {
            &members
        } else {
            &with_spare
        };
        pool.iter().copied().max_by(|&x, &y| {
            capacity(x).total_cmp(&capacity(y)).then_with(|| {
                // Prefer physically *closer* on capacity ties.
                self.phys_dist(node, y).total_cmp(&self.phys_dist(node, x))
            })
        })
    }

    /// Builds `node`'s routing table according to the topology's
    /// [`TablePolicy`], and for the elastic policy also expands the
    /// indegree toward `β·d^∞`. Ring slots are refreshed afterwards.
    pub fn build_node_table(&mut self, node: usize, rng: &mut SimRng) {
        let id = self.nodes[node].id;
        match self.table_policy {
            TablePolicy::SingleClosest => {
                if let Some(region) = self.space.cubical_region(id) {
                    let ideal = id.a() ^ (1u32 << id.k());
                    if let Some(n) = self.closest_in_region(region, ideal, id) {
                        self.add_link(id, CycloidSlot::Cubical, n);
                    }
                }
                if let Some(region) = self.space.cyclic_region(id) {
                    for n in self.cyclic_pair(region, id.a(), id) {
                        self.add_link(id, CycloidSlot::Cyclic, n);
                    }
                }
            }
            TablePolicy::SingleHighestCapacity => {
                if let Some(region) = self.space.cubical_region(id) {
                    if let Some(n) = self.highest_capacity_in_region(region, id, &[]) {
                        self.add_link(id, CycloidSlot::Cubical, n);
                    }
                }
                if let Some(region) = self.space.cyclic_region(id) {
                    if let Some(first) = self.highest_capacity_in_region(region, id, &[]) {
                        self.add_link(id, CycloidSlot::Cyclic, first);
                        if let Some(second) = self.highest_capacity_in_region(region, id, &[first])
                        {
                            self.add_link(id, CycloidSlot::Cyclic, second);
                        }
                    }
                }
            }
            TablePolicy::Elastic => {
                build_table(self, id, rng);
                let target = initial_indegree_target(&self.params, self.nodes[node].d_max);
                expand_indegree(self, id, target);
            }
        }
        self.refresh_ring_slots(node);
    }

    /// Refreshes the structural ring slots from the membership view,
    /// keeping any still-live elastic extras gained through indegree
    /// expansion.
    pub fn refresh_ring_slots(&mut self, node: usize) {
        let id = self.nodes[node].id;
        let window = self.params.leaf_window;
        let succ = self.registry.succ_window(id, window);
        let pred = self.registry.pred_window(id, window);
        for (slot, structural) in [(CycloidSlot::RingSucc, succ), (CycloidSlot::RingPred, pred)] {
            let mut members: Vec<CycloidId> = structural;
            for extra in self.nodes[node].table.outlinks(slot).to_vec() {
                if self.is_alive(extra) && !members.contains(&extra) {
                    members.push(extra);
                }
            }
            self.nodes[node].table.set_slot(slot, members);
        }
    }

    /// Updates the degree watermarks on the host backing `node`.
    fn note_degrees(&mut self, node: usize) {
        let host = self.nodes[node].host;
        let (mut ins, mut outs) = (0u32, 0u32);
        for &n in &self.hosts[host].nodes {
            if self.nodes[n].alive {
                ins += self.nodes[n].table.indegree() as u32;
                outs += self.nodes[n].table.outdegree() as u32;
            }
        }
        let h = &mut self.hosts[host];
        h.max_indegree_seen = h.max_indegree_seen.max(ins);
        h.max_outdegree_seen = h.max_outdegree_seen.max(outs);
    }

    /// Removes the stale outlink `from --slot--> to` after a failed
    /// contact.
    pub fn purge_dead_link(&mut self, from: usize, slot: CycloidSlot, to: CycloidId) {
        if self.nodes[from].table.remove_outlink(slot, to) {
            self.link_ops += 1;
        }
    }

    /// Proactively purges departed neighbors from `node`'s entry slots
    /// and repairs any slot left empty — one stabilization round for one
    /// node. Returns the number of stale links removed.
    pub fn stabilize_node(&mut self, node: usize, rng: &mut SimRng) -> u32 {
        let mut purged = 0;
        for slot in [CycloidSlot::Cubical, CycloidSlot::Cyclic] {
            let stale: Vec<CycloidId> = self.nodes[node]
                .table
                .outlinks(slot)
                .iter()
                .copied()
                .filter(|&x| !self.is_alive(x))
                .collect();
            for dead in stale {
                self.purge_dead_link(node, slot, dead);
                purged += 1;
            }
            if self.nodes[node].table.outlinks(slot).is_empty() {
                self.repair_slot(node, slot, rng);
            }
        }
        self.refresh_ring_slots(node);
        purged
    }

    /// Sheds up to `count` inlinks of `node`, choosing victims by
    /// longest logical then physical distance (Algorithm 3). Returns the
    /// number actually shed.
    pub fn shed_inlinks(&mut self, node: usize, count: u32) -> u32 {
        let id = self.nodes[node].id;
        let fingers: Vec<ShedCandidate<CycloidId>> = self.nodes[node]
            .table
            .backward_fingers()
            .iter()
            .map(|&bf| ShedCandidate {
                id: bf,
                logical_distance: self.logical_metric(bf, id),
                physical_distance: self.phys_dist(bf, id),
            })
            .collect();
        let victims = select_shed_victims(&fingers, count);
        let mut shed = 0;
        for v in victims {
            if let Some(vidx) = self.node_idx(v) {
                // The holder drops us from every elastic slot.
                for slot in [
                    CycloidSlot::Cubical,
                    CycloidSlot::Cyclic,
                    CycloidSlot::RingSucc,
                    CycloidSlot::RingPred,
                ] {
                    self.nodes[vidx].table.remove_outlink(slot, id);
                }
            }
            self.nodes[node].table.remove_backward(v);
            self.link_ops += 1;
            shed += 1;
        }
        shed
    }

    /// Grows `node`'s indegree by up to `count` inlinks through the
    /// expansion algorithm. Returns the number gained.
    pub fn grow_inlinks(&mut self, node: usize, count: u32) -> u32 {
        let id = self.nodes[node].id;
        let target = self.nodes[node].table.indegree() as u32 + count;
        let capped = target.min(self.nodes[node].d_max);
        expand_indegree(self, id, capped)
    }

    /// Repairs an empty or all-dead entry slot by selecting a fresh
    /// neighbor from the slot's region per the table policy. Returns the
    /// new neighbor if the region had any live member.
    pub fn repair_slot(
        &mut self,
        node: usize,
        slot: CycloidSlot,
        rng: &mut SimRng,
    ) -> Option<CycloidId> {
        let id = self.nodes[node].id;
        let region = match slot {
            CycloidSlot::Cubical => self.space.cubical_region(id)?,
            CycloidSlot::Cyclic => self.space.cyclic_region(id)?,
            CycloidSlot::RingSucc | CycloidSlot::RingPred => return None,
        };
        let pick = match self.table_policy {
            TablePolicy::SingleClosest => {
                let ideal = match slot {
                    CycloidSlot::Cubical => id.a() ^ (1u32 << id.k()),
                    _ => id.a(),
                };
                self.closest_in_region(region, ideal, id)
            }
            TablePolicy::SingleHighestCapacity => self.highest_capacity_in_region(region, id, &[]),
            TablePolicy::Elastic => {
                let members: Vec<CycloidId> = self
                    .registry
                    .nodes_in_region(region)
                    .into_iter()
                    .filter(|&m| m != id)
                    .collect();
                let with_spare: Vec<CycloidId> = members
                    .iter()
                    .copied()
                    .filter(|&m| {
                        self.node_idx(m)
                            .is_some_and(|i| self.nodes[i].spare_indegree() >= 1)
                    })
                    .collect();
                if with_spare.is_empty() {
                    rng.choose(&members).copied()
                } else {
                    rng.choose(&with_spare).copied()
                }
            }
        }?;
        self.add_link(id, slot, pick);
        Some(pick)
    }

    /// Assembles the candidate set for one hop of `node`'s query toward
    /// `key`. `filter_dead` removes departed candidates (probing
    /// policies discover them for free; non-probing policies keep them
    /// and pay timeouts). `ring_only` forces ring routing — set it once
    /// a previous hop reported [`RouteCandidates::fell_back`]. Returns
    /// `None` when `node` already owns `key`.
    pub fn route_candidates(
        &mut self,
        node: usize,
        key: CycloidId,
        filter_dead: bool,
        ring_only: bool,
        rng: &mut SimRng,
    ) -> Option<RouteCandidates> {
        let me = self.nodes[node].id;
        let owner = self.registry.owner(key)?;
        if owner == me {
            return None;
        }
        // Endgame: within a few cycles of the owner the geometric phase
        // has nothing useful left to fix (and, in sparse overlays, can
        // oscillate around empty cycles); finish on the monotone ring.
        let fwd = self.registry.forward_dist(me, owner);
        let near = fwd.min(self.space.ring_size() - fwd) <= 4 * self.space.dim() as u64;
        if ring_only || near {
            return Some(self.ring_candidates(node, owner));
        }
        // Route toward the owner's ID: identical to routing toward the
        // key in a dense overlay, and robust when the key's own cycle is
        // unpopulated.
        match self.space.route_step(me, owner) {
            RouteStep::Entry(kind) => {
                let slot = match kind {
                    SlotKind::Cubical => CycloidSlot::Cubical,
                    SlotKind::Cyclic => CycloidSlot::Cyclic,
                };
                let mut ids: Vec<CycloidId> = self.nodes[node].table.outlinks(slot).to_vec();
                if filter_dead {
                    for &dead in ids
                        .iter()
                        .filter(|&&x| !self.is_alive(x))
                        .collect::<Vec<_>>()
                    {
                        self.purge_dead_link(node, slot, dead);
                    }
                    ids.retain(|&x| self.is_alive(x));
                }
                if ids.is_empty() || ids.iter().all(|&x| !self.is_alive(x)) {
                    if let Some(fresh) = self.repair_slot(node, slot, rng) {
                        return Some(RouteCandidates {
                            slot: Some(slot),
                            ids: vec![fresh],
                            owner,
                            fell_back: false,
                        });
                    }
                    // Region has no live member: finish on the ring.
                    let mut rc = self.ring_candidates(node, owner);
                    rc.fell_back = true;
                    return Some(rc);
                }
                Some(RouteCandidates {
                    slot: Some(slot),
                    ids,
                    owner,
                    fell_back: false,
                })
            }
            RouteStep::Ascend => {
                let mut ids = self.registry.cycle_above(me);
                if ids.is_empty() {
                    // Top of the own cycle: continue ascending at the
                    // head of the *next* cycle (Cycloid's outside leaf
                    // set). Always moving forward keeps the head-walk
                    // monotone, so it cannot bounce between two cycles.
                    if let Some(head) = self.registry.next_cycle_head(me) {
                        if head != me {
                            ids.push(head);
                        }
                    }
                }
                if ids.is_empty() {
                    let mut rc = self.ring_candidates(node, owner);
                    rc.fell_back = true;
                    return Some(rc);
                }
                Some(RouteCandidates {
                    slot: None,
                    ids,
                    owner,
                    fell_back: false,
                })
            }
            RouteStep::Ring => Some(self.ring_candidates(node, owner)),
        }
    }

    /// Ring-walk candidates toward `owner`, along the shorter direction,
    /// never overshooting. All table links (not just the leaf window)
    /// are considered so the walk takes the longest safe stride, like
    /// Chord's greedy final phase. Always returns at least one live
    /// candidate strictly closer to the owner.
    fn ring_candidates(&mut self, node: usize, owner: CycloidId) -> RouteCandidates {
        let me = self.nodes[node].id;
        self.refresh_ring_slots(node);
        let fwd = self.registry.forward_dist(me, owner);
        let bwd = self.space.ring_size() - fwd;
        let forward = fwd <= bwd;
        let slot = if forward {
            CycloidSlot::RingSucc
        } else {
            CycloidSlot::RingPred
        };
        let in_stride = |x: CycloidId| {
            if forward {
                let d = self.registry.forward_dist(me, x);
                d > 0 && d <= fwd
            } else {
                let d = self.registry.forward_dist(x, me);
                d > 0 && d <= bwd
            }
        };
        let mut ids: Vec<CycloidId> = Vec::new();
        for (_, x) in self.nodes[node].table.iter_outlinks() {
            if self.is_alive(x) && in_stride(x) && !ids.contains(&x) {
                ids.push(x);
            }
        }
        if ids.is_empty() {
            // Degenerate membership (e.g. two nodes): step to the owner
            // directly — it is live by construction.
            return RouteCandidates {
                slot: Some(slot),
                ids: vec![owner],
                owner,
                fell_back: false,
            };
        }
        RouteCandidates {
            slot: Some(slot),
            ids,
            owner,
            fell_back: false,
        }
    }
}

impl Directory for Topology {
    type Id = CycloidId;
    type Slot = CycloidSlot;

    fn table_slots(&self, node: CycloidId) -> Vec<(CycloidSlot, Vec<CycloidId>)> {
        let mut out = Vec::new();
        if let Some(region) = self.space.cubical_region(node) {
            out.push((CycloidSlot::Cubical, self.registry.nodes_in_region(region)));
        }
        if let Some(region) = self.space.cyclic_region(node) {
            out.push((CycloidSlot::Cyclic, self.registry.nodes_in_region(region)));
        }
        out
    }

    fn inlink_candidates(&self, node: CycloidId) -> Vec<(CycloidSlot, CycloidId)> {
        let mut out = Vec::new();
        let push_region = |region: Option<CycloidRegion>, slot: CycloidSlot, out: &mut Vec<_>| {
            if let Some(region) = region {
                let mut members = self.registry.nodes_in_region(region);
                // Probe nearer cubical IDs first, like Algorithm 1's
                // sequential scan but centered on the node.
                members.sort_by_key(|m| self.cube_dist(m.a(), node.a()));
                out.extend(
                    members
                        .into_iter()
                        .filter(|&m| m != node)
                        .map(|m| (slot, m)),
                );
            }
        };
        push_region(
            self.space.reverse_cubical_region(node),
            CycloidSlot::Cubical,
            &mut out,
        );
        push_region(
            self.space.reverse_cyclic_region(node),
            CycloidSlot::Cyclic,
            &mut out,
        );
        // Ring predecessors may take us as an extra successor candidate
        // (Theorem 3.3's note that nodes probe their ring neighbors too).
        for p in self.registry.pred_window(node, 2 * self.params.leaf_window) {
            out.push((CycloidSlot::RingSucc, p));
        }
        out
    }

    fn spare_indegree(&self, node: CycloidId) -> i64 {
        self.node_idx(node)
            .map_or(0, |i| self.nodes[i].spare_indegree())
    }

    fn indegree(&self, node: CycloidId) -> u32 {
        self.node_idx(node)
            .map_or(0, |i| self.nodes[i].table.indegree() as u32)
    }

    fn has_link(&self, from: CycloidId, slot: CycloidSlot, to: CycloidId) -> bool {
        self.node_idx(from)
            .is_some_and(|i| self.nodes[i].table.outlinks(slot).contains(&to))
    }

    fn add_link(&mut self, from: CycloidId, slot: CycloidSlot, to: CycloidId) {
        let (fi, ti) = match (self.node_idx(from), self.node_idx(to)) {
            (Some(f), Some(t)) => (f, t),
            _ => return, // either end departed mid-operation
        };
        self.nodes[fi].table.add_outlink(slot, to);
        self.nodes[ti].table.add_backward(from);
        self.link_ops += 1;
        self.note_degrees(fi);
        self.note_degrees(ti);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ert_core::max_indegree;
    use ert_overlay::Coord;

    /// A small fully-populated dim-4 overlay with uniform capacities.
    fn full_topology(policy: TablePolicy) -> (Topology, SimRng) {
        let space = CycloidSpace::new(4);
        let params = ErtParams::default().with_alpha_for_dim(4);
        let mut topo = Topology::new(space, policy, params);
        let mut rng = SimRng::seed_from(42);
        for lin in 0..space.ring_size() {
            let id = space.from_lin(lin);
            let d_max = max_indegree(params.alpha, 1.0);
            let host = topo.add_host(Host::new(1000.0, 1.0, 1.0, d_max, Coord::random(&mut rng)));
            topo.add_node(id, host, d_max);
        }
        for n in 0..topo.nodes.len() {
            topo.build_node_table(n, &mut rng);
        }
        (topo, rng)
    }

    #[test]
    fn single_closest_builds_classic_cycloid_tables() {
        let (topo, _) = full_topology(TablePolicy::SingleClosest);
        for node in &topo.nodes {
            if node.id.k() > 0 {
                let cub = node.table.outlinks(CycloidSlot::Cubical);
                assert_eq!(cub.len(), 1, "node {} cubical", node.id);
                // The classic neighbor flips exactly bit k.
                assert_eq!(cub[0].a(), node.id.a() ^ (1 << node.id.k()));
                assert_eq!(cub[0].k(), node.id.k() - 1);
                let cyc = node.table.outlinks(CycloidSlot::Cyclic);
                assert_eq!(cyc.len(), 2, "node {} cyclic", node.id);
            }
            assert_eq!(node.table.outlinks(CycloidSlot::RingSucc).len(), 4);
            assert_eq!(node.table.outlinks(CycloidSlot::RingPred).len(), 4);
        }
    }

    #[test]
    fn elastic_tables_expand_toward_beta_target() {
        let (topo, _) = full_topology(TablePolicy::Elastic);
        let mut reached = 0;
        for node in &topo.nodes {
            let target = initial_indegree_target(&topo.params, node.d_max);
            assert!(
                node.table.indegree() as u32 <= node.d_max,
                "indegree above d_max on {}",
                node.id
            );
            if node.table.indegree() as u32 >= target {
                reached += 1;
            }
        }
        // Most nodes should reach their reservation target in a full,
        // uniform-capacity space.
        assert!(
            reached * 10 >= topo.nodes.len() * 7,
            "only {reached}/{} reached target",
            topo.nodes.len()
        );
    }

    #[test]
    fn ns_prefers_high_capacity_neighbors() {
        let space = CycloidSpace::new(4);
        let params = ErtParams::default().with_alpha_for_dim(4);
        let mut topo = Topology::new(space, TablePolicy::SingleHighestCapacity, params);
        let mut rng = SimRng::seed_from(7);
        // Give one region member a huge capacity.
        for lin in 0..space.ring_size() {
            let id = space.from_lin(lin);
            let big = id == space.id(2, 0b1100);
            let cap = if big { 50.0 } else { 1.0 };
            let host = topo.add_host(Host::new(
                cap * 1000.0,
                cap,
                cap,
                max_indegree(params.alpha, cap),
                Coord::random(&mut rng),
            ));
            topo.add_node(id, host, max_indegree(params.alpha, cap));
        }
        // Node (3, 0b0000) has cubical region (2, 1xxx): must pick the
        // big node (2, 1100).
        let n = topo.node_idx(space.id(3, 0)).unwrap();
        topo.build_node_table(n, &mut rng);
        assert_eq!(
            topo.nodes[n].table.outlinks(CycloidSlot::Cubical),
            &[space.id(2, 0b1100)]
        );
    }

    #[test]
    fn route_candidates_deliver_and_progress() {
        let (mut topo, mut rng) = full_topology(TablePolicy::SingleClosest);
        let space = topo.space;
        let key = space.id(2, 0b1010);
        let owner = topo.registry.owner(key).unwrap();
        let owner_idx = topo.node_idx(owner).unwrap();
        assert!(topo
            .route_candidates(owner_idx, key, true, false, &mut rng)
            .is_none());
        // From every node, a full greedy walk terminates within the hop
        // bound.
        for start in 0..topo.nodes.len() {
            let mut cur = start;
            let mut hops = 0;
            let mut ring_mode = false;
            while let Some(rc) = topo.route_candidates(cur, key, true, ring_mode, &mut rng) {
                assert!(!rc.ids.is_empty());
                ring_mode |= rc.fell_back;
                // Deterministic walk: min logical metric.
                let next = rc
                    .ids
                    .iter()
                    .copied()
                    .min_by_key(|&x| topo.logical_metric(x, key))
                    .unwrap();
                cur = topo.node_idx(next).expect("candidates are live");
                hops += 1;
                assert!(hops <= 40, "no progress from start {start}");
            }
            assert_eq!(topo.nodes[cur].id, owner);
        }
    }

    #[test]
    fn dead_entry_links_are_purged_and_repaired() {
        let (mut topo, mut rng) = full_topology(TablePolicy::SingleClosest);
        let space = topo.space;
        let node = topo.node_idx(space.id(3, 0b0000)).unwrap();
        let neighbor = topo.nodes[node].table.outlinks(CycloidSlot::Cubical)[0];
        let nidx = topo.node_idx(neighbor).unwrap();
        topo.remove_node(nidx);
        // A probing walk filters the dead neighbor and repairs.
        let key = space.id(0, 0b1000); // forces the cubical slot from (3, 0000)
        let rc = topo
            .route_candidates(node, key, true, false, &mut rng)
            .unwrap();
        assert_eq!(rc.slot, Some(CycloidSlot::Cubical));
        assert!(rc.ids.iter().all(|&x| topo.is_alive(x)));
        assert!(!rc.ids.contains(&neighbor));
    }

    #[test]
    fn shed_removes_most_distant_inlinks_first() {
        let (mut topo, _) = full_topology(TablePolicy::Elastic);
        // Find a node with at least 3 inlinks.
        let node = (0..topo.nodes.len())
            .find(|&n| topo.nodes[n].table.indegree() >= 3)
            .expect("some node has inlinks");
        let id = topo.nodes[node].id;
        let before = topo.nodes[node].table.indegree();
        let furthest = topo.nodes[node]
            .table
            .backward_fingers()
            .iter()
            .copied()
            .max_by_key(|&bf| topo.logical_metric(bf, id))
            .unwrap();
        let shed = topo.shed_inlinks(node, 2);
        assert_eq!(shed, 2);
        assert_eq!(topo.nodes[node].table.indegree(), before - 2);
        assert!(!topo.nodes[node]
            .table
            .backward_fingers()
            .contains(&furthest));
        // The victim no longer points at us.
        let vidx = topo.node_idx(furthest).unwrap();
        assert!(!topo.nodes[vidx].table.has_outlink_to(id));
    }

    #[test]
    fn grow_respects_d_max() {
        let (mut topo, _) = full_topology(TablePolicy::Elastic);
        let node = 5;
        topo.nodes[node].d_max = topo.nodes[node].table.indegree() as u32; // no headroom
        assert_eq!(topo.grow_inlinks(node, 10), 0);
        topo.nodes[node].d_max += 2;
        let gained = topo.grow_inlinks(node, 10);
        assert!(gained <= 2, "grew {gained} past headroom");
    }

    #[test]
    fn add_link_tracks_backward_finger_and_watermarks() {
        let (mut topo, _) = full_topology(TablePolicy::SingleClosest);
        let a = topo.nodes[3].id;
        let b = topo.nodes[40].id;
        let before = topo.nodes[40].table.indegree();
        topo.add_link(a, CycloidSlot::Cyclic, b);
        assert!(topo.has_link(a, CycloidSlot::Cyclic, b));
        assert_eq!(topo.nodes[40].table.indegree(), before + 1);
        let host = topo.nodes[40].host;
        assert!(topo.hosts[host].max_indegree_seen >= (before + 1) as u32);
    }

    #[test]
    fn stabilize_purges_dead_entries_and_repairs() {
        let (mut topo, mut rng) = full_topology(TablePolicy::SingleClosest);
        let node = topo.node_idx(topo.space.id(3, 0b0110)).unwrap();
        let dead = topo.nodes[node].table.outlinks(CycloidSlot::Cubical)[0];
        let didx = topo.node_idx(dead).unwrap();
        topo.remove_node(didx);
        let purged = topo.stabilize_node(node, &mut rng);
        assert_eq!(purged, 1);
        let cub = topo.nodes[node].table.outlinks(CycloidSlot::Cubical);
        assert!(!cub.is_empty(), "slot must be repaired");
        assert!(cub.iter().all(|&x| topo.is_alive(x)));
        // A second round is a no-op.
        assert_eq!(topo.stabilize_node(node, &mut rng), 0);
    }

    #[test]
    fn ring_only_candidates_always_progress() {
        let (mut topo, mut rng) = full_topology(TablePolicy::SingleClosest);
        let key = topo.space.id(1, 0b1111);
        let owner = topo.registry.owner(key).unwrap();
        for start in (0..topo.nodes.len()).step_by(7) {
            let me = topo.nodes[start].id;
            if me == owner {
                continue;
            }
            let rc = topo
                .route_candidates(start, key, true, true, &mut rng)
                .unwrap();
            let fwd = topo.registry.forward_dist(me, owner);
            let bwd = topo.space.ring_size() - fwd;
            for id in rc.ids {
                let f2 = topo.registry.forward_dist(id, owner);
                let b2 = topo.space.ring_size() - f2;
                assert!(
                    f2.min(b2) < fwd.min(bwd) || id == owner,
                    "{me} -> {id} did not progress toward {owner}"
                );
            }
        }
    }

    #[test]
    fn logical_metric_is_zero_only_at_target() {
        let (topo, mut rng) = full_topology(TablePolicy::SingleClosest);
        let key = topo.space.random_id(&mut rng);
        assert_eq!(topo.logical_metric(key, key), 0);
        for node in topo.nodes.iter().take(50) {
            if node.id != key {
                assert!(
                    topo.logical_metric(node.id, key) > 0,
                    "{} vs {key}",
                    node.id
                );
            }
        }
    }

    #[test]
    fn removed_node_is_not_alive_and_id_is_reusable() {
        let (mut topo, _) = full_topology(TablePolicy::SingleClosest);
        let id = topo.nodes[10].id;
        topo.remove_node(10);
        assert!(!topo.is_alive(id));
        assert!(topo.node_idx(id).is_none());
        let host = topo.add_host(Host::new(1.0, 1.0, 1.0, 1, Coord::new(0.0, 0.0)));
        let fresh = topo.add_node(id, host, 5);
        assert_eq!(topo.node_idx(id), Some(fresh));
    }
}
