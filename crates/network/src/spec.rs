//! Protocol descriptions: which table policy, adaptation, and
//! forwarding policy a run uses.

use ert_core::ForwardPolicy;
use serde::{Deserialize, Serialize};

/// The slots of a Cycloid node's (possibly elastic) routing table.
///
/// `Cubical` and `Cyclic` are the negotiated, capacity-accounted slots
/// whose regions Section 3.2 defines; the ring slots are structural
/// (refreshed from the membership view like a successor list) but
/// `RingSucc`/`RingPred` may also receive *elastic* members through
/// indegree expansion, following the paper's note that nodes probe their
/// ring neighbors too (proof of Theorem 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CycloidSlot {
    /// Descending slot flipping cubical bit `k`.
    Cubical,
    /// Descending slot preserving bits `≥ k`.
    Cyclic,
    /// Forward ring (successor-list) candidates.
    RingSucc,
    /// Backward ring (predecessor-list) candidates.
    RingPred,
}

/// How a joining node fills the `Cubical`/`Cyclic` slots of its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TablePolicy {
    /// One neighbor per slot, the region member closest to the classic
    /// Cycloid target (plain Cycloid; used by Base and VS).
    SingleClosest,
    /// One neighbor per slot, preferring the highest-capacity member
    /// whose static indegree bound has room, ties broken by physical
    /// proximity (the NS baseline, after Castro et al.).
    SingleHighestCapacity,
    /// The ERT policy: a random member with spare indegree, followed by
    /// indegree expansion toward `β·d^∞` (Algorithms 1–2).
    Elastic,
}

/// Sizing of the virtual-server layer (the VS baseline, after
/// Godfrey & Stoica).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtualServerConfig {
    /// Mean virtual servers per unit of normalized capacity. The
    /// classic choice is `Θ(log n)`; `log2(n)/2` keeps the virtual
    /// overlay ~5× the physical one at the paper's n = 2048.
    pub virtuals_per_capacity: f64,
    /// Hard cap on one host's virtual servers.
    pub max_per_host: u32,
}

impl VirtualServerConfig {
    /// The classic `Θ(log n)`-flavored sizing for an `n`-host network.
    pub fn for_network_size(n: usize) -> Self {
        let log2n = (n.max(2) as f64).log2();
        VirtualServerConfig {
            virtuals_per_capacity: log2n / 2.0,
            max_per_host: 16 * log2n as u32,
        }
    }

    /// Number of virtual servers for a host of normalized capacity `c`,
    /// at least 1.
    pub fn virtuals_for(&self, normalized_capacity: f64) -> u32 {
        ((normalized_capacity * self.virtuals_per_capacity).round() as u32)
            .clamp(1, self.max_per_host)
    }
}

/// A complete protocol description: the paper's Base/NS/VS baselines and
/// the ERT/A, ERT/F, ERT/AF variants are all values of this type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolSpec {
    /// Display name used in reports ("Base", "ERT/AF", ...).
    pub name: String,
    /// Table construction policy.
    pub table: TablePolicy,
    /// Whether periodic indegree adaptation runs (the "A" in ERT/A).
    pub adaptation: bool,
    /// Forwarding policy (the "F" in ERT/F is the two-choice policy).
    pub forwarding: ForwardPolicy,
    /// `Some` turns the overlay into capacity-proportional virtual
    /// servers (the VS baseline).
    pub virtual_servers: Option<VirtualServerConfig>,
    /// Item-movement load balancing (the related-work family of
    /// Bharambe et al.): each period, lightly loaded nodes leave and
    /// rejoin to split the intervals of heavily loaded ones.
    pub item_movement: bool,
}

impl ProtocolSpec {
    /// ERT with both adaptation and topology-aware two-choice
    /// forwarding (ERT/AF).
    pub fn ert_af() -> Self {
        ProtocolSpec {
            name: "ERT/AF".into(),
            table: TablePolicy::Elastic,
            adaptation: true,
            forwarding: ForwardPolicy::TwoChoice {
                topology_aware: true,
                use_memory: true,
            },
            virtual_servers: None,
            item_movement: false,
        }
    }

    /// ERT with adaptation only; forwarding picks a random candidate
    /// (ERT/A).
    pub fn ert_a() -> Self {
        ProtocolSpec {
            name: "ERT/A".into(),
            table: TablePolicy::Elastic,
            adaptation: false,
            forwarding: ForwardPolicy::RandomWalk,
            virtual_servers: None,
            item_movement: false,
        }
        .with_adaptation(true)
    }

    /// ERT with forwarding only, no adaptation (ERT/F).
    pub fn ert_f() -> Self {
        ProtocolSpec {
            name: "ERT/F".into(),
            table: TablePolicy::Elastic,
            adaptation: false,
            forwarding: ForwardPolicy::TwoChoice {
                topology_aware: true,
                use_memory: true,
            },
            virtual_servers: None,
            item_movement: false,
        }
    }

    /// Toggles adaptation, keeping everything else.
    #[must_use]
    pub fn with_adaptation(mut self, on: bool) -> Self {
        self.adaptation = on;
        self
    }

    /// Renames the spec (for ablation reports).
    #[must_use]
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ert_variants_differ_in_the_right_axes() {
        let af = ProtocolSpec::ert_af();
        let a = ProtocolSpec::ert_a();
        let f = ProtocolSpec::ert_f();
        assert!(af.adaptation && a.adaptation && !f.adaptation);
        assert!(matches!(af.forwarding, ForwardPolicy::TwoChoice { .. }));
        assert!(matches!(a.forwarding, ForwardPolicy::RandomWalk));
        assert!(matches!(f.forwarding, ForwardPolicy::TwoChoice { .. }));
        for spec in [&af, &a, &f] {
            assert_eq!(spec.table, TablePolicy::Elastic);
            assert!(spec.virtual_servers.is_none());
        }
    }

    #[test]
    fn virtual_server_sizing() {
        let vs = VirtualServerConfig::for_network_size(2048);
        assert!((vs.virtuals_per_capacity - 5.5).abs() < 1e-9);
        assert_eq!(vs.virtuals_for(1.0), 6); // round(5.5)
        assert_eq!(vs.virtuals_for(0.01), 1); // floor clamped up
        assert!(vs.virtuals_for(1000.0) <= vs.max_per_host);
    }

    #[test]
    fn named_and_toggles() {
        let s = ProtocolSpec::ert_af()
            .with_adaptation(false)
            .named("ablation");
        assert_eq!(s.name, "ablation");
        assert!(!s.adaptation);
    }
}
