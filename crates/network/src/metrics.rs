//! Run metrics: everything the paper's figures plot, collected during a
//! run and digested into a [`RunReport`].

use std::fmt;

use ert_sim::stats::{Collector, Samples, Summary};
use serde::{Deserialize, Serialize};

use crate::state::Host;

/// Raw counters accumulated while the simulation runs.
///
/// The per-query series (`lookup_times`, `path_lengths`,
/// `min_cap_congestion`) are [`Collector`]s: exact by default,
/// O(1)-memory streaming sketches when the run was built with
/// `stream_stats` (see [`Metrics::for_mode`]). Everything else is
/// bounded by the host count or is a plain counter.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    /// Lookups injected.
    pub lookups_started: u64,
    /// Lookups that reached their key's owner.
    pub lookups_completed: u64,
    /// Lookups dropped by the hop-limit safety valve.
    pub lookups_dropped: u64,
    /// Lookups lost to injected faults: queries on a crashed host, or
    /// forwards whose retry budget ran out (see `ert-faults`). Always 0
    /// without a fault plan.
    pub lookups_failed: u64,
    /// Forward attempts re-issued after a fault loss under the
    /// configured retry policy.
    pub retries: u64,
    /// Forwards that hit a departed node before discovering the stale
    /// link (Section 5.5's time-out metric).
    pub timeouts: u64,
    /// Queries handed to a ring successor because their node departed
    /// while they were in flight or queued — churn overhead every
    /// protocol pays, kept separate from the stale-link timeouts.
    pub handoffs: u64,
    /// Heavy hosts encountered by queries in routing (Fig. 5a).
    pub heavy_encounters: u64,
    /// Load probes issued by forwarding decisions.
    pub probes: u64,
    /// Forwarding decisions taken.
    pub forward_decisions: u64,
    /// Per-lookup end-to-end times in seconds (Fig. 5c).
    pub lookup_times: Collector,
    /// Per-lookup hop counts (Fig. 5b).
    pub path_lengths: Collector,
    /// Congestion samples of the minimum-capacity host (Fig. 4b).
    pub min_cap_congestion: Collector,
    /// Elastic link operations (adds, sheds, purges) over the run —
    /// the Section 5.3 maintenance cost.
    pub maintenance_ops: u64,
}

/// The digested result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Protocol name.
    pub protocol: String,
    /// Lookups injected.
    pub lookups_started: u64,
    /// Lookups completed.
    pub lookups_completed: u64,
    /// Lookups dropped at the hop limit.
    pub lookups_dropped: u64,
    /// Lookups lost to injected faults (crashes, exhausted retry
    /// budgets). Conservation holds per run:
    /// `lookups_completed + lookups_dropped + lookups_failed` equals the
    /// lookups issued. Always 0 without a fault plan.
    pub lookups_failed: u64,
    /// 99th percentile over hosts of each host's maximum congestion
    /// (Fig. 4a / 9a).
    pub p99_max_congestion: f64,
    /// 99th percentile of the minimum-capacity host's congestion samples
    /// (Fig. 4b).
    pub p99_min_capacity_congestion: f64,
    /// 99th percentile over hosts of the fair-share ratio `s_i`
    /// (Fig. 4c / 8c / 9b).
    pub p99_share: f64,
    /// Total heavy hosts encountered in routings (Fig. 5a / 8a / 10a).
    pub heavy_encounters: u64,
    /// Mean lookup path length in hops (Fig. 5b / 10b).
    pub mean_path_length: f64,
    /// Lookup time digest in seconds (Fig. 5c / 8b / 10c).
    pub lookup_time: Summary,
    /// Digest over hosts of the maximum elastic indegree each exhibited
    /// (Fig. 7a).
    pub max_indegree: Summary,
    /// Digest over hosts of the maximum outdegree each exhibited
    /// (Fig. 7b).
    pub max_outdegree: Summary,
    /// Digest over hosts of the busy-time fraction (how much of the
    /// run each host spent serving) — the paper's "full use of each
    /// node's capacity" claim, measured.
    pub utilization: Summary,
    /// Spearman rank correlation between raw capacity and busy-time
    /// fraction: capacity-proportional load distribution shows up as a
    /// positive value.
    pub capacity_utilization_correlation: f64,
    /// Mean stale-link timeouts per lookup (Section 5.5).
    pub timeouts_per_lookup: f64,
    /// Mean departed-node handoffs per lookup (churn overhead common to
    /// all protocols).
    pub handoffs_per_lookup: f64,
    /// Mean fault-loss retries per issued lookup — the recovery
    /// overhead of the configured `RetryPolicy`. Always 0 without a
    /// fault plan (or with retries disabled).
    pub retries_per_lookup: f64,
    /// Mean load probes per forwarding decision.
    pub probes_per_decision: f64,
    /// Elastic link operations (adds, sheds, purges) per completed
    /// lookup — Section 5.3's maintenance cost, measured as messages.
    pub maintenance_per_lookup: f64,
    /// Simulated seconds the run covered.
    pub sim_seconds: f64,
}

/// Spearman rank correlation: robust to the heavy-tailed capacity
/// distribution, which would dominate a plain Pearson coefficient.
/// Returns 0.0 for fewer than two pairs or mismatched series lengths.
fn rank_correlation(xs: impl Iterator<Item = f64>, ys: impl Iterator<Item = f64>) -> f64 {
    let xs: Vec<f64> = xs.collect();
    let ys: Vec<f64> = ys.collect();
    if xs.len() < 2 || xs.len() != ys.len() {
        return 0.0;
    }
    pearson(ranks(&xs).into_iter(), ranks(&ys).into_iter(), xs.len())
}

/// Average ranks (ties get the midpoint), 1-based.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = rank;
        }
        i = j + 1;
    }
    out
}

fn pearson(xs: impl Iterator<Item = f64>, ys: impl Iterator<Item = f64>, n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let pairs: Vec<(f64, f64)> = xs.zip(ys).collect();
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in &pairs {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {}/{} lookups ({} dropped, {} failed), path {:.2} hops, time {:.3}s (p99 {:.3}s)",
            self.protocol,
            self.lookups_completed,
            self.lookups_started,
            self.lookups_dropped,
            self.lookups_failed,
            self.mean_path_length,
            self.lookup_time.mean,
            self.lookup_time.p99,
        )?;
        write!(
            f,
            "  p99 congestion {:.3}, p99 share {:.3}, heavy {}, timeouts/lookup {:.4}, maint/lookup {:.2}",
            self.p99_max_congestion,
            self.p99_share,
            self.heavy_encounters,
            self.timeouts_per_lookup,
            self.maintenance_per_lookup,
        )
    }
}

impl Metrics {
    /// Metrics whose per-query collectors stream (O(1) memory) when
    /// `stream_stats` is set, or retain exact samples otherwise.
    pub fn for_mode(stream_stats: bool) -> Metrics {
        Metrics {
            lookup_times: Collector::for_mode(stream_stats),
            path_lengths: Collector::for_mode(stream_stats),
            min_cap_congestion: Collector::for_mode(stream_stats),
            ..Metrics::default()
        }
    }

    /// Digests the counters plus final host state into a report.
    ///
    /// `hosts` must include departed hosts: the paper's churn metrics
    /// are "collected from all node\[s\] including ... the nodes departed".
    ///
    /// The per-host digests below deliberately stay exact [`Samples`]:
    /// they hold one value per host, bounded by the network size rather
    /// than the query count, so streaming them would trade accuracy for
    /// nothing.
    pub fn into_report(self, protocol: &str, hosts: &[Host], sim_seconds: f64) -> RunReport {
        let max_congestion: Samples = hosts.iter().map(|h| h.max_congestion).collect();
        let mut shares = Samples::new();
        let total_load: f64 = hosts.iter().map(|h| h.total_received as f64).sum();
        let total_cap: f64 = hosts.iter().map(|h| h.raw_capacity).sum();
        if total_load > 0.0 && total_cap > 0.0 {
            for h in hosts {
                let s = (h.total_received as f64 / total_load) / (h.raw_capacity / total_cap);
                shares.push(s);
            }
        }
        let in_deg: Samples = hosts.iter().map(|h| h.max_indegree_seen as f64).collect();
        let out_deg: Samples = hosts.iter().map(|h| h.max_outdegree_seen as f64).collect();
        let horizon_micros = (sim_seconds * 1e6).max(1.0);
        let utilization: Samples = hosts
            .iter()
            .map(|h| (h.busy_micros as f64 / horizon_micros).min(1.0))
            .collect();
        let correlation = rank_correlation(
            hosts.iter().map(|h| h.raw_capacity),
            hosts
                .iter()
                .map(|h| (h.busy_micros as f64 / horizon_micros).min(1.0)),
        );
        RunReport {
            protocol: protocol.to_owned(),
            lookups_started: self.lookups_started,
            lookups_completed: self.lookups_completed,
            lookups_dropped: self.lookups_dropped,
            lookups_failed: self.lookups_failed,
            p99_max_congestion: max_congestion.percentile(0.99),
            p99_min_capacity_congestion: self.min_cap_congestion.percentile(0.99),
            p99_share: shares.percentile(0.99),
            heavy_encounters: self.heavy_encounters,
            mean_path_length: self.path_lengths.mean(),
            lookup_time: self.lookup_times.summary(),
            max_indegree: in_deg.summary(),
            max_outdegree: out_deg.summary(),
            utilization: utilization.summary(),
            capacity_utilization_correlation: correlation,
            timeouts_per_lookup: if self.lookups_completed == 0 {
                0.0
            } else {
                self.timeouts as f64 / self.lookups_completed as f64
            },
            handoffs_per_lookup: if self.lookups_completed == 0 {
                0.0
            } else {
                self.handoffs as f64 / self.lookups_completed as f64
            },
            retries_per_lookup: if self.lookups_started == 0 {
                0.0
            } else {
                self.retries as f64 / self.lookups_started as f64
            },
            probes_per_decision: if self.forward_decisions == 0 {
                0.0
            } else {
                self.probes as f64 / self.forward_decisions as f64
            },
            maintenance_per_lookup: if self.lookups_completed == 0 {
                0.0
            } else {
                self.maintenance_ops as f64 / self.lookups_completed as f64
            },
            sim_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ert_overlay::Coord;

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 5.0]), vec![2.0, 3.5, 3.5, 1.0]);
    }

    #[test]
    fn ranks_tie_heavy_inputs_share_midpoint_ranks() {
        // All equal: everyone gets the midpoint rank (n + 1) / 2.
        assert_eq!(ranks(&[7.0; 5]), vec![3.0; 5]);
        // Two tie groups: ranks average within each group and the
        // total still sums to n(n+1)/2.
        let r = ranks(&[1.0, 1.0, 1.0, 9.0, 9.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0, 4.5, 4.5]);
        assert_eq!(r.iter().sum::<f64>(), 15.0);
        // Ties interleaved with distinct values.
        assert_eq!(ranks(&[3.0, 1.0, 3.0, 2.0]), vec![3.5, 1.0, 3.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "no NaN")]
    fn ranks_reject_nan() {
        ranks(&[1.0, f64::NAN, 2.0]);
    }

    #[test]
    fn rank_correlation_signs() {
        let up = rank_correlation(
            [1.0, 2.0, 3.0, 4.0].into_iter(),
            [10.0, 20.0, 30.0, 400.0].into_iter(),
        );
        assert!((up - 1.0).abs() < 1e-12, "monotone pairs: {up}");
        let down = rank_correlation([1.0, 2.0, 3.0].into_iter(), [3.0, 2.0, 1.0].into_iter());
        assert!((down + 1.0).abs() < 1e-12);
        assert_eq!(rank_correlation([1.0].into_iter(), [1.0].into_iter()), 0.0);
    }

    #[test]
    fn rank_correlation_degenerate_inputs_are_zero() {
        // Mismatched lengths refuse rather than misalign.
        assert_eq!(
            rank_correlation([1.0, 2.0, 3.0].into_iter(), [1.0, 2.0].into_iter()),
            0.0
        );
        // A constant series has zero rank variance.
        assert_eq!(
            rank_correlation([5.0, 5.0, 5.0].into_iter(), [1.0, 2.0, 3.0].into_iter()),
            0.0
        );
        assert_eq!(
            rank_correlation(std::iter::empty(), std::iter::empty()),
            0.0
        );
    }

    fn host(raw: f64, received: u64, max_g: f64) -> Host {
        let mut h = Host::new(raw, 1.0, 1.0, 10, Coord::new(0.0, 0.0));
        h.total_received = received;
        h.max_congestion = max_g;
        h
    }

    #[test]
    fn report_computes_shares_and_percentiles() {
        let hosts = vec![host(100.0, 10, 0.5), host(100.0, 30, 2.0)];
        let mut m = Metrics {
            lookups_started: 40,
            lookups_completed: 40,
            ..Metrics::default()
        };
        m.lookup_times.push(1.0);
        m.path_lengths.push(4.0);
        let r = m.into_report("Test", &hosts, 12.5);
        assert_eq!(r.protocol, "Test");
        assert_eq!(r.p99_max_congestion, 2.0);
        // Equal capacities: share is load/mean-load.
        assert!((r.p99_share - 1.5).abs() < 1e-12);
        assert_eq!(r.mean_path_length, 4.0);
        assert_eq!(r.sim_seconds, 12.5);
        assert_eq!(r.timeouts_per_lookup, 0.0);
    }

    #[test]
    fn empty_run_is_all_zeroes() {
        let r = Metrics::default().into_report("Empty", &[], 0.0);
        assert_eq!(r.lookups_completed, 0);
        assert_eq!(r.p99_share, 0.0);
        assert_eq!(r.probes_per_decision, 0.0);
    }

    #[test]
    fn failed_lookups_flow_into_the_report() {
        let m = Metrics {
            lookups_started: 10,
            lookups_completed: 6,
            lookups_dropped: 1,
            lookups_failed: 3,
            ..Metrics::default()
        };
        let r = m.into_report("F", &[], 1.0);
        assert_eq!(r.lookups_failed, 3);
        assert_eq!(r.retries_per_lookup, 0.0);
        assert_eq!(
            r.lookups_completed + r.lookups_dropped + r.lookups_failed,
            r.lookups_started
        );
        assert!(r.to_string().contains("3 failed"), "{r}");
    }

    #[test]
    fn report_display_is_one_glance() {
        let hosts = vec![host(100.0, 10, 0.5)];
        let mut m = Metrics {
            lookups_started: 10,
            lookups_completed: 10,
            ..Metrics::default()
        };
        m.lookup_times.push(2.0);
        m.path_lengths.push(5.0);
        let text = m.into_report("ERT/AF", &hosts, 3.0).to_string();
        assert!(text.contains("ERT/AF: 10/10 lookups"));
        assert!(text.contains("p99 congestion"));
    }

    #[test]
    fn probe_rate() {
        let m = Metrics {
            probes: 10,
            forward_decisions: 5,
            ..Metrics::default()
        };
        let r = m.into_report("P", &[], 1.0);
        assert_eq!(r.probes_per_decision, 2.0);
    }

    #[test]
    fn stream_mode_metrics_report_exact_counts_and_means() {
        let hosts = vec![host(100.0, 10, 0.5), host(100.0, 30, 2.0)];
        let mut exact = Metrics::for_mode(false);
        let mut stream = Metrics::for_mode(true);
        assert!(!exact.lookup_times.is_streaming());
        assert!(stream.lookup_times.is_streaming());
        for m in [&mut exact, &mut stream] {
            m.lookups_started = 40;
            m.lookups_completed = 40;
            for i in 0..40 {
                m.lookup_times.push(0.5 + 0.01 * i as f64);
                m.path_lengths.push((3 + i % 4) as f64);
                m.min_cap_congestion.push(0.2 * (i % 7) as f64);
            }
        }
        let re = exact.into_report("E", &hosts, 12.5);
        let rs = stream.into_report("S", &hosts, 12.5);
        // Count/mean/max are exact in both modes; per-host digests are
        // always exact, so they match bit for bit.
        assert_eq!(re.lookup_time.count, rs.lookup_time.count);
        assert_eq!(re.lookup_time.mean, rs.lookup_time.mean);
        assert_eq!(re.lookup_time.max, rs.lookup_time.max);
        assert_eq!(re.mean_path_length, rs.mean_path_length);
        assert_eq!(re.p99_max_congestion, rs.p99_max_congestion);
        assert_eq!(re.p99_share, rs.p99_share);
    }
}
