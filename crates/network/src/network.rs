//! The simulation run: query lifecycle, churn, and adaptation events.

use std::collections::{BTreeMap, BTreeSet};

use ert_adversary::{AdversaryKind, AdversaryPlan};
use ert_core::{
    adaptation_action, choose_next_reachable, max_indegree, normalize_capacities, AdaptAction,
    Candidate, ForwardPolicy,
};
use ert_faults::{FaultEvent, FaultKind, FaultPlan};
use ert_overlay::{Coord, CycloidId, CycloidSpace};
use ert_sim::{
    Engine, SampleClock, ShardMap, ShardStats, ShardedEngine, SimDuration, SimRng, SimTime,
    TraceLog,
};
use ert_telemetry::{Snapshot, Telemetry, TelemetryEvent};
use rand::Rng;

use crate::config::NetworkConfig;
use crate::lookup::{ChurnEvent, KeyPick, Lookup, SourcePick};
use crate::metrics::{Metrics, RunReport};
use crate::sanitize::{EnvelopeRelaxations, Sanitizer};
use crate::spec::{ProtocolSpec, TablePolicy};
use crate::state::Host;
use crate::topology::Topology;

/// Simulation events.
///
/// # Ordering at equal timestamps
///
/// The engine breaks time ties by scheduling order (FIFO), so the
/// same-instant processing order is fixed by how `run_with_plans`
/// enqueues things: lookups in schedule order, then churn in the
/// canonical [`ChurnEvent::sort_key`] order, then faults in the
/// canonical [`FaultEvent::sort_key`] order, then adversary events in
/// the canonical [`ert_adversary::AdversaryEvent::sort_key`] order.
/// Churn-before-faults means an equal-time join is a member before a
/// crash draws its victim; faults-before-adversary means an equal-time
/// heal never undoes a fresh attack.
#[derive(Debug)]
enum Event {
    Inject(usize),
    Arrive {
        q: usize,
        to: CycloidId,
    },
    ServiceDone {
        host: usize,
        q: usize,
    },
    AdaptTick,
    Churn(usize),
    /// The `i`-th event of the canonically-sorted fault schedule fires.
    Fault(usize),
    /// The `i`-th event of the canonically-sorted adversary schedule
    /// fires.
    Adversary(usize),
    /// A query whose forward was lost to a fault wakes up after its
    /// retry backoff and attempts the hop again.
    Retry {
        q: usize,
    },
    /// Telemetry snapshot tick; scheduled only when
    /// [`NetworkConfig::sample_interval`] is nonzero, and side-effect
    /// free with respect to the simulation (no RNG draws, no state
    /// mutation), so sampled and unsampled runs produce identical
    /// reports.
    Sample,
}

/// The event core driving one run: the legacy single global event loop
/// (`cfg.shards == 0`) or the shared-nothing sharded core
/// (`cfg.shards >= 1`, see [`ert_sim::ShardedEngine`]).
///
/// Shard routing is an *affinity* decision, never a correctness one:
/// the sharded engine merges all shards under the same global
/// `(time, seq)` key the single queue uses, so whichever shard an
/// event lands on, the pop sequence — and therefore the run report —
/// is byte-identical to the legacy path. Data-plane events follow the
/// ID-space partition ([`Network::shard_of_event`]); control-plane
/// events (injection, churn, faults, adversaries, adaptation,
/// sampling) run on shard 0.
#[derive(Debug)]
enum Reactor {
    /// One global event queue — the pre-sharding engine, untouched.
    Single(Engine<Event>),
    /// S shard reactors with bounded cross-shard mailboxes, plus the
    /// static key→shard prefix partition.
    Sharded {
        engine: ShardedEngine<Event>,
        map: ShardMap,
    },
}

impl Reactor {
    fn schedule_at(&mut self, time: SimTime, shard: usize, ev: Event) {
        match self {
            Reactor::Single(e) => e.schedule_at(time, ev),
            Reactor::Sharded { engine, .. } => engine.schedule_at(time, shard, ev),
        }
    }

    fn schedule_in(&mut self, delay: SimDuration, shard: usize, ev: Event) {
        match self {
            Reactor::Single(e) => e.schedule_in(delay, ev),
            Reactor::Sharded { engine, .. } => engine.schedule_in(delay, shard, ev),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, Event)> {
        match self {
            Reactor::Single(e) => e.pop(),
            Reactor::Sharded { engine, .. } => engine.pop(),
        }
    }

    fn now(&self) -> SimTime {
        match self {
            Reactor::Single(e) => e.now(),
            Reactor::Sharded { engine, .. } => engine.now(),
        }
    }

    fn events_processed(&self) -> u64 {
        match self {
            Reactor::Single(e) => e.events_processed(),
            Reactor::Sharded { engine, .. } => engine.events_processed(),
        }
    }

    fn shard_stats(&self) -> Option<ShardStats> {
        match self {
            Reactor::Single(_) => None,
            Reactor::Sharded { engine, .. } => Some(engine.shard_stats()),
        }
    }
}

#[derive(Debug)]
struct QueryState {
    key: CycloidId,
    started: SimTime,
    hops: u32,
    heavy_seen: u32,
    avoid: BTreeSet<CycloidId>,
    at_node: usize,
    done: bool,
    /// Set once a geometric step dead-ended; the query then finishes on
    /// the (monotone) ring walk.
    ring_mode: bool,
    /// Nodes visited during the request phase (recorded only in
    /// anonymity mode, where the response retraces them).
    path: Vec<CycloidId>,
    /// Remaining return hops of the anonymity-mode response, in visit
    /// order; empty unless the query is on its way back.
    return_route: Vec<CycloidId>,
    /// Whether the query is in its response (return) phase.
    returning: bool,
    /// Forward attempts lost to injected faults since the last
    /// successful hop; reset on every delivered forward. When this
    /// reaches `RetryPolicy::max_attempts` the query fails.
    attempts: u32,
    /// When the query entered the queue of the node currently (or most
    /// recently) holding it. Written unconditionally on every delivery —
    /// a plain store, no control flow or RNG — so instrumented and
    /// uninstrumented runs stay byte-identical; read only when a span
    /// sink asks for [`TelemetryEvent::HopSpan`] events.
    enqueued_at: SimTime,
    /// When the current host began serving the query (same
    /// byte-identity caveat as `enqueued_at`).
    service_started_at: SimTime,
}

/// Active fault effects, kept outside the paper's host/node state so an
/// empty [`FaultPlan`] leaves zero residue in the simulation.
#[derive(Debug, Default)]
struct FaultState {
    /// Per-host service-time inflation factors, cleared by `Heal`.
    degraded: BTreeMap<usize, f64>,
    /// Active message-loss episode: probability and expiry time.
    drop: Option<(f64, SimTime)>,
    /// Active partition: class count and expiry time.
    partition: Option<(u32, SimTime)>,
}

/// Active adversarial effects, kept outside the paper's host/node state
/// so an empty [`AdversaryPlan`] leaves zero residue in the simulation.
#[derive(Debug, Default)]
struct AdversaryState {
    /// Hosts currently inverting Algorithm 4's two-choice rule.
    defectors: BTreeSet<usize>,
    /// Capacity liars: host index → the honest `(est_capacity,
    /// capacity_eval)` pair that `Restore` reinstates.
    liars: BTreeMap<usize, (f64, u32)>,
}

impl FaultState {
    fn drop_p(&self, now: SimTime) -> Option<f64> {
        self.drop.and_then(|(p, until)| (now < until).then_some(p))
    }

    fn partition_groups(&self, now: SimTime) -> Option<u32> {
        self.partition
            .and_then(|(g, until)| (now < until).then_some(g))
    }

    fn service_factor(&self, host: usize) -> f64 {
        self.degraded.get(&host).copied().unwrap_or(1.0)
    }

    fn heal(&mut self) {
        self.degraded.clear();
        self.drop = None;
        self.partition = None;
    }
}

/// One simulation run: an overlay under a protocol, fed lookups and
/// churn, producing a [`RunReport`].
///
/// ```
/// use ert_network::{Network, NetworkConfig, ProtocolSpec};
/// let capacities = vec![1000.0; 64]; // real runs sample these from ert-workloads
/// let cfg = NetworkConfig::for_dimension(5, 7);
/// let mut net = Network::new(cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
/// let lookups = ert_network::network::uniform_lookup_burst(100, 64.0, 7);
/// let report = net.run(&lookups, &[]);
/// assert_eq!(report.lookups_completed + report.lookups_dropped, 100);
/// ```
#[derive(Debug)]
pub struct Network {
    cfg: NetworkConfig,
    protocol: ProtocolSpec,
    topo: Topology,
    reactor: Reactor,
    /// Shard affinity per host (empty on the legacy single engine):
    /// the shard owning the ring position of the host's first overlay
    /// node. Service-completion events follow it. Pure locality — a
    /// stale entry (e.g. after an item-movement rejoin) costs a
    /// cross-shard message, never correctness.
    host_shard: Vec<usize>,
    queries: Vec<QueryState>,
    lookups: Vec<Lookup>,
    metrics: Metrics,
    rng_topology: SimRng,
    rng_forward: SimRng,
    rng_workload: SimRng,
    alive_hosts: Vec<usize>,
    min_cap_host: usize,
    capacity_unit: f64,
    outstanding: u64,
    injections_left: u64,
    churn_schedule: Vec<ChurnEvent>,
    fault_schedule: Vec<FaultEvent>,
    faults: FaultState,
    /// Fault-interpretation stream. Reseeded from the plan at the start
    /// of a faulted run and never drawn from otherwise, so runs with an
    /// empty plan are byte-identical to builds without faults.
    rng_faults: SimRng,
    adversary_schedule: Vec<ert_adversary::AdversaryEvent>,
    adversaries: AdversaryState,
    /// Adversary-interpretation stream, with the same discipline as
    /// `rng_faults`: reseeded only when the plan is nonempty, never
    /// drawn from otherwise.
    rng_adversary: SimRng,
    /// Theorem envelopes the sanitizer skips because the run's adversary
    /// plan deliberately violates their assumptions.
    relax: EnvelopeRelaxations,
    telemetry: Telemetry,
    sample_clock: Option<SampleClock>,
    adapt_rounds: u64,
    sanitizer: Sanitizer,
}

impl Network {
    /// Builds an overlay of one node per capacity (or capacity-
    /// proportional virtual servers when the protocol says so), joins
    /// them in random order, and constructs every routing table.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration is invalid or
    /// `capacities` is empty.
    pub fn new(
        cfg: NetworkConfig,
        capacities: &[f64],
        protocol: ProtocolSpec,
    ) -> Result<Network, String> {
        cfg.validate()?;
        if capacities.is_empty() {
            return Err("need at least one host".into());
        }
        let mut root = SimRng::seed_from(cfg.seed);
        let mut rng_topology = root.fork("topology");
        let rng_forward = root.fork("forward");
        let rng_workload = root.fork("workload");

        let norm = normalize_capacities(capacities);
        let capacity_unit = capacities.iter().sum::<f64>() / capacities.len() as f64;

        // Virtual-server sizing decides the overlay population.
        let virtuals: Vec<u32> = match &protocol.virtual_servers {
            Some(vs) => norm.iter().map(|&c| vs.virtuals_for(c)).collect(),
            None => vec![1; capacities.len()],
        };
        let overlay_n: u64 = virtuals.iter().map(|&v| v as u64).sum();
        let dim = CycloidSpace::dimension_for(overlay_n as usize);
        let space = CycloidSpace::new(dim);
        // The caller's α stands, except under virtual servers where the
        // overlay dimension differs from the physical one and the
        // paper's `α = d + 3` must track the *virtual* dimension.
        let params = if protocol.virtual_servers.is_some() {
            cfg.ert.with_alpha_for_dim(dim)
        } else {
            cfg.ert
        };
        let mut topo = Topology::new(space, protocol.table, params);
        if cfg.landmark_count > 0 {
            topo.landmarks = Some(ert_overlay::LandmarkFrame::random(
                cfg.landmark_count,
                &mut rng_topology,
            ));
        }

        let mut min_cap_host = 0;
        for (i, (&raw, &nc)) in capacities.iter().zip(&norm).enumerate() {
            let est = cfg.estimator.estimate_capacity(nc, &mut rng_topology);
            let capacity_eval = max_indegree(params.alpha, est);
            let coord = Coord::random(&mut rng_topology);
            let h = topo.add_host(Host::new(raw, nc, est, capacity_eval, coord));
            debug_assert_eq!(h, i);
            if raw < capacities[min_cap_host] {
                min_cap_host = i;
            }
        }

        // Create overlay nodes (VS: one random ID per consecutive
        // interval, Godfrey–Stoica style; otherwise one random ID).
        let ring = space.ring_size();
        for (host, &v) in virtuals.iter().enumerate() {
            let d_max = node_d_max(&protocol, &topo.hosts[host], params.alpha);
            if v == 1 {
                if let Some(id) = topo.registry.random_vacant(&mut rng_topology) {
                    topo.add_node(id, host, d_max);
                }
            } else {
                let interval = (ring / overlay_n).max(1);
                let start = rng_topology.gen_range(0..ring);
                for j in 0..v as u64 {
                    let lo = (start + j * interval) % ring;
                    let off = rng_topology.gen_range(0..interval);
                    let mut lin = (lo + off) % ring;
                    // Walk to a vacant slot (the space is sized ≥ 2×).
                    let mut tries = 0;
                    while topo.registry.contains(space.from_lin(lin)) {
                        lin = (lin + 1) % ring;
                        tries += 1;
                        if tries > ring {
                            break;
                        }
                    }
                    let id = space.from_lin(lin);
                    if !topo.registry.contains(id) {
                        topo.add_node(id, host, d_max);
                    }
                }
            }
        }

        // Join order is random: build tables node by node.
        let order = rng_topology.sample_indices(topo.nodes.len(), topo.nodes.len());
        for n in order {
            topo.build_node_table(n, &mut rng_topology);
        }

        let alive_hosts = (0..topo.hosts.len()).collect();
        let (reactor, host_shard) = if cfg.shards == 0 {
            (Reactor::Single(Engine::new()), Vec::new())
        } else {
            let map = ShardMap::new(cfg.shards);
            let host_shard = (0..topo.hosts.len())
                .map(|h| host_shard_for(&topo, &map, h))
                .collect();
            (
                Reactor::Sharded {
                    engine: ShardedEngine::new(cfg.shards),
                    map,
                },
                host_shard,
            )
        };
        Ok(Network {
            cfg,
            protocol,
            topo,
            reactor,
            host_shard,
            queries: Vec::new(),
            lookups: Vec::new(),
            metrics: Metrics::for_mode(cfg.stream_stats),
            rng_topology,
            rng_forward,
            rng_workload,
            alive_hosts,
            min_cap_host,
            capacity_unit,
            outstanding: 0,
            injections_left: 0,
            churn_schedule: Vec::new(),
            fault_schedule: Vec::new(),
            faults: FaultState::default(),
            rng_faults: SimRng::seed_from(cfg.seed),
            adversary_schedule: Vec::new(),
            adversaries: AdversaryState::default(),
            rng_adversary: SimRng::seed_from(cfg.seed),
            relax: EnvelopeRelaxations::NONE,
            telemetry: Telemetry::with_trace_capacity(cfg.trace_capacity),
            sample_clock: None,
            adapt_rounds: 0,
            sanitizer: Sanitizer::new(),
        })
    }

    /// Read access to the overlay (for tests and structural metrics).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// How many runtime invariant checks the sanitizer has performed.
    /// Always 0 in plain release builds (no `debug_assertions`, no
    /// `sanitize` feature), where the checks compile out; tests use
    /// this to prove the sanitizer actually covered the run.
    pub fn sanitize_checks(&self) -> u64 {
        self.sanitizer.checks()
    }

    /// Which theorem envelopes the sanitizer skipped for this run, each
    /// tagged with the violated assumption. [`EnvelopeRelaxations::NONE`]
    /// unless [`Network::run_with_plans`] was given a plan that attacks
    /// a degree bound (see [`EnvelopeRelaxations::from_plan`]).
    pub fn envelope_relaxations(&self) -> EnvelopeRelaxations {
        self.relax
    }

    /// The retained event trace (empty unless
    /// [`NetworkConfig::trace_capacity`] is set).
    pub fn trace(&self) -> &TraceLog {
        self.telemetry.trace()
    }

    /// Read access to the run's telemetry pipeline (snapshots, registry,
    /// trace ring).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Installs a telemetry pipeline — typically one with a JSONL or
    /// in-memory sink attached — before calling [`Network::run`]. The
    /// pipeline installed here replaces the default one built from
    /// [`NetworkConfig::trace_capacity`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Takes the telemetry pipeline out of the network (for reading
    /// snapshots and writing the final report record after a run),
    /// leaving a disabled one behind.
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::take(&mut self.telemetry)
    }

    /// Total engine events processed so far. `ert-bench` divides this
    /// by wall time for the committed hot-loop throughput trajectory.
    pub fn events_processed(&self) -> u64 {
        self.reactor.events_processed()
    }

    /// Completed indegree-adaptation rounds so far.
    pub fn adapt_rounds(&self) -> u64 {
        self.adapt_rounds
    }

    /// Cross-shard traffic counters of the sharded core, `None` on the
    /// legacy single event loop. Deliberately *not* part of
    /// [`RunReport`]: reports are pinned byte-identical across shard
    /// counts, so shard-dependent observability lives on this side
    /// channel.
    pub fn shard_stats(&self) -> Option<ShardStats> {
        self.reactor.shard_stats()
    }

    /// Routes an event to its owning shard (0 on the single engine).
    ///
    /// Data-plane events follow the ID-space partition: an arrival
    /// belongs to the shard owning the destination ID, a service
    /// completion to the serving host's shard, a retry to the shard of
    /// the node holding the query. Control-plane events (injection,
    /// churn, faults, adversaries, adaptation, sampling) run on shard
    /// 0. Routing is pure affinity — the merge key makes any total
    /// routing function produce the identical pop sequence.
    fn shard_of_event(&self, ev: &Event) -> usize {
        let Reactor::Sharded { map, .. } = &self.reactor else {
            return 0;
        };
        let ring = self.topo.space.ring_size();
        match ev {
            Event::Arrive { to, .. } => map.shard_of(self.topo.space.lin(*to), ring),
            Event::ServiceDone { host, .. } => self.host_shard.get(*host).copied().unwrap_or(0),
            Event::Retry { q } => {
                let id = self.topo.nodes[self.queries[*q].at_node].id;
                map.shard_of(self.topo.space.lin(id), ring)
            }
            Event::Inject(_)
            | Event::AdaptTick
            | Event::Churn(_)
            | Event::Fault(_)
            | Event::Adversary(_)
            | Event::Sample => 0,
        }
    }

    /// Schedules `ev` at absolute time `time` on its owning shard.
    fn schedule_event(&mut self, time: SimTime, ev: Event) {
        let shard = self.shard_of_event(&ev);
        self.reactor.schedule_at(time, shard, ev);
    }

    /// Schedules `ev` after `delay` on its owning shard.
    fn schedule_event_in(&mut self, delay: SimDuration, ev: Event) {
        let shard = self.shard_of_event(&ev);
        self.reactor.schedule_in(delay, shard, ev);
    }

    /// Host and node index slices owned by each shard, for the
    /// per-shard sweep and adaptation passes. Hosts follow their
    /// recorded affinity; nodes follow the ID-space partition directly.
    fn shard_partitions(&self) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let Reactor::Sharded { map, .. } = &self.reactor else {
            return (Vec::new(), Vec::new());
        };
        let s = map.shards();
        let mut host_parts = vec![Vec::new(); s];
        for (h, &sh) in self.host_shard.iter().enumerate() {
            host_parts[sh].push(h);
        }
        let ring = self.topo.space.ring_size();
        let mut node_parts = vec![Vec::new(); s];
        for (n, node) in self.topo.nodes.iter().enumerate() {
            node_parts[map.shard_of(self.topo.space.lin(node.id), ring)].push(n);
        }
        (host_parts, node_parts)
    }

    /// Dispatches the degree sweep: sequential on the single engine,
    /// per-shard (evaluated on the `ert-par` pool, then merged) on the
    /// sharded core.
    fn run_sweep(&mut self) {
        let gamma_c = self.cfg.estimator.gamma_c();
        match &self.reactor {
            Reactor::Single(_) => self.sanitizer.sweep(&self.topo, gamma_c, self.relax),
            Reactor::Sharded { .. } => {
                let (host_parts, node_parts) = self.shard_partitions();
                let workers = host_parts.len().min(ert_par::default_jobs()).max(1);
                self.sanitizer.sweep_sharded(
                    &self.topo,
                    gamma_c,
                    self.relax,
                    &host_parts,
                    &node_parts,
                    workers,
                );
            }
        }
    }

    /// Runs the schedule to completion and digests the metrics.
    ///
    /// The run ends when every injected lookup has completed, been
    /// dropped, or failed; churn scheduled after that point is ignored,
    /// matching the paper's "when all lookups complete" cut-off.
    ///
    /// Equivalent to [`Network::run_with_faults`] with an empty
    /// [`FaultPlan`].
    pub fn run(&mut self, lookups: &[Lookup], churn: &[ChurnEvent]) -> RunReport {
        self.run_with_faults(lookups, churn, &FaultPlan::default())
    }

    /// Runs the schedule under an injected fault plan (see `ert-faults`).
    ///
    /// The plan's events interleave with churn on the same event clock;
    /// at equal timestamps churn applies before faults, and events of
    /// each kind apply in their canonical sorted order (see the
    /// [`Event`] ordering note), so permuting either schedule never
    /// changes the run. With an empty plan this is exactly [`Network::run`]:
    /// the fault stream is never drawn from and no fault events are
    /// scheduled, keeping paper scenarios byte-identical.
    ///
    /// # Panics
    ///
    /// Panics when the plan fails [`FaultPlan::validate`].
    pub fn run_with_faults(
        &mut self,
        lookups: &[Lookup],
        churn: &[ChurnEvent],
        plan: &FaultPlan,
    ) -> RunReport {
        self.run_with_plans(lookups, churn, plan, &AdversaryPlan::default())
    }

    /// Runs the schedule under a fault plan *and* an adversary plan
    /// (see `ert-adversary`).
    ///
    /// Adversary events share the event clock with everything else; at
    /// equal timestamps they apply after churn and faults, in their
    /// canonical sorted order (see the [`Event`] ordering note), so
    /// permuting any schedule never changes the run. With an empty
    /// adversary plan this is exactly [`Network::run_with_faults`]: the
    /// adversary stream is never drawn from, no adversary events are
    /// scheduled, and every theorem envelope stays armed.
    ///
    /// # Panics
    ///
    /// Panics when either plan fails its `validate`.
    pub fn run_with_plans(
        &mut self,
        lookups: &[Lookup],
        churn: &[ChurnEvent],
        plan: &FaultPlan,
        adversary: &AdversaryPlan,
    ) -> RunReport {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        if let Err(e) = adversary.validate() {
            panic!("invalid adversary plan: {e}");
        }
        self.lookups = lookups.to_vec();
        self.injections_left = lookups.len() as u64;
        for (i, l) in lookups.iter().enumerate() {
            self.schedule_event(l.at, Event::Inject(i));
        }
        // Equal-time churn events apply in canonical order, not slice
        // order (at distinct timestamps the sort changes nothing).
        let mut churn_sorted = churn.to_vec();
        churn_sorted.sort_by_key(ChurnEvent::sort_key);
        for (i, c) in churn_sorted.iter().enumerate() {
            self.schedule_event(c.at(), Event::Churn(i));
        }
        self.churn_schedule = churn_sorted;
        if !plan.is_empty() {
            // Seed the interpretation stream from (config, plan) so the
            // fault outcomes are a pure function of both, independent of
            // the topology / forwarding / workload streams.
            self.rng_faults = SimRng::seed_from(self.cfg.seed.rotate_left(17) ^ plan.seed);
            self.fault_schedule = plan.sorted_events();
            for i in 0..self.fault_schedule.len() {
                self.schedule_event(self.fault_schedule[i].at, Event::Fault(i));
            }
        }
        if !adversary.is_empty() {
            // Same discipline as the fault stream, with a distinct
            // rotation constant so fault and adversary outcomes built
            // from the same seeds stay decorrelated.
            self.rng_adversary = SimRng::seed_from(self.cfg.seed.rotate_left(29) ^ adversary.seed);
            self.relax = EnvelopeRelaxations::from_plan(adversary);
            self.adversary_schedule = adversary.sorted_events();
            for i in 0..self.adversary_schedule.len() {
                self.schedule_event(self.adversary_schedule[i].at, Event::Adversary(i));
            }
        }
        if self.protocol.adaptation || self.protocol.item_movement || self.cfg.stabilization {
            self.schedule_event_in(self.cfg.ert.adaptation_period, Event::AdaptTick);
        }
        self.sample_clock = SampleClock::new(self.cfg.sample_interval);
        if let Some(clock) = &self.sample_clock {
            let at = clock.next_at();
            self.schedule_event(at, Event::Sample);
        }

        while let Some((now, event)) = self.reactor.pop() {
            self.sanitizer.on_event(now);
            match event {
                Event::Inject(i) => self.on_inject(i, now),
                Event::Arrive { q, to } => self.on_arrive(q, to, now),
                Event::ServiceDone { host, q } => self.on_service_done(host, q, now),
                Event::AdaptTick => self.on_adapt_tick(now),
                Event::Churn(i) => self.on_churn(i, now),
                Event::Fault(i) => self.on_fault(i, now),
                Event::Adversary(i) => self.on_adversary(i, now),
                Event::Retry { q } => self.on_retry(q, now),
                Event::Sample => self.on_sample(now),
            }
            self.sanitizer.check_conservation(
                self.metrics.lookups_started,
                self.metrics.lookups_completed,
                self.metrics.lookups_dropped,
                self.metrics.lookups_failed,
                self.outstanding,
            );
            if self.injections_left == 0 && self.outstanding == 0 {
                break;
            }
        }
        self.run_sweep();
        self.telemetry.flush();
        let mut metrics = std::mem::take(&mut self.metrics);
        metrics.maintenance_ops = self.topo.link_ops;
        metrics.into_report(
            &self.protocol.name,
            &self.topo.hosts,
            self.reactor.now().as_secs_f64(),
        )
    }

    fn resolve_source(&mut self, pick: SourcePick) -> Option<usize> {
        match pick {
            SourcePick::Random => {
                if self.alive_hosts.is_empty() {
                    return None;
                }
                let hi = self.alive_hosts[self.rng_workload.gen_range(0..self.alive_hosts.len())];
                let nodes: Vec<usize> = self.topo.hosts[hi]
                    .nodes
                    .iter()
                    .copied()
                    .filter(|&n| self.topo.nodes[n].alive)
                    .collect();
                self.rng_workload.choose(&nodes).copied()
            }
            SourcePick::RingFraction(f) => {
                let lin = (f.rem_euclid(1.0) * self.topo.space.ring_size() as f64) as u64
                    % self.topo.space.ring_size();
                let id = self.topo.space.from_lin(lin);
                let owner = self.topo.registry.owner(id)?;
                self.topo.node_idx(owner)
            }
        }
    }

    fn resolve_key(&mut self, pick: KeyPick) -> CycloidId {
        match pick {
            KeyPick::Random => self.topo.space.random_id(&mut self.rng_workload),
            KeyPick::RingFraction(f) => {
                let lin = (f.rem_euclid(1.0) * self.topo.space.ring_size() as f64) as u64
                    % self.topo.space.ring_size();
                self.topo.space.from_lin(lin)
            }
        }
    }

    fn on_inject(&mut self, i: usize, now: SimTime) {
        self.injections_left -= 1;
        let lookup = self.lookups[i];
        let Some(source) = self.resolve_source(lookup.source) else {
            // No live node to start from (possible under crash faults):
            // the lookup fails immediately instead of silently vanishing,
            // keeping issued == completed + dropped + failed.
            self.metrics.lookups_started += 1;
            self.metrics.lookups_failed += 1;
            return;
        };
        let key = self.resolve_key(lookup.key);
        let q = self.queries.len();
        self.queries.push(QueryState {
            key,
            started: now,
            hops: 0,
            heavy_seen: 0,
            avoid: BTreeSet::new(),
            at_node: source,
            done: false,
            ring_mode: false,
            path: Vec::new(),
            return_route: Vec::new(),
            returning: false,
            attempts: 0,
            enqueued_at: now,
            service_started_at: now,
        });
        self.metrics.lookups_started += 1;
        self.outstanding += 1;
        let source_id = self.topo.nodes[source].id;
        let (src_lin, key_lin) = (self.topo.space.lin(source_id), self.topo.space.lin(key));
        self.telemetry.emit(now, || TelemetryEvent::LookupStart {
            q: q as u64,
            source: src_lin,
            key: key_lin,
        });
        self.deliver(q, source_id, now);
    }

    /// Places query `q` into the queue of the node holding `to` (or its
    /// successor after a timeout if `to` departed).
    fn deliver(&mut self, q: usize, to: CycloidId, now: SimTime) {
        match self.topo.node_idx(to) {
            None => {
                // The node died in flight: its ring successor takes over
                // after a timeout-like delay (a handoff, not a stale-link
                // timeout: no routing table was wrong).
                self.metrics.handoffs += 1;
                match self.topo.registry.owner(to) {
                    Some(successor) => {
                        let succ_lin = self.topo.space.lin(successor);
                        self.telemetry.emit(now, || TelemetryEvent::LookupHandoff {
                            q: q as u64,
                            successor: succ_lin,
                        });
                        self.schedule_event(
                            now + self.cfg.timeout_penalty,
                            Event::Arrive { q, to: successor },
                        );
                    }
                    None => self.drop_query(q, now),
                }
            }
            Some(node) => {
                let host_idx = self.topo.nodes[node].host;
                self.queries[q].at_node = node;
                self.queries[q].enqueued_at = now;
                if !self.queries[q].returning {
                    if self.cfg.anonymous_responses {
                        self.queries[q].path.push(to);
                    }
                    let heavy_before = self.topo.hosts[host_idx].is_heavy();
                    if heavy_before {
                        self.metrics.heavy_encounters += 1;
                        self.queries[q].heavy_seen += 1;
                    }
                }
                let host = &mut self.topo.hosts[host_idx];
                host.total_received += 1;
                host.period_load += 1;
                if host.in_service.is_none() {
                    self.start_service(host_idx, q, now);
                } else {
                    host.queue.push_back(q);
                }
                let host = &mut self.topo.hosts[host_idx];
                host.note_congestion();
                if host_idx == self.min_cap_host {
                    let g = host.congestion();
                    self.metrics.min_cap_congestion.push(g);
                }
                self.sanitizer
                    .check_host(&self.topo.hosts[host_idx], host_idx, |q| {
                        self.queries[q].done
                    });
            }
        }
    }

    fn start_service(&mut self, host_idx: usize, q: usize, now: SimTime) {
        self.queries[q].service_started_at = now;
        let degrade = self.faults.service_factor(host_idx);
        let host = &mut self.topo.hosts[host_idx];
        host.in_service = Some(q);
        let mut service = if host.is_heavy() {
            self.cfg.heavy_service
        } else {
            self.cfg.light_service
        };
        if degrade > 1.0 {
            // Degrade fault in force: the host serves `degrade`× slower.
            service =
                SimDuration::from_micros((service.as_micros() as f64 * degrade).round() as u64);
        }
        host.busy_micros += service.as_micros();
        self.schedule_event(now + service, Event::ServiceDone { host: host_idx, q });
    }

    fn on_service_done(&mut self, host_idx: usize, q: usize, now: SimTime) {
        {
            let host = &self.topo.hosts[host_idx];
            if !host.alive || host.in_service != Some(q) {
                return; // stale event: the host departed and requeued q
            }
        }
        // One causal span per completed service: covers the hop's
        // queueing (enqueued → service start) and service (start → now)
        // phases. Re-deliveries after handoffs or retries reuse the hop
        // index and appear as sibling spans under the same parent. All
        // inputs are plain reads, so the lazy closure costs one branch
        // when no sink is attached.
        {
            let qs = &self.queries[q];
            let (qid, hop) = (q as u64, qs.hops);
            let node_lin = self.topo.space.lin(self.topo.nodes[qs.at_node].id);
            let (enq, svc) = (
                qs.enqueued_at.as_micros(),
                qs.service_started_at.as_micros(),
            );
            self.telemetry.emit(now, || TelemetryEvent::HopSpan {
                q: qid,
                hop,
                node: node_lin,
                span: ert_obs::span::span_id(qid, hop),
                parent: ert_obs::span::parent_id(qid, hop),
                enqueued: enq,
                service_start: svc,
                service_end: now.as_micros(),
            });
        }
        self.topo.hosts[host_idx].in_service = None;
        if let Some(next) = self.topo.hosts[host_idx].queue.pop_front() {
            self.start_service(host_idx, next, now);
        }
        self.sanitizer
            .check_host(&self.topo.hosts[host_idx], host_idx, |qq| {
                self.queries[qq].done
            });

        let node = self.queries[q].at_node;
        if !self.topo.nodes[node].alive {
            // Node left while the query sat in its queue on a shared
            // (virtual-server) host; hand to the successor.
            let id = self.topo.nodes[node].id;
            self.metrics.handoffs += 1;
            match self.topo.registry.owner(id) {
                Some(successor) => {
                    let succ_lin = self.topo.space.lin(successor);
                    self.telemetry.emit(now, || TelemetryEvent::LookupHandoff {
                        q: q as u64,
                        successor: succ_lin,
                    });
                    self.schedule_event(
                        now + self.cfg.timeout_penalty,
                        Event::Arrive { q, to: successor },
                    )
                }
                None => self.drop_query(q, now),
            }
            return;
        }
        let me = self.topo.nodes[node].id;
        if self.queries[q].returning {
            self.continue_response(q, now);
        } else if self.topo.registry.owner(self.queries[q].key) == Some(me) {
            if self.cfg.anonymous_responses && self.queries[q].path.len() > 1 {
                // Anonymity mode: the response retraces the request path
                // (minus the owner itself), loading each relay again.
                let qs = &mut self.queries[q];
                qs.returning = true;
                // `pop` consumes from the back, walking the request
                // path in reverse toward the source at path[0].
                qs.return_route = qs.path[..qs.path.len() - 1].to_vec();
                self.continue_response(q, now);
            } else {
                self.complete_query(q, now);
            }
        } else {
            self.forward(q, node, now);
        }
    }

    /// Sends the anonymity-mode response one hop further back along the
    /// recorded request path; completes the query at the source.
    fn continue_response(&mut self, q: usize, now: SimTime) {
        let Some(next) = self.queries[q].return_route.pop() else {
            self.complete_query(q, now);
            return;
        };
        let me = self.topo.nodes[self.queries[q].at_node].id;
        let latency =
            SimDuration::from_secs_f64(self.cfg.latency_scale * self.topo.phys_dist(me, next));
        self.schedule_event(now + latency, Event::Arrive { q, to: next });
    }

    fn complete_query(&mut self, q: usize, now: SimTime) {
        let qs = &mut self.queries[q];
        if qs.done {
            return;
        }
        qs.done = true;
        self.outstanding -= 1;
        self.metrics.lookups_completed += 1;
        self.metrics
            .lookup_times
            .push((now - qs.started).as_secs_f64());
        self.metrics.path_lengths.push(qs.hops as f64);
        let (hops, heavy) = (qs.hops, qs.heavy_seen);
        self.telemetry.emit(now, || TelemetryEvent::LookupComplete {
            q: q as u64,
            hops,
            heavy,
        });
    }

    fn drop_query(&mut self, q: usize, now: SimTime) {
        let qs = &mut self.queries[q];
        if qs.done {
            return;
        }
        qs.done = true;
        self.outstanding -= 1;
        self.metrics.lookups_dropped += 1;
        let hops = self.queries[q].hops;
        self.telemetry
            .emit(now, || TelemetryEvent::LookupDropped { q: q as u64, hops });
    }

    /// Terminates query `q` as a fault casualty (crash with no handoff,
    /// or retry budget exhausted). Distinct from [`Network::drop_query`],
    /// which accounts the hop-limit safety valve.
    fn fail_query(&mut self, q: usize, now: SimTime) {
        let qs = &mut self.queries[q];
        if qs.done {
            return;
        }
        qs.done = true;
        self.outstanding -= 1;
        self.metrics.lookups_failed += 1;
        let hops = self.queries[q].hops;
        self.telemetry
            .emit(now, || TelemetryEvent::LookupFailed { q: q as u64, hops });
    }

    fn candidate_info(&self, me: CycloidId, id: CycloidId, key: CycloidId) -> Candidate<CycloidId> {
        let (load, capacity) = match self.topo.host_of_id(id) {
            Some(h) => {
                let host = &self.topo.hosts[h];
                (host.load() as f64, host.capacity_eval as f64)
            }
            None => (0.0, 1.0), // departed: non-probing policies may pick it
        };
        Candidate {
            id,
            load,
            capacity,
            logical_distance: self.topo.logical_metric(id, key),
            physical_distance: self.topo.phys_dist(me, id),
        }
    }

    fn forward(&mut self, q: usize, node: usize, now: SimTime) {
        if self.queries[q].hops >= self.cfg.max_hops {
            self.drop_query(q, now);
            return;
        }
        let key = self.queries[q].key;
        let me = self.topo.nodes[node].id;
        let probing = matches!(self.protocol.forwarding, ForwardPolicy::TwoChoice { .. });
        let ring_mode = self.queries[q].ring_mode;
        let Some(rc) =
            self.topo
                .route_candidates(node, key, probing, ring_mode, &mut self.rng_forward)
        else {
            // Ownership shifted to us mid-flight, or the overlay emptied.
            if self.topo.registry.owner(key) == Some(me) {
                self.complete_query(q, now);
            } else {
                self.drop_query(q, now);
            }
            return;
        };
        debug_assert!(!rc.ids.is_empty(), "route candidates must be nonempty");
        if rc.fell_back {
            self.queries[q].ring_mode = true;
        }
        let cands: Vec<Candidate<CycloidId>> = rc
            .ids
            .iter()
            .map(|&id| self.candidate_info(me, id, key))
            .collect();
        let memory = match (self.protocol.forwarding, rc.slot) {
            (
                ForwardPolicy::TwoChoice {
                    use_memory: true, ..
                },
                Some(slot),
            ) => self.topo.nodes[node].table.memory(slot),
            _ => None,
        };
        // Partition faults hard-exclude candidates across the cut. With
        // no partition active the cut is empty and `choose_next_reachable`
        // delegates to the ordinary two-choice selection with identical
        // RNG draws, keeping fault-free runs byte-identical.
        let cut = self.partition_cut(node, &rc.ids, now);
        let defecting = self
            .adversaries
            .defectors
            .contains(&self.topo.nodes[node].host);
        let picked = if defecting {
            // Routing defection: invert Algorithm 4 and forward to the
            // *most*-loaded reachable candidate, ignoring the avoid
            // list. The pick is deterministic (ties break toward the
            // higher ring position) and draws nothing from the
            // forwarding stream; probes are charged for every reachable
            // candidate the defector "inspected" to find the worst.
            let reachable: Vec<&Candidate<CycloidId>> =
                cands.iter().filter(|c| !cut.contains(&c.id)).collect();
            let probes = reachable.len();
            reachable
                .into_iter()
                .max_by(|a, b| {
                    a.load
                        .total_cmp(&b.load)
                        .then_with(|| self.topo.space.lin(a.id).cmp(&self.topo.space.lin(b.id)))
                })
                .map(|c| ert_core::ForwardChoice {
                    next: c.id,
                    new_memory: None,
                    newly_overloaded: Vec::new(),
                    probes,
                })
        } else {
            choose_next_reachable(
                self.protocol.forwarding,
                &cands,
                &cut,
                memory,
                &self.queries[q].avoid,
                self.cfg.ert.gamma_l,
                self.cfg.ert.probe_width,
                &mut self.rng_forward,
            )
        };
        if defecting {
            if let Some(c) = &picked {
                let (from_lin, to_lin) = (self.topo.space.lin(me), self.topo.space.lin(c.next));
                self.telemetry
                    .emit(now, || TelemetryEvent::DefectedForward {
                        q: q as u64,
                        from: from_lin,
                        to: to_lin,
                    });
            }
        }
        let choice = match picked {
            Some(c) => c,
            None => {
                // Every entry candidate sits across the partition:
                // degrade gracefully to the successor-ring walk. If even
                // the ring is cut, the attempt is lost and the retry
                // policy decides whether the query waits or fails.
                self.queries[q].ring_mode = true;
                let ring_pick = self
                    .topo
                    .route_candidates(node, key, false, true, &mut self.rng_forward)
                    .and_then(|rc2| {
                        let ring_cut = self.partition_cut(node, &rc2.ids, now);
                        rc2.ids
                            .iter()
                            .copied()
                            .filter(|id| !ring_cut.contains(id))
                            .min_by_key(|&x| self.topo.logical_metric(x, key))
                    });
                match ring_pick {
                    Some(alt) => ert_core::ForwardChoice {
                        next: alt,
                        new_memory: None,
                        newly_overloaded: Vec::new(),
                        probes: 0,
                    },
                    None => {
                        self.forward_lost(q, now);
                        return;
                    }
                }
            }
        };
        self.metrics.forward_decisions += 1;
        self.metrics.probes += choice.probes as u64;
        for o in &choice.newly_overloaded {
            self.queries[q].avoid.insert(*o);
        }
        if let (Some(slot), Some(m)) = (rc.slot, choice.new_memory) {
            if probing {
                self.topo.nodes[node].table.set_memory(slot, m);
            }
        }

        let mut next = choice.next;
        let mut penalty = SimDuration::ZERO;
        if !self.topo.is_alive(next) {
            // Timeout: the stale link is discovered the hard way.
            self.metrics.timeouts += 1;
            penalty = self.cfg.timeout_penalty;
            let (me_lin, dead_lin) = (self.topo.space.lin(me), self.topo.space.lin(next));
            self.telemetry.emit(now, || TelemetryEvent::LookupTimeout {
                q: q as u64,
                at: me_lin,
                dead: dead_lin,
            });
            if let Some(slot) = rc.slot {
                self.topo.purge_dead_link(node, slot, next);
                self.telemetry.emit(now, || TelemetryEvent::LinkPurged {
                    node: me_lin,
                    peer: dead_lin,
                });
            }
            let live: Vec<CycloidId> = rc
                .ids
                .iter()
                .copied()
                .filter(|&x| x != next && self.topo.is_alive(x))
                .collect();
            next = match live
                .iter()
                .copied()
                .min_by_key(|&x| self.topo.logical_metric(x, key))
            {
                Some(alt) => alt,
                None => {
                    // Re-assemble with dead filtering (repairs the slot).
                    match self.topo.route_candidates(
                        node,
                        key,
                        true,
                        self.queries[q].ring_mode,
                        &mut self.rng_forward,
                    ) {
                        Some(rc2) => rc2
                            .ids
                            .iter()
                            .copied()
                            .min_by_key(|&x| self.topo.logical_metric(x, key))
                            .expect("repaired candidates nonempty"),
                        None => {
                            self.complete_query(q, now);
                            return;
                        }
                    }
                }
            };
        }

        // Fault gate at the moment of transmission: an active partition
        // blocks the link, an active loss episode may eat the message.
        // Hops are not charged for a forward that never lands.
        if self.forward_fault_lost(q, me, next, now) {
            return;
        }

        self.queries[q].attempts = 0;
        self.queries[q].hops += 1;
        let (from_lin, to_lin) = (self.topo.space.lin(me), self.topo.space.lin(next));
        self.telemetry.emit(now, || TelemetryEvent::LookupHop {
            q: q as u64,
            from: from_lin,
            to: to_lin,
        });
        let latency =
            SimDuration::from_secs_f64(self.cfg.latency_scale * self.topo.phys_dist(me, next))
                + penalty;
        self.schedule_event(now + latency, Event::Arrive { q, to: next });
    }

    fn on_arrive(&mut self, q: usize, to: CycloidId, now: SimTime) {
        if self.queries[q].done {
            return;
        }
        self.deliver(q, to, now);
    }

    fn on_adapt_tick(&mut self, now: SimTime) {
        self.adapt_rounds += 1;
        let round = self.adapt_rounds;
        self.telemetry
            .emit(now, || TelemetryEvent::AdaptTick { round });
        if self.protocol.table == TablePolicy::Elastic && self.protocol.adaptation {
            // Decide-then-apply: every node's action is a pure function
            // of its host's (period_load, capacity_eval), and applying
            // an action mutates only the acting node's indegree and its
            // peers' *out*degrees — never another node's decision
            // inputs or indegree. Decisions therefore commute with
            // application, and the sharded core computes them per shard
            // in parallel while applying them in global node order,
            // byte-identical to the legacy inline loop.
            for (node, action) in self.adapt_decisions() {
                let host = self.topo.nodes[node].host;
                match action {
                    AdaptAction::Keep => {}
                    AdaptAction::Shed(x) => {
                        let x = x.min(self.topo.nodes[node].table.indegree() as u32);
                        if x > 0 {
                            let shed = self.topo.shed_inlinks(node, x);
                            let nd = &mut self.topo.nodes[node];
                            nd.d_max = nd.d_max.saturating_sub(shed).max(1);
                            let node_lin = self.topo.space.lin(self.topo.nodes[node].id);
                            self.telemetry.emit(now, || TelemetryEvent::LinkShed {
                                node: node_lin,
                                count: shed,
                            });
                        }
                    }
                    AdaptAction::Grow(x) => {
                        let cap = 8 * self.topo.hosts[host].capacity_eval.max(8);
                        let nd = &mut self.topo.nodes[node];
                        nd.d_max = (nd.d_max + x).min(cap);
                        self.topo.grow_inlinks(node, x);
                        let node_lin = self.topo.space.lin(self.topo.nodes[node].id);
                        self.telemetry.emit(now, || TelemetryEvent::LinkGrown {
                            node: node_lin,
                            count: x,
                        });
                    }
                }
            }
        }
        if self.protocol.item_movement {
            self.item_movement_round(now);
        }
        if self.cfg.stabilization {
            for node in 0..self.topo.nodes.len() {
                if self.topo.nodes[node].alive {
                    self.topo.stabilize_node(node, &mut self.rng_topology);
                }
            }
        }
        self.run_sweep();
        for h in &mut self.topo.hosts {
            h.period_load = 0;
        }
        if self.injections_left > 0 || self.outstanding > 0 {
            self.schedule_event_in(self.cfg.ert.adaptation_period, Event::AdaptTick);
        }
    }

    /// Computes the adaptation action for every alive node. Sequential
    /// on the single engine; on the sharded core each shard decides for
    /// its own node slice in parallel on the `ert-par` ordered pool,
    /// and the per-shard results are merged back into global node
    /// order. The decision is a pure read of `(period_load,
    /// capacity_eval, cfg.ert)`, so shard-parallel evaluation is
    /// order-free and the merged list equals the sequential one.
    fn adapt_decisions(&self) -> Vec<(usize, AdaptAction)> {
        fn decide(n: usize, topo: &Topology, cfg: &NetworkConfig) -> Option<(usize, AdaptAction)> {
            let node = &topo.nodes[n];
            if !node.alive {
                return None;
            }
            let host = &topo.hosts[node.host];
            match adaptation_action(host.period_load as f64, host.capacity_eval as f64, &cfg.ert) {
                AdaptAction::Keep => None,
                act => Some((n, act)),
            }
        }
        match &self.reactor {
            Reactor::Single(_) => (0..self.topo.nodes.len())
                .filter_map(|n| decide(n, &self.topo, &self.cfg))
                .collect(),
            Reactor::Sharded { .. } => {
                let (_, node_parts) = self.shard_partitions();
                let workers = node_parts.len().min(ert_par::default_jobs()).max(1);
                let topo = &self.topo;
                let cfg = &self.cfg;
                let per_shard = ert_par::map_ordered(workers, node_parts, |nodes| {
                    nodes
                        .into_iter()
                        .filter_map(|n| decide(n, topo, cfg))
                        .collect::<Vec<_>>()
                });
                let mut all: Vec<(usize, AdaptAction)> = per_shard.into_iter().flatten().collect();
                all.sort_by_key(|&(n, _)| n);
                all
            }
        }
    }

    /// One round of item-movement balancing (Bharambe et al. style):
    /// the most overloaded hosts each pull a sampled light node to
    /// leave its position and rejoin just before them, splitting their
    /// responsibility interval. ID changes are charged as maintenance.
    fn item_movement_round(&mut self, now: SimTime) {
        let gamma_l = self.cfg.ert.gamma_l;
        let mut heavy: Vec<usize> = self
            .alive_hosts
            .iter()
            .copied()
            .filter(|&h| {
                let host = &self.topo.hosts[h];
                host.period_load as f64 > gamma_l * host.capacity_eval as f64
            })
            .collect();
        heavy.sort_by(|&a, &b| {
            let ga =
                self.topo.hosts[a].period_load as f64 / self.topo.hosts[a].capacity_eval as f64;
            let gb =
                self.topo.hosts[b].period_load as f64 / self.topo.hosts[b].capacity_eval as f64;
            gb.total_cmp(&ga)
        });
        let budget = (self.alive_hosts.len() / 64).max(1);
        for &hh in heavy.iter().take(budget) {
            let Some(&heavy_node) = self.topo.hosts[hh]
                .nodes
                .iter()
                .find(|&&n| self.topo.nodes[n].alive)
            else {
                continue;
            };
            // Sample candidates and take the lightest genuinely light one.
            let sample = self.rng_topology.sample_indices(self.alive_hosts.len(), 8);
            let light_host = sample
                .into_iter()
                .map(|i| self.alive_hosts[i])
                .filter(|&h| {
                    h != hh
                        && (self.topo.hosts[h].period_load as f64)
                            < self.topo.hosts[h].capacity_eval as f64
                })
                .min_by(|&a, &b| {
                    let ga = self.topo.hosts[a].period_load as f64
                        / self.topo.hosts[a].capacity_eval as f64;
                    let gb = self.topo.hosts[b].period_load as f64
                        / self.topo.hosts[b].capacity_eval as f64;
                    ga.total_cmp(&gb)
                });
            let Some(lh) = light_host else { continue };
            let Some(&light_node) = self.topo.hosts[lh]
                .nodes
                .iter()
                .find(|&&n| self.topo.nodes[n].alive)
            else {
                continue;
            };
            // Split the heavy node's interval at its midpoint.
            let heavy_id = self.topo.nodes[heavy_node].id;
            let Some(pred) = self.topo.registry.predecessor(heavy_id) else {
                continue;
            };
            let gap = self.topo.registry.forward_dist(pred, heavy_id);
            if gap < 2 {
                continue;
            }
            let new_lin = (self.topo.space.lin(pred) + gap / 2) % self.topo.space.ring_size();
            let new_id = self.topo.space.from_lin(new_lin);
            if self.topo.registry.contains(new_id) {
                continue;
            }
            // The rejoin: the old identity's links are torn down (and
            // charged), the new one built from scratch.
            let old = &self.topo.nodes[light_node];
            self.topo.link_ops += (old.table.outdegree() + old.table.indegree()) as u64;
            let d_max = old.d_max;
            let old_lin = self.topo.space.lin(old.id);
            self.topo.remove_node(light_node);
            let fresh = self.topo.add_node(new_id, lh, d_max);
            self.topo.build_node_table(fresh, &mut self.rng_topology);
            let new_lin = self.topo.space.lin(new_id);
            self.telemetry.emit(now, || TelemetryEvent::NodeRelocated {
                from: old_lin,
                to: new_lin,
            });
        }
    }

    /// Takes one periodic telemetry snapshot and schedules the next
    /// tick. Pure observation: it reads state but never mutates the
    /// simulation or draws randomness, so a sampled run produces the
    /// same [`RunReport`] as an unsampled one.
    fn on_sample(&mut self, now: SimTime) {
        // ert-lint: allow(unbounded-collector) — fresh per tick, bounded by alive-host count
        let mut congestion = ert_sim::stats::Samples::new();
        let mut utilization_sum = 0.0;
        let (mut queue_total, mut queue_max) = (0u64, 0u64);
        for &h in &self.alive_hosts {
            let host = &self.topo.hosts[h];
            congestion.push(host.congestion());
            let depth = host.load() as u64;
            queue_total += depth;
            queue_max = queue_max.max(depth);
            if now > SimTime::ZERO {
                utilization_sum +=
                    (host.busy_micros.min(now.as_micros())) as f64 / now.as_micros() as f64;
            }
        }
        let host_count = self.alive_hosts.len().max(1) as f64;
        let (mut in_min, mut in_max, mut in_sum) = (u64::MAX, 0u64, 0u64);
        let (mut out_min, mut out_max, mut out_sum) = (u64::MAX, 0u64, 0u64);
        let mut alive_nodes = 0u64;
        for node in &self.topo.nodes {
            if !node.alive {
                continue;
            }
            alive_nodes += 1;
            let (ind, outd) = (node.table.indegree() as u64, node.table.outdegree() as u64);
            in_min = in_min.min(ind);
            in_max = in_max.max(ind);
            in_sum += ind;
            out_min = out_min.min(outd);
            out_max = out_max.max(outd);
            out_sum += outd;
        }
        let node_count = alive_nodes.max(1) as f64;
        // One summary() call: sorts the congestion samples once and
        // reads every rank from the same scratch copy.
        let congestion = congestion.summary();
        let congestion_p99 = congestion.p99;
        self.telemetry.record_snapshot(Snapshot {
            at: now,
            lookups_in_flight: self.outstanding,
            lookups_completed: self.metrics.lookups_completed,
            lookups_dropped: self.metrics.lookups_dropped,
            queue_depth_total: queue_total,
            queue_depth_max: queue_max,
            congestion_p50: congestion.p50,
            congestion_p99,
            congestion_max: congestion.max,
            utilization_mean: utilization_sum / host_count,
            indegree_min: if alive_nodes == 0 { 0 } else { in_min },
            indegree_mean: in_sum as f64 / node_count,
            indegree_max: in_max,
            outdegree_min: if alive_nodes == 0 { 0 } else { out_min },
            outdegree_mean: out_sum as f64 / node_count,
            outdegree_max: out_max,
            alive_nodes,
            alive_hosts: self.alive_hosts.len() as u64,
        });
        self.telemetry
            .observe("congestion_p99", now, || congestion_p99);
        self.telemetry.counter_add("samples", 1);
        if let Some(clock) = &mut self.sample_clock {
            clock.advance();
            if self.injections_left > 0 || self.outstanding > 0 {
                let at = clock.next_at();
                self.schedule_event(at, Event::Sample);
            }
        }
    }

    fn on_churn(&mut self, i: usize, now: SimTime) {
        match self.churn_schedule[i] {
            ChurnEvent::Join { capacity, .. } => self.join_host(capacity, now),
            ChurnEvent::Leave { .. } => self.leave_random_host(now),
        }
    }

    fn join_host(&mut self, raw_capacity: f64, now: SimTime) {
        let nc = raw_capacity / self.capacity_unit;
        let est = self
            .cfg
            .estimator
            .estimate_capacity(nc, &mut self.rng_topology);
        let alpha = self.topo.params.alpha;
        let capacity_eval = max_indegree(alpha, est);
        let coord = Coord::random(&mut self.rng_topology);
        let Some(id) = self.topo.registry.random_vacant(&mut self.rng_topology) else {
            return; // the ID space is full
        };
        let host = self
            .topo
            .add_host(Host::new(raw_capacity, nc, est, capacity_eval, coord));
        let d_max = node_d_max(&self.protocol, &self.topo.hosts[host], alpha);
        let node = self.topo.add_node(id, host, d_max);
        self.topo.build_node_table(node, &mut self.rng_topology);
        self.alive_hosts.push(host);
        if let Reactor::Sharded { map, .. } = &self.reactor {
            self.host_shard
                .push(map.shard_of(self.topo.space.lin(id), self.topo.space.ring_size()));
        }
        let node_lin = self.topo.space.lin(id);
        self.telemetry
            .emit(now, || TelemetryEvent::NodeJoined { node: node_lin });
    }

    fn leave_random_host(&mut self, now: SimTime) {
        if self.alive_hosts.len() <= 2 {
            return; // keep the overlay routable
        }
        let pos = self.rng_topology.gen_range(0..self.alive_hosts.len());
        let host_idx = self.alive_hosts.swap_remove(pos);
        let node_idxs = self.topo.hosts[host_idx].nodes.clone();
        let mut removed: u32 = 0;
        for n in node_idxs {
            if self.topo.nodes[n].alive {
                self.topo.remove_node(n);
                removed += 1;
            }
        }
        self.topo.hosts[host_idx].alive = false;
        self.telemetry.emit(now, || TelemetryEvent::NodeDeparted {
            host: host_idx as u64,
            nodes: removed,
        });
        // Queries stranded on the departed host resume at the successor
        // of the node they were queued at, after a timeout.
        let mut stranded: Vec<usize> = self.topo.hosts[host_idx].queue.drain(..).collect();
        if let Some(in_service) = self.topo.hosts[host_idx].in_service.take() {
            stranded.push(in_service);
        }
        for q in stranded {
            if self.queries[q].done {
                continue;
            }
            self.metrics.handoffs += 1;
            let at = self.topo.nodes[self.queries[q].at_node].id;
            match self.topo.registry.owner(at) {
                Some(successor) => {
                    let succ_lin = self.topo.space.lin(successor);
                    self.telemetry.emit(now, || TelemetryEvent::LookupHandoff {
                        q: q as u64,
                        successor: succ_lin,
                    });
                    self.schedule_event(
                        now + self.cfg.timeout_penalty,
                        Event::Arrive { q, to: successor },
                    )
                }
                None => self.drop_query(q, now),
            }
        }
    }

    fn on_fault(&mut self, i: usize, now: SimTime) {
        let ev = self.fault_schedule[i];
        let seq = i as u64;
        let tag = ev.kind.tag();
        self.telemetry.emit(now, || TelemetryEvent::FaultInjected {
            seq,
            fault: tag.to_string(),
        });
        match ev.kind {
            FaultKind::Crash => self.crash_random_host(now),
            FaultKind::Degrade { factor } => {
                if let Some(&host) = self.rng_faults.choose(&self.alive_hosts) {
                    self.faults.degraded.insert(host, factor);
                }
            }
            FaultKind::DropMessages { p, window } => {
                self.faults.drop = Some((p, now + window));
            }
            FaultKind::Partition { groups, window } => {
                self.faults.partition = Some((groups, now + window));
            }
            FaultKind::Heal => self.faults.heal(),
        }
    }

    fn on_adversary(&mut self, i: usize, now: SimTime) {
        let ev = self.adversary_schedule[i];
        let seq = i as u64;
        let tag = ev.kind.tag();
        self.telemetry
            .emit(now, || TelemetryEvent::AdversaryActivated {
                seq,
                actor: tag.to_string(),
            });
        match ev.kind {
            AdversaryKind::Restore => self.restore_honest(),
            AdversaryKind::CapacityLiar { fraction, error } => {
                self.activate_liars(fraction, error, now)
            }
            AdversaryKind::SybilSwarm { count, region } => self.join_sybils(count, region, now),
            AdversaryKind::QueryFlood {
                key,
                queries,
                window,
            } => self.inject_flood(key, queries, window, now),
            AdversaryKind::RoutingDefector { fraction } => self.activate_defectors(fraction),
        }
    }

    /// Turns a sampled fraction of live hosts into capacity liars:
    /// their reported estimate ĉ — and the capacity evaluation every
    /// routing and adaptation decision reads — is multiplied by
    /// `error`, violating the γ_c envelope of Theorems 3.1/3.2. Only
    /// the *advertised* side moves: [`Host::capacity_true`] keeps the
    /// honest threshold, so a liar attracts two-choice traffic by
    /// advertising slack congestion while its queue physically
    /// saturates at the honest capacity. The honest pair is stashed for
    /// [`AdversaryKind::Restore`]; lying twice compounds the error but
    /// restores to the original truth.
    fn activate_liars(&mut self, fraction: f64, error: f64, now: SimTime) {
        let n = self.alive_hosts.len();
        if n == 0 {
            return;
        }
        let k = ((fraction * n as f64).ceil() as usize).clamp(1, n);
        let alpha = self.topo.params.alpha;
        for p in self.rng_adversary.sample_indices(n, k) {
            let h = self.alive_hosts[p];
            {
                let host = &mut self.topo.hosts[h];
                self.adversaries
                    .liars
                    .entry(h)
                    .or_insert((host.est_capacity, host.capacity_eval));
                let lied = host.est_capacity * error;
                host.est_capacity = lied;
                host.capacity_eval = max_indegree(alpha, lied).max(1);
            }
            self.telemetry
                .emit(now, || TelemetryEvent::CapacityMisreport {
                    host: h as u64,
                    factor: error,
                });
        }
    }

    /// Turns a sampled fraction of live hosts into routing defectors
    /// (see the defection branch in [`Network::forward`]).
    fn activate_defectors(&mut self, fraction: f64) {
        let n = self.alive_hosts.len();
        if n == 0 {
            return;
        }
        let k = ((fraction * n as f64).ceil() as usize).clamp(1, n);
        for p in self.rng_adversary.sample_indices(n, k) {
            self.adversaries.defectors.insert(self.alive_hosts[p]);
        }
    }

    /// Joins `count` coordinated identities packed onto consecutive
    /// vacant slots scanning forward from `region`, concentrating
    /// indegree (and ring responsibility) on the victims there. Each
    /// Sybil reports the unit capacity *honestly* — the attack is
    /// identity concentration, not misreport — so only Theorem 3.2's
    /// independence assumption is violated.
    fn join_sybils(&mut self, count: u32, region: f64, now: SimTime) {
        let ring = self.topo.space.ring_size();
        let alpha = self.topo.params.alpha;
        let mut lin = (region.rem_euclid(1.0) * ring as f64) as u64 % ring;
        let mut tries: u64 = 0;
        for _ in 0..count {
            while self.topo.registry.contains(self.topo.space.from_lin(lin)) {
                lin = (lin + 1) % ring;
                tries += 1;
                if tries > ring {
                    return; // the ID space is full
                }
            }
            let id = self.topo.space.from_lin(lin);
            let nc = 1.0;
            let est = self
                .cfg
                .estimator
                .estimate_capacity(nc, &mut self.rng_adversary);
            let capacity_eval = max_indegree(alpha, est);
            let coord = Coord::random(&mut self.rng_adversary);
            let host =
                self.topo
                    .add_host(Host::new(self.capacity_unit, nc, est, capacity_eval, coord));
            let d_max = node_d_max(&self.protocol, &self.topo.hosts[host], alpha);
            let node = self.topo.add_node(id, host, d_max);
            self.topo.build_node_table(node, &mut self.rng_adversary);
            self.alive_hosts.push(host);
            if let Reactor::Sharded { map, .. } = &self.reactor {
                self.host_shard
                    .push(map.shard_of(self.topo.space.lin(id), self.topo.space.ring_size()));
            }
            let node_lin = self.topo.space.lin(id);
            self.telemetry
                .emit(now, || TelemetryEvent::NodeJoined { node: node_lin });
        }
    }

    /// Layers a flash crowd onto the base workload: `queries` lookups
    /// for the single flooded key, spread evenly over `window`. Sources
    /// stay random (drawn from the workload stream at inject time, like
    /// any other lookup); the key resolves through the deterministic
    /// ring-fraction path, so the flood adds no extra workload draws.
    fn inject_flood(&mut self, key: f64, queries: u32, window: SimDuration, now: SimTime) {
        let key_lin = (key.rem_euclid(1.0) * self.topo.space.ring_size() as f64) as u64
            % self.topo.space.ring_size();
        self.telemetry.emit(now, || TelemetryEvent::FloodBurst {
            key: key_lin,
            count: queries,
        });
        for j in 0..queries {
            let offset = SimDuration::from_micros(
                (u128::from(window.as_micros()) * u128::from(j) / u128::from(queries)) as u64,
            );
            let at = now + offset;
            let idx = self.lookups.len();
            self.lookups.push(Lookup {
                at,
                source: SourcePick::Random,
                key: KeyPick::RingFraction(key),
            });
            self.injections_left += 1;
            self.schedule_event(at, Event::Inject(idx));
        }
    }

    /// Reverts every reversible adversary effect: liars report their
    /// honest capacities again and defectors resume Algorithm 4.
    /// Sybils stay (identity joins are as irreversible as churn joins)
    /// and already-injected flood lookups run their course.
    fn restore_honest(&mut self) {
        let liars = std::mem::take(&mut self.adversaries.liars);
        for (h, (est, eval)) in liars {
            let host = &mut self.topo.hosts[h];
            host.est_capacity = est;
            host.capacity_eval = eval;
        }
        self.adversaries.defectors.clear();
    }

    /// Crash-stop departure: like [`Network::leave_random_host`] but
    /// with **no successor handoff** — every query queued or in service
    /// on the victim dies with it (accounted as failed).
    fn crash_random_host(&mut self, now: SimTime) {
        if self.alive_hosts.len() <= 2 {
            return; // keep the overlay routable, as with clean leaves
        }
        let pos = self.rng_faults.gen_range(0..self.alive_hosts.len());
        let host_idx = self.alive_hosts.swap_remove(pos);
        let node_idxs = self.topo.hosts[host_idx].nodes.clone();
        let mut removed: u32 = 0;
        for n in node_idxs {
            if self.topo.nodes[n].alive {
                self.topo.remove_node(n);
                removed += 1;
            }
        }
        self.topo.hosts[host_idx].alive = false;
        self.faults.degraded.remove(&host_idx);
        self.telemetry.emit(now, || TelemetryEvent::NodeDeparted {
            host: host_idx as u64,
            nodes: removed,
        });
        let mut lost: Vec<usize> = self.topo.hosts[host_idx].queue.drain(..).collect();
        if let Some(in_service) = self.topo.hosts[host_idx].in_service.take() {
            lost.push(in_service);
        }
        for q in lost {
            self.fail_query(q, now);
        }
    }

    /// The subset of `ids` across an active partition cut from `node`'s
    /// host; empty when no partition is in force. Departed entries pass
    /// the filter — discovering those is the stale-link path's business.
    fn partition_cut(&self, node: usize, ids: &[CycloidId], now: SimTime) -> BTreeSet<CycloidId> {
        let Some(groups) = self.faults.partition_groups(now) else {
            return BTreeSet::new();
        };
        let mine = self.topo.nodes[node].host as u64 % u64::from(groups);
        ids.iter()
            .copied()
            .filter(|&id| match self.topo.host_of_id(id) {
                Some(h) => h as u64 % u64::from(groups) != mine,
                None => false,
            })
            .collect()
    }

    /// Whether an active partition blocks a message between the hosts
    /// owning `from` and `to`.
    fn partition_blocks(&self, from: CycloidId, to: CycloidId, now: SimTime) -> bool {
        let Some(groups) = self.faults.partition_groups(now) else {
            return false;
        };
        match (self.topo.host_of_id(from), self.topo.host_of_id(to)) {
            (Some(a), Some(b)) => a as u64 % u64::from(groups) != b as u64 % u64::from(groups),
            _ => false,
        }
    }

    /// The fault gate at the moment of transmission: returns `true` (and
    /// accounts the loss) when the forward `me -> next` is blocked by an
    /// active partition or eaten by an active message-drop episode.
    fn forward_fault_lost(
        &mut self,
        q: usize,
        me: CycloidId,
        next: CycloidId,
        now: SimTime,
    ) -> bool {
        let blocked = self.partition_blocks(me, next, now);
        let dropped = !blocked
            && match self.faults.drop_p(now) {
                Some(p) => self.rng_faults.gen::<f64>() < p,
                None => false,
            };
        if !(blocked || dropped) {
            return false;
        }
        let (from_lin, to_lin) = (self.topo.space.lin(me), self.topo.space.lin(next));
        self.telemetry.emit(now, || TelemetryEvent::MessageLost {
            q: q as u64,
            from: from_lin,
            to: to_lin,
        });
        self.forward_lost(q, now);
        true
    }

    /// One forward attempt of query `q` went nowhere (partition block,
    /// message drop, or no reachable candidate at all). The sender
    /// notices after a timeout; the retry policy then grants another
    /// attempt with exponential backoff, or the query fails.
    fn forward_lost(&mut self, q: usize, now: SimTime) {
        self.queries[q].attempts += 1;
        let attempt = self.queries[q].attempts;
        if attempt >= self.cfg.retry.max_attempts {
            self.fail_query(q, now);
            return;
        }
        self.metrics.retries += 1;
        self.telemetry.emit(now, || TelemetryEvent::LookupRetry {
            q: q as u64,
            attempt,
        });
        let delay = self.cfg.timeout_penalty + self.cfg.retry.backoff(attempt);
        self.schedule_event(now + delay, Event::Retry { q });
    }

    fn on_retry(&mut self, q: usize, now: SimTime) {
        if self.queries[q].done {
            return;
        }
        let node = self.queries[q].at_node;
        if self.topo.nodes[node].alive {
            self.forward(q, node, now);
        } else {
            // The retrying node itself departed during the backoff:
            // `deliver` reroutes to its ring successor like any other
            // message addressed to a dead node.
            let id = self.topo.nodes[node].id;
            self.deliver(q, id, now);
        }
    }
}

/// Shard affinity of a host: the shard owning the ring position of its
/// first overlay node (hosts with no nodes pin to the control shard 0).
fn host_shard_for(topo: &Topology, map: &ShardMap, host: usize) -> usize {
    topo.hosts[host]
        .nodes
        .first()
        .map(|&n| map.shard_of(topo.space.lin(topo.nodes[n].id), topo.space.ring_size()))
        .unwrap_or(0)
}

fn node_d_max(protocol: &ProtocolSpec, host: &Host, alpha: f64) -> u32 {
    match protocol.table {
        // Base and VS place no bound on inlinks.
        TablePolicy::SingleClosest => u32::MAX >> 8,
        // NS and ERT bound inlinks by capacity.
        TablePolicy::SingleHighestCapacity | TablePolicy::Elastic => {
            max_indegree(alpha, host.est_capacity)
        }
    }
}

/// Convenience: `count` uniform lookups at Poisson rate `rate_per_sec`
/// aggregate (random live source, random key). Used by doc examples and
/// tests; real workloads come from `ert-workloads`.
pub fn uniform_lookup_burst(count: usize, rate_per_sec: f64, seed: u64) -> Vec<Lookup> {
    let mut rng = SimRng::seed_from(seed);
    let mut t = SimTime::ZERO;
    (0..count)
        .map(|_| {
            t += SimDuration::from_secs_f64(rng.exp_secs(rate_per_sec));
            Lookup {
                at: t,
                source: SourcePick::Random,
                key: KeyPick::Random,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CycloidSlot, VirtualServerConfig};

    fn caps(n: usize) -> Vec<f64> {
        // Mildly heterogeneous, deterministic capacities.
        (0..n).map(|i| 500.0 + 300.0 * (i % 7) as f64).collect()
    }

    fn run_protocol(spec: ProtocolSpec, lookups: usize, seed: u64) -> RunReport {
        let capacities = caps(128);
        let cfg = NetworkConfig::for_dimension(6, seed);
        let mut net = Network::new(cfg, &capacities, spec).unwrap();
        let schedule = uniform_lookup_burst(lookups, 128.0, seed);
        net.run(&schedule, &[])
    }

    /// The tentpole contract in unit form: the sharded core produces a
    /// byte-identical report for every shard count, including the
    /// legacy `shards == 0` engine. (The full pin suite across workload
    /// shapes and plans lives in `tests/shard_determinism.rs`.)
    #[test]
    fn sharded_runs_match_legacy_engine() {
        let run = |shards: usize| {
            let capacities = caps(96);
            let mut cfg = NetworkConfig::for_dimension(6, 11);
            cfg.shards = shards;
            let mut net = Network::new(cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
            let schedule = uniform_lookup_burst(150, 96.0, 11);
            let churn: Vec<ChurnEvent> = vec![
                ChurnEvent::Leave {
                    at: schedule[40].at,
                },
                ChurnEvent::Join {
                    at: schedule[40].at,
                    capacity: 1500.0,
                },
            ];
            let report = format!("{:?}", net.run(&schedule, &churn));
            (report, net.shard_stats())
        };
        let (legacy, no_stats) = run(0);
        assert!(no_stats.is_none(), "legacy engine reports no shard stats");
        for shards in [1, 2, 3, 8] {
            let (sharded, stats) = run(shards);
            assert_eq!(legacy, sharded, "report diverged at {shards} shards");
            let stats = stats.expect("sharded run exposes stats");
            assert!(stats.barrier_drains > 0);
            if shards > 1 {
                assert!(
                    stats.cross_shard_messages > 0,
                    "a multi-shard run must exchange cross-shard events"
                );
            }
        }
    }

    #[test]
    fn all_lookups_complete_without_churn_base() {
        let r = run_protocol(crate_base_spec(), 300, 1);
        assert_eq!(r.lookups_completed, 300, "dropped: {}", r.lookups_dropped);
        assert!(r.mean_path_length > 0.5);
        assert!(r.mean_path_length < 20.0);
        assert_eq!(r.timeouts_per_lookup, 0.0);
    }

    #[test]
    fn all_lookups_complete_ert_af() {
        let r = run_protocol(ProtocolSpec::ert_af(), 300, 2);
        assert_eq!(r.lookups_completed, 300, "dropped: {}", r.lookups_dropped);
        assert!(r.probes_per_decision > 0.9, "two-choice should probe");
        assert!(r.lookup_time.mean > 0.0);
    }

    #[test]
    fn ert_variants_all_complete() {
        for spec in [ProtocolSpec::ert_a(), ProtocolSpec::ert_f()] {
            let name = spec.name.clone();
            let r = run_protocol(spec, 200, 3);
            assert_eq!(
                r.lookups_completed, 200,
                "{name} dropped {}",
                r.lookups_dropped
            );
        }
    }

    #[test]
    fn virtual_servers_lengthen_paths() {
        let base = run_protocol(crate_base_spec(), 250, 4);
        let vs_spec = ProtocolSpec {
            name: "VS".into(),
            table: TablePolicy::SingleClosest,
            adaptation: false,
            forwarding: ForwardPolicy::Deterministic,
            virtual_servers: Some(VirtualServerConfig::for_network_size(128)),
            item_movement: false,
        };
        let vs = run_protocol(vs_spec, 250, 4);
        assert_eq!(vs.lookups_completed, 250, "dropped {}", vs.lookups_dropped);
        assert!(
            vs.mean_path_length > base.mean_path_length,
            "VS {} should exceed Base {}",
            vs.mean_path_length,
            base.mean_path_length
        );
    }

    #[test]
    fn churn_run_completes_and_counts_membership() {
        let capacities = caps(128);
        let cfg = NetworkConfig::for_dimension(6, 5);
        let mut net = Network::new(cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
        let lookups = uniform_lookup_burst(300, 64.0, 5);
        let horizon = lookups.last().unwrap().at;
        let mut churn = Vec::new();
        let mut rng = SimRng::seed_from(99);
        let mut t = SimTime::ZERO;
        while t < horizon {
            t += SimDuration::from_secs_f64(rng.exp_secs(20.0));
            churn.push(ChurnEvent::Join {
                at: t,
                capacity: 800.0,
            });
            t += SimDuration::from_secs_f64(rng.exp_secs(20.0));
            churn.push(ChurnEvent::Leave { at: t });
        }
        let r = net.run(&lookups, &churn);
        assert_eq!(r.lookups_completed + r.lookups_dropped, 300);
        assert!(
            r.lookups_completed >= 290,
            "churn should not drop many lookups"
        );
        assert!(net.topology().hosts.len() > 128, "joins must have happened");
    }

    #[test]
    fn base_single_neighbor_tables_have_bounded_outdegree() {
        let capacities = caps(128);
        let cfg = NetworkConfig::for_dimension(6, 6);
        let net = Network::new(cfg, &capacities, crate_base_spec()).unwrap();
        for node in &net.topology().nodes {
            let cub = node.table.outlinks(CycloidSlot::Cubical).len();
            let cyc = node.table.outlinks(CycloidSlot::Cyclic).len();
            assert!(cub <= 1 && cyc <= 2, "Base table too wide: {cub}/{cyc}");
        }
    }

    #[test]
    fn deterministic_given_same_seed() {
        let a = run_protocol(ProtocolSpec::ert_af(), 150, 7);
        let b = run_protocol(ProtocolSpec::ert_af(), 150, 7);
        assert_eq!(a.lookup_time.mean, b.lookup_time.mean);
        assert_eq!(a.p99_max_congestion, b.p99_max_congestion);
        assert_eq!(a.heavy_encounters, b.heavy_encounters);
    }

    #[test]
    fn rejects_empty_network() {
        let cfg = NetworkConfig::for_dimension(6, 1);
        assert!(Network::new(cfg, &[], ProtocolSpec::ert_af()).is_err());
    }

    #[test]
    fn landmark_distance_model_runs_and_stays_close_to_exact() {
        let capacities = caps(128);
        let schedule = uniform_lookup_burst(250, 128.0, 24);
        let exact_cfg = NetworkConfig::for_dimension(6, 24);
        let mut lm_cfg = exact_cfg;
        lm_cfg.landmark_count = 12;
        let mut exact = Network::new(exact_cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
        let re = exact.run(&schedule, &[]);
        let mut lm = Network::new(lm_cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
        let rl = lm.run(&schedule, &[]);
        assert_eq!(rl.lookups_completed, 250, "dropped {}", rl.lookups_dropped);
        // Landmark estimates only affect tie-breaks; the headline
        // metrics stay in the same ballpark.
        let rel = (rl.lookup_time.mean - re.lookup_time.mean).abs() / re.lookup_time.mean;
        assert!(
            rel < 0.30,
            "exact {} vs landmark {}",
            re.lookup_time.mean,
            rl.lookup_time.mean
        );
        assert!(lm.topology().hosts.iter().all(|h| h.landmark_vec.is_some()));
        assert!(exact
            .topology()
            .hosts
            .iter()
            .all(|h| h.landmark_vec.is_none()));
    }

    #[test]
    fn tracing_records_query_lifecycle() {
        let capacities = caps(64);
        let mut cfg = NetworkConfig::for_dimension(6, 23);
        cfg.trace_capacity = 256;
        let mut net = Network::new(cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
        let lookups = uniform_lookup_burst(20, 64.0, 23);
        net.run(&lookups, &[]);
        let trace = net.trace().render();
        assert!(trace.contains("inject"), "trace: {trace}");
        assert!(trace.contains("complete"));
        assert!(net.trace().total_recorded() > 20);
        // Disabled by default: no overhead, no entries.
        let cfg2 = NetworkConfig::for_dimension(6, 23);
        let mut net2 = Network::new(cfg2, &capacities, ProtocolSpec::ert_af()).unwrap();
        net2.run(&uniform_lookup_burst(5, 64.0, 23), &[]);
        assert!(net2.trace().is_empty());
    }

    #[test]
    fn anonymity_mode_doubles_relay_load_and_completes() {
        let capacities = caps(128);
        let mut plain_cfg = NetworkConfig::for_dimension(6, 21);
        let mut anon_cfg = plain_cfg;
        anon_cfg.anonymous_responses = true;
        plain_cfg.seed = 21;
        let schedule = uniform_lookup_burst(250, 128.0, 21);

        let mut plain = Network::new(plain_cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
        let rp = plain.run(&schedule, &[]);
        let mut anon = Network::new(anon_cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
        let ra = anon.run(&schedule, &[]);

        assert_eq!(ra.lookups_completed, 250, "dropped {}", ra.lookups_dropped);
        // The response retraces the path: total load roughly doubles...
        let load =
            |net: &Network| -> u64 { net.topology().hosts.iter().map(|h| h.total_received).sum() };
        let (lp, la) = (load(&plain), load(&anon));
        assert!(
            la as f64 > 1.6 * lp as f64 && (la as f64) < 2.4 * lp as f64,
            "plain {lp} vs anon {la}"
        );
        // ...and round-trip times exceed one-way times.
        assert!(ra.lookup_time.mean > 1.5 * rp.lookup_time.mean);
        // Path-length metric still counts request hops only.
        assert!((ra.mean_path_length - rp.mean_path_length).abs() < 2.0);
    }

    #[test]
    fn anonymity_mode_survives_churn() {
        let capacities = caps(128);
        let mut cfg = NetworkConfig::for_dimension(6, 22);
        cfg.anonymous_responses = true;
        let mut net = Network::new(cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
        let lookups = uniform_lookup_burst(200, 64.0, 22);
        let horizon = lookups.last().unwrap().at;
        let mut churn = Vec::new();
        let mut rng = SimRng::seed_from(22);
        let mut t = SimTime::ZERO;
        while t < horizon {
            t += SimDuration::from_secs_f64(rng.exp_secs(30.0));
            churn.push(ChurnEvent::Leave { at: t });
            t += SimDuration::from_secs_f64(rng.exp_secs(30.0));
            churn.push(ChurnEvent::Join {
                at: t,
                capacity: 900.0,
            });
        }
        let r = net.run(&lookups, &churn);
        assert_eq!(r.lookups_completed + r.lookups_dropped, 200);
        assert!(
            r.lookups_completed >= 190,
            "completed {}",
            r.lookups_completed
        );
    }

    #[test]
    fn telemetry_streams_events_and_snapshots_without_perturbing_the_run() {
        use ert_telemetry::{MemorySink, Telemetry};

        let capacities = caps(64);
        let schedule = uniform_lookup_burst(100, 64.0, 31);

        // Plain run: no telemetry at all.
        let cfg = NetworkConfig::for_dimension(6, 31);
        let mut plain = Network::new(cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
        let rp = plain.run(&schedule, &[]);

        // Instrumented run: sink attached, sampler at 0.5 s.
        let mut cfg2 = NetworkConfig::for_dimension(6, 31);
        cfg2.sample_interval = SimDuration::from_secs_f64(0.5);
        let mut net = Network::new(cfg2, &capacities, ProtocolSpec::ert_af()).unwrap();
        let sink = MemorySink::new();
        let lines = sink.handle();
        let mut tel = Telemetry::disabled();
        tel.add_sink(Box::new(sink));
        net.set_telemetry(tel);
        let rt = net.run(&schedule, &[]);

        // Observation must not perturb the simulation.
        assert_eq!(rp.lookups_completed, rt.lookups_completed);
        assert_eq!(rp.lookup_time.mean, rt.lookup_time.mean);
        assert_eq!(rp.p99_max_congestion, rt.p99_max_congestion);
        assert_eq!(rp.sim_seconds, rt.sim_seconds);

        let lines = lines.lock().unwrap();
        let kinds: std::collections::BTreeSet<&str> = lines
            .iter()
            .filter(|l| l.starts_with("{\"kind\":\"event\""))
            .filter_map(|l| {
                let tag = l.split("\"event\":{\"").nth(1)?;
                tag.split('"').next()
            })
            .collect();
        assert!(
            kinds.len() >= 3,
            "want >=3 distinct event kinds, got {kinds:?}"
        );
        assert!(lines
            .iter()
            .any(|l| l.starts_with("{\"kind\":\"snapshot\"")));

        // Retained snapshot series: monotone sim timestamps at Δt grid.
        let tel = net.take_telemetry();
        let snaps = tel.snapshots();
        assert!(
            snaps.len() >= 2,
            "expected several samples, got {}",
            snaps.len()
        );
        for pair in snaps.windows(2) {
            assert!(pair[0].at < pair[1].at);
        }
        assert_eq!(snaps[0].at.as_micros(), 500_000);
        assert!(snaps.iter().all(|s| s.alive_hosts == 64));
        assert_eq!(tel.registry().counter("samples"), snaps.len() as u64);
    }

    /// Local stand-in for `ert_baselines::base()` (the baselines crate
    /// depends on this one).
    fn crate_base_spec() -> ProtocolSpec {
        ProtocolSpec {
            name: "Base".into(),
            table: TablePolicy::SingleClosest,
            adaptation: false,
            forwarding: ForwardPolicy::Deterministic,
            virtual_servers: None,
            item_movement: false,
        }
    }
}
