//! Per-host and per-overlay-node simulation state.

use std::collections::VecDeque;

use ert_core::ElasticTable;
use ert_overlay::{Coord, CycloidId, LandmarkVector};

use crate::spec::CycloidSlot;

/// A physical machine: the unit that owns capacity, a query queue, and
/// the congestion metrics. With virtual servers one host backs several
/// overlay nodes; otherwise the mapping is 1:1.
#[derive(Debug, Clone)]
pub struct Host {
    /// Raw capacity as sampled (queries per interval, e.g. bounded
    /// Pareto 500–50000).
    pub raw_capacity: f64,
    /// Capacity normalized to mean 1 across the initial population.
    pub norm_capacity: f64,
    /// The node's own (possibly erroneous) estimate of `norm_capacity`.
    pub est_capacity: f64,
    /// Queries the host claims it can hold at a time: `⌊0.5 + α·ĉ⌋`
    /// (Section 5). This is the *advertised* value — it feeds candidate
    /// congestion comparisons, indegree caps, and adaptation decisions,
    /// and capacity liars (see `ert-adversary`) inflate it together
    /// with `est_capacity`.
    pub capacity_eval: u32,
    /// The honest queue-pressure threshold that service speed and the
    /// congestion metrics are measured against. Coincides with
    /// `capacity_eval` except on an active capacity liar, whose
    /// advertisement diverges from the physics.
    pub capacity_true: u32,
    /// Position in the synthetic physical network.
    pub coord: Coord,
    /// Measured distances to the landmark set, when the landmarking
    /// distance model is enabled.
    pub landmark_vec: Option<LandmarkVector>,
    /// Queries waiting for service (indices into the run's query table).
    pub queue: VecDeque<usize>,
    /// The query currently in service, if any.
    pub in_service: Option<usize>,
    /// Whether the host is still in the system.
    pub alive: bool,
    /// Queries received during the current adaptation period.
    pub period_load: u64,
    /// Queries received over the whole run (the share metric's `l_i`).
    pub total_received: u64,
    /// Largest congestion ratio `l/c` observed on this host.
    pub max_congestion: f64,
    /// Accumulated busy (serving) time in microseconds.
    pub busy_micros: u64,
    /// Largest total elastic indegree observed across this host's nodes.
    pub max_indegree_seen: u32,
    /// Largest total outdegree observed across this host's nodes.
    pub max_outdegree_seen: u32,
    /// Overlay nodes this host backs.
    pub nodes: Vec<usize>,
}

impl Host {
    /// Creates an idle host.
    pub fn new(
        raw_capacity: f64,
        norm_capacity: f64,
        est_capacity: f64,
        capacity_eval: u32,
        coord: Coord,
    ) -> Self {
        Host {
            raw_capacity,
            norm_capacity,
            est_capacity,
            capacity_eval: capacity_eval.max(1),
            capacity_true: capacity_eval.max(1),
            coord,
            landmark_vec: None,
            queue: VecDeque::new(),
            in_service: None,
            alive: true,
            period_load: 0,
            total_received: 0,
            max_congestion: 0.0,
            busy_micros: 0,
            max_indegree_seen: 0,
            max_outdegree_seen: 0,
            nodes: Vec::new(),
        }
    }

    /// Queries currently held (queued plus in service) — the paper's
    /// notion of instantaneous load.
    pub fn load(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }

    /// Whether the host is overloaded: load exceeds what it can
    /// *actually* hold — a liar's inflated advertisement does not make
    /// its queue drain any faster.
    pub fn is_heavy(&self) -> bool {
        self.load() > self.capacity_true as usize
    }

    /// Instantaneous congestion ratio `l/c` against the honest
    /// capacity.
    pub fn congestion(&self) -> f64 {
        self.load() as f64 / self.capacity_true as f64
    }

    /// Records the current congestion into the running maximum.
    pub fn note_congestion(&mut self) {
        let g = self.congestion();
        if g > self.max_congestion {
            self.max_congestion = g;
        }
    }
}

/// One overlay (virtual) node: an ID plus its routing table.
#[derive(Debug, Clone)]
pub struct OverlayNode {
    /// The node's Cycloid ID.
    pub id: CycloidId,
    /// Index of the backing host.
    pub host: usize,
    /// The (elastic) routing table.
    pub table: ElasticTable<CycloidSlot, CycloidId>,
    /// Dynamic maximum indegree `d^∞` (drifts under adaptation).
    pub d_max: u32,
    /// Whether the node is still in the overlay.
    pub alive: bool,
}

impl OverlayNode {
    /// Creates a node with an empty table.
    pub fn new(id: CycloidId, host: usize, d_max: u32) -> Self {
        OverlayNode {
            id,
            host,
            table: ElasticTable::new(),
            d_max: d_max.max(1),
            alive: true,
        }
    }

    /// Spare indegree `d^∞ − d` (negative when adaptation shrank `d^∞`
    /// below the current indegree).
    pub fn spare_indegree(&self) -> i64 {
        self.d_max as i64 - self.table.indegree() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(cap: u32) -> Host {
        Host::new(1000.0, 1.0, 1.0, cap, Coord::new(0.0, 0.0))
    }

    #[test]
    fn load_counts_service_slot() {
        let mut h = host(2);
        assert_eq!(h.load(), 0);
        h.queue.push_back(0);
        h.in_service = Some(1);
        assert_eq!(h.load(), 2);
        assert!(!h.is_heavy());
        h.queue.push_back(2);
        assert!(h.is_heavy());
        assert_eq!(h.congestion(), 1.5);
    }

    #[test]
    fn congestion_watermark() {
        let mut h = host(1);
        h.queue.push_back(0);
        h.queue.push_back(1);
        h.note_congestion();
        h.queue.clear();
        h.note_congestion();
        assert_eq!(h.max_congestion, 2.0);
    }

    #[test]
    fn capacity_clamped_to_one() {
        let h = host(0);
        assert_eq!(h.capacity_eval, 1);
    }

    #[test]
    fn spare_indegree_can_go_negative() {
        let space = ert_overlay::CycloidSpace::new(3);
        let mut n = OverlayNode::new(space.id(0, 0), 0, 2);
        assert_eq!(n.spare_indegree(), 2);
        for a in 1..=3 {
            n.table.add_backward(space.id(1, a));
        }
        assert_eq!(n.spare_indegree(), -1);
    }
}
