//! Workload vocabulary: lookup and churn schedules.
//!
//! Generators in `ert-workloads` produce these descriptions; the network
//! resolves them against the live membership when they fire (a "random
//! source" drawn at generation time could name a node that has since
//! departed).

use ert_sim::SimTime;
use serde::{Deserialize, Serialize};

/// How a lookup's source node is chosen when the lookup fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourcePick {
    /// A uniformly random live node.
    Random,
    /// The live node owning the given fraction of the ring — used by the
    /// skewed-lookup "impulse" to pin sources to a contiguous interval
    /// of the ID space (Section 5.4).
    RingFraction(f64),
}

/// How a lookup's target key is chosen when the lookup fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyPick {
    /// A uniformly random key.
    Random,
    /// The key at the given fraction of the ring — the impulse workload
    /// draws from 50 fixed fractions.
    RingFraction(f64),
}

/// One scheduled lookup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lookup {
    /// When the query is injected.
    pub at: SimTime,
    /// Source selection rule.
    pub source: SourcePick,
    /// Key selection rule.
    pub key: KeyPick,
}

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A node with the given raw capacity joins.
    Join {
        /// When it joins.
        at: SimTime,
        /// Its raw (un-normalized) capacity.
        capacity: f64,
    },
    /// A uniformly random live node departs.
    Leave {
        /// When it departs.
        at: SimTime,
    },
}

impl ChurnEvent {
    /// The event's scheduled time.
    pub fn at(&self) -> SimTime {
        match *self {
            ChurnEvent::Join { at, .. } | ChurnEvent::Leave { at } => at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_event_time_accessor() {
        let j = ChurnEvent::Join {
            at: SimTime::from_micros(5),
            capacity: 100.0,
        };
        let l = ChurnEvent::Leave {
            at: SimTime::from_micros(9),
        };
        assert_eq!(j.at(), SimTime::from_micros(5));
        assert_eq!(l.at(), SimTime::from_micros(9));
    }
}
