//! Workload vocabulary: lookup and churn schedules.
//!
//! Generators in `ert-workloads` produce these descriptions; the network
//! resolves them against the live membership when they fire (a "random
//! source" drawn at generation time could name a node that has since
//! departed).

use ert_sim::SimTime;
use serde::{Deserialize, Serialize};

/// How a lookup's source node is chosen when the lookup fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourcePick {
    /// A uniformly random live node.
    Random,
    /// The live node owning the given fraction of the ring — used by the
    /// skewed-lookup "impulse" to pin sources to a contiguous interval
    /// of the ID space (Section 5.4).
    RingFraction(f64),
}

/// How a lookup's target key is chosen when the lookup fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyPick {
    /// A uniformly random key.
    Random,
    /// The key at the given fraction of the ring — the impulse workload
    /// draws from 50 fixed fractions.
    RingFraction(f64),
}

/// One scheduled lookup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lookup {
    /// When the query is injected.
    pub at: SimTime,
    /// Source selection rule.
    pub source: SourcePick,
    /// Key selection rule.
    pub key: KeyPick,
}

/// One scheduled membership change.
///
/// # Ordering at equal timestamps
///
/// A schedule may put several events at the same instant (a mass-leave
/// blast, or exponential gaps that round to the same microsecond). The
/// network applies equal-time events in the canonical order given by
/// [`ChurnEvent::sort_key`] — `Join` before `Leave`, joins tie-broken
/// by capacity bits — **not** in schedule-slice order, so permuting a
/// schedule never changes a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A node with the given raw capacity joins.
    Join {
        /// When it joins.
        at: SimTime,
        /// Its raw (un-normalized) capacity.
        capacity: f64,
    },
    /// A uniformly random live node departs.
    Leave {
        /// When it departs.
        at: SimTime,
    },
}

impl ChurnEvent {
    /// The event's scheduled time.
    pub fn at(&self) -> SimTime {
        match *self {
            ChurnEvent::Join { at, .. } | ChurnEvent::Leave { at } => at,
        }
    }

    /// The canonical ordering key: time first, then `Join` before
    /// `Leave` (arrivals keep the membership up before random
    /// departures draw from it), then the join capacity's bits so even
    /// same-instant joins order deterministically. Two equal-time
    /// `Leave`s are interchangeable — both remove a uniformly random
    /// host — so their mutual order cannot affect a run.
    pub fn sort_key(&self) -> (SimTime, u8, u64) {
        match *self {
            ChurnEvent::Join { at, capacity } => (at, 0, capacity.to_bits()),
            ChurnEvent::Leave { at } => (at, 1, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_key_orders_time_then_kind_then_capacity() {
        let t = SimTime::from_micros(100);
        let join_small = ChurnEvent::Join {
            at: t,
            capacity: 100.0,
        };
        let join_big = ChurnEvent::Join {
            at: t,
            capacity: 900.0,
        };
        let leave = ChurnEvent::Leave { at: t };
        let early_leave = ChurnEvent::Leave {
            at: SimTime::from_micros(1),
        };
        let mut events = vec![leave, join_big, early_leave, join_small];
        events.sort_by_key(ChurnEvent::sort_key);
        assert_eq!(events, vec![early_leave, join_small, join_big, leave]);
    }

    #[test]
    fn churn_event_time_accessor() {
        let j = ChurnEvent::Join {
            at: SimTime::from_micros(5),
            capacity: 100.0,
        };
        let l = ChurnEvent::Leave {
            at: SimTime::from_micros(9),
        };
        assert_eq!(j.at(), SimTime::from_micros(5));
        assert_eq!(l.at(), SimTime::from_micros(9));
    }
}
