//! The simulated DHT network of the ERT reproduction.
//!
//! This crate binds the substrates together into the system the paper
//! evaluates: a Cycloid overlay ([`ert_overlay`]) whose nodes run a
//! congestion-control protocol ([`ProtocolSpec`]) over a discrete-event
//! engine ([`ert_sim`]), processing lookups through per-host FIFO queues
//! exactly as Section 5 describes:
//!
//! * a host's *capacity* is the number of queries it can hold at a time,
//!   `⌊0.5 + α·ĉ⌋` of its normalized capacity `ĉ`;
//! * its *load* is its queue length; it is **heavy** when the queue
//!   exceeds the capacity;
//! * serving a query takes 0.2 s on a light host and 1 s on a heavy one
//!   (both configurable — Figs. 8a–c sweep them);
//! * lookups and churn arrive as Poisson streams (from `ert-workloads`).
//!
//! One [`Network`] value is one simulation run; [`Network::run`] consumes
//! a lookup schedule plus an optional churn schedule and yields a
//! [`RunReport`] carrying every metric the paper's figures plot.
//!
//! The protocol is pluggable: [`ProtocolSpec`] describes how tables are
//! built (single-neighbor vs. elastic), whether periodic indegree
//! adaptation runs, which forwarding policy is used, and whether the
//! overlay is built of capacity-proportional virtual servers. The ERT
//! variants are constructed here ([`ProtocolSpec::ert_af`] etc.); the
//! paper's comparison baselines live in `ert-baselines`.
//!
//! # Fault injection
//!
//! [`Network::run_with_faults`] interprets a seeded [`FaultPlan`] (from
//! `ert-faults`, re-exported here) alongside the churn schedule:
//! crash-stop departures, degraded hosts, message-loss episodes, and
//! partitions. Lost forwards retry under [`NetworkConfig::retry`]
//! (default: a single attempt, i.e. retries off) and exhausted queries
//! are accounted as `lookups_failed`. An empty plan leaves every run
//! byte-identical to [`Network::run`].
//!
//! # Adversarial interpretation
//!
//! [`Network::run_with_plans`] additionally interprets a seeded
//! [`AdversaryPlan`] (from `ert-adversary`, re-exported here): capacity
//! liars that misreport ĉ and so violate the γ_c assumption behind
//! Theorems 3.1/3.2, Sybil swarms concentrating identities on a ring
//! region, query-flood flash crowds layered onto the base workload, and
//! routing defectors that invert Algorithm 4's two-choice rule. The
//! sanitizer's theorem envelopes are relaxed *only* for the specific
//! theorems whose assumptions the plan deliberately violates (see
//! [`Network::envelope_relaxations`]). An empty plan leaves every run
//! byte-identical to [`Network::run_with_faults`].
//!
//! # Invariant sanitizer
//!
//! Debug builds (and any build with the `sanitize` feature) assert the
//! paper's invariants while the simulation runs: event-clock
//! monotonicity, per-host FIFO discipline, and the Theorem 3.1–3.3
//! degree envelopes. See the `sanitize` module and
//! [`Network::sanitize_checks`]. Plain release builds compile the
//! checks out entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lookup;
pub mod metrics;
pub mod network;
mod sanitize;
pub mod spec;
pub mod state;
pub mod topology;

pub use config::NetworkConfig;
pub use ert_adversary::{
    AdversaryCampaign, AdversaryEvent, AdversaryKind, AdversaryPlan, AdversaryScript,
};
pub use ert_faults::{ChaosPlan, FaultEvent, FaultKind, FaultPlan, RetryPolicy};
pub use lookup::{ChurnEvent, KeyPick, Lookup, SourcePick};
pub use metrics::RunReport;
pub use network::Network;
pub use sanitize::EnvelopeRelaxations;
pub use spec::{CycloidSlot, ProtocolSpec, TablePolicy, VirtualServerConfig};
