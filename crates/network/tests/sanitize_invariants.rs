//! Runs simulations with the runtime invariant sanitizer active and
//! proves it covered the run (`sanitize_checks() > 0`). The sanitizer
//! panics on any violated invariant, so completion == all checks held.

use ert_network::{network::uniform_lookup_burst, Network, NetworkConfig, ProtocolSpec};

fn caps(n: usize) -> Vec<f64> {
    (0..n).map(|i| 500.0 + 300.0 * (i % 7) as f64).collect()
}

#[test]
fn quick_run_is_fully_sanitized() {
    let capacities = caps(128);
    let cfg = NetworkConfig::for_dimension(6, 41);
    let mut net = Network::new(cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
    let lookups = uniform_lookup_burst(300, 128.0, 41);
    let r = net.run(&lookups, &[]);
    assert_eq!(r.lookups_completed + r.lookups_dropped, 300);
    // Debug builds and sanitize-feature builds must actually have
    // checked something; plain release builds compile the checks out.
    if cfg!(any(debug_assertions, feature = "sanitize")) {
        assert!(
            net.sanitize_checks() > 300,
            "sanitizer barely ran: {} checks",
            net.sanitize_checks()
        );
    } else {
        assert_eq!(net.sanitize_checks(), 0);
    }
}

/// The acceptance run: the paper's Table 2 default scenario (2048
/// hosts with bounded-Pareto capacities, 3000 lookups at one per
/// node-second, 0.2 s light service, uniform workload, no churn) under
/// ERT/AF with every theorem-bound assertion armed. Mirrors
/// `Scenario::paper_default` in ert-experiments, including its seeding
/// scheme, via the same ert-workloads generators.
#[cfg(feature = "sanitize")]
#[test]
fn table2_default_scenario_completes_with_assertions_armed() {
    use ert_overlay::CycloidSpace;
    use ert_sim::SimRng;
    use ert_workloads::{uniform_lookups, BoundedPareto};

    let (n, lookups_n, seed) = (2048usize, 3000usize, 1u64);
    let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9e37_79b9));
    let capacities = BoundedPareto::paper_default().sample_n(n, &mut rng.fork("capacities"));
    let dim = CycloidSpace::dimension_for(n);
    let cfg = NetworkConfig::for_dimension(dim, seed).with_light_service_secs(0.2);
    let lookups = uniform_lookups(lookups_n, n as f64, &mut rng.fork("lookups"));

    let mut net = Network::new(cfg, &capacities, ProtocolSpec::ert_af()).unwrap();
    let r = net.run(&lookups, &[]);

    assert_eq!(r.lookups_completed + r.lookups_dropped, lookups_n as u64);
    assert_eq!(r.lookups_dropped, 0, "Table 2 default run should not drop");
    assert!(
        net.sanitize_checks() > lookups_n as u64,
        "sanitizer coverage too thin: {} checks",
        net.sanitize_checks()
    );
}
