//! The single-threaded node reactor.
//!
//! A [`WireNode`] owns exactly the state one `MiniNode` holds inside
//! the simulator — elastic table, service queue, adaptive bound — and
//! executes the same algorithms (`ert-core`'s Algorithm 4 forwarding
//! and Algorithm 3 adaptation) as wire exchanges through a
//! [`Transport`]. Every decision the simulator makes by reading shared
//! memory, the node makes by sending a frame: candidate loads arrive as
//! `ProbeLoad`/`LoadReport` RPCs, indegree expansion negotiates
//! `AdaptIndegree` ops with the candidate inlink holders, and lookups
//! are forwarded as `Lookup` datagrams. The differential oracle in
//! `ert-testkit` pins the two executions to identical decisions
//! hop-by-hop; see DESIGN.md "Wire Protocol & Live Node" for the
//! correspondence argument.
//!
//! Determinism: the node's only randomness is two private streams
//! derived from `seed ^ id` — the build stream (elastic slot picks at
//! join) and the `"decide"` fork (forwarding probes). It never reads a
//! clock (time comes from [`Transport::now`]) and never iterates an
//! unordered container.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use ert_core::{
    adaptation_action, assign::initial_indegree_target, choose_next_b, AdaptAction, Candidate,
    ElasticTable, ErtParams, ForwardPolicy,
};
use ert_minidht::{AdaptTrace, ChordGeometry, Geometry, MiniDhtConfig, MiniProtocol};
use ert_sim::{SimDuration, SimRng};

use crate::codec::{decode, encode, AdaptOp, CodecError, LookupStatus, Message};
use crate::transport::{TimerKind, Transport, TransportError, CLIENT_ADDR};

/// Node-level protocol failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// A frame failed to decode.
    Codec(CodecError),
    /// The transport failed in a way the protocol cannot absorb.
    Transport(TransportError),
    /// A peer answered with an unexpected message.
    Protocol(String),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Codec(e) => write!(f, "codec: {e}"),
            NodeError::Transport(e) => write!(f, "transport: {e}"),
            NodeError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<CodecError> for NodeError {
    fn from(e: CodecError) -> Self {
        NodeError::Codec(e)
    }
}

impl From<TransportError> for NodeError {
    fn from(e: TransportError) -> Self {
        NodeError::Transport(e)
    }
}

/// A lookup while resident on this node (queued or in service).
#[derive(Debug, Clone)]
pub(crate) struct LookupState {
    pub(crate) query: u64,
    pub(crate) key: u64,
    pub(crate) hops: u32,
    pub(crate) attempts: u32,
    pub(crate) numeric_mode: bool,
    pub(crate) avoid: BTreeSet<u64>,
}

/// Result of probing one forwarding candidate.
enum Probe {
    /// The peer answered with (load, capacity).
    Report(u64, u64),
    /// No such peer; the simulator scores unknowns as load 0 capacity 1.
    Unknown,
    /// A partition hides the peer; it cannot be considered this hop.
    Unreachable,
}

/// One live DHT node: Chord geometry replica, elastic routing table,
/// single-server queue, and the ERT adaptation loop — all driven
/// through a [`Transport`].
#[derive(Debug)]
pub struct WireNode {
    pub(crate) id: u64,
    bits: u8,
    pub(crate) raw_capacity: f64,
    pub(crate) capacity_eval: u32,
    pub(crate) d_max: u32,
    geometry: ChordGeometry,
    members: BTreeSet<u64>,
    pub(crate) table: ElasticTable<u16, u64>,
    queue: VecDeque<LookupState>,
    in_service: Option<LookupState>,
    pub(crate) period_load: u64,
    pub(crate) total_received: u64,
    pub(crate) max_congestion: f64,
    pub(crate) heavy_encounters: u64,
    decide: SimRng,
    build_rng: SimRng,
    ert: ErtParams,
    light: SimDuration,
    heavy: SimDuration,
    max_hops: u32,
    protocol: MiniProtocol,
    adapt_round: u32,
    stabilize_round: u32,
}

impl WireNode {
    /// Creates a node with ring id `id` and an initial membership view.
    /// `capacity_eval` is the evaluated capacity (`max_indegree` over
    /// the normalized capacity), computed by whoever knows the full
    /// capacity distribution.
    pub fn new(
        id: u64,
        bits: u8,
        view: &[u64],
        raw_capacity: f64,
        capacity_eval: u32,
        cfg: &MiniDhtConfig,
        protocol: MiniProtocol,
    ) -> WireNode {
        let d_max = match protocol {
            MiniProtocol::Classic => u32::MAX >> 8,
            MiniProtocol::ElasticErt => capacity_eval,
        };
        let mut members: BTreeSet<u64> = view.iter().copied().collect();
        members.insert(id);
        let member_list: Vec<u64> = members.iter().copied().collect();
        WireNode {
            id,
            bits,
            raw_capacity,
            capacity_eval,
            d_max,
            geometry: ChordGeometry::from_members(bits, &member_list),
            members,
            table: ElasticTable::new(),
            queue: VecDeque::new(),
            in_service: None,
            period_load: 0,
            total_received: 0,
            max_congestion: 0.0,
            heavy_encounters: 0,
            decide: SimRng::seed_from(cfg.seed ^ id).fork("decide"),
            build_rng: SimRng::seed_from(cfg.seed ^ id),
            ert: cfg.ert,
            light: cfg.light_service,
            heavy: cfg.heavy_service,
            max_hops: cfg.max_hops,
            protocol,
            adapt_round: 0,
            stabilize_round: 0,
        }
    }

    /// Ring id of this node.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current backward-finger count.
    pub fn indegree(&self) -> u32 {
        self.table.indegree() as u32
    }

    /// Current adaptive indegree bound.
    pub fn d_max(&self) -> u32 {
        self.d_max
    }

    /// Sorted membership view.
    pub fn members_view(&self) -> Vec<u64> {
        self.members.iter().copied().collect()
    }

    /// The node's geometry replica (rebuilt from the membership view).
    pub fn geometry(&self) -> &ChordGeometry {
        &self.geometry
    }

    fn load(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }

    fn is_heavy(&self) -> bool {
        self.load() > self.capacity_eval as usize
    }

    fn spare(&self) -> i64 {
        self.d_max as i64 - self.table.indegree() as i64
    }

    fn load_report(&self, token: u64) -> Message {
        Message::LoadReport {
            token,
            load: self.load() as u64,
            capacity: self.capacity_eval as u64,
            indegree: self.table.indegree() as u32,
            spare: self.spare(),
        }
    }

    /// Canonical routing-state fingerprint, formatted exactly like
    /// `MiniDht::table_fingerprints` so oracle comparisons are string
    /// equality.
    pub fn fingerprint(&self) -> String {
        let out: Vec<String> = self
            .table
            .occupied_slots()
            .map(|s| {
                let ids: Vec<String> = self.table.outlinks(s).iter().map(u64::to_string).collect();
                format!("{s}:{}", ids.join(","))
            })
            .collect();
        let mem: Vec<String> = self
            .table
            .occupied_slots()
            .filter_map(|s| self.table.memory(s).map(|m| format!("{s}:{m}")))
            .collect();
        let back: Vec<String> = self
            .table
            .backward_fingers()
            .iter()
            .map(u64::to_string)
            .collect();
        format!(
            "id={};dmax={};out=[{}];mem=[{}];back=[{}]",
            self.id,
            self.d_max,
            out.join("|"),
            mem.join("|"),
            back.join(",")
        )
    }

    fn rebuild_geometry(&mut self) {
        let member_list: Vec<u64> = self.members.iter().copied().collect();
        self.geometry = ChordGeometry::from_members(self.bits, &member_list);
    }

    fn merge_view(&mut self, others: &[u64]) -> bool {
        let before = self.members.len();
        self.members.extend(others.iter().copied());
        let grew = self.members.len() != before;
        if grew {
            self.rebuild_geometry();
        }
        grew
    }

    // ---- membership ----------------------------------------------------

    /// Joins the overlay through `bootstrap`: announces ourselves and
    /// merges the bootstrap's membership view from the reply.
    ///
    /// # Errors
    ///
    /// Fails when the bootstrap is unreachable or answers garbage.
    pub fn join_via(&mut self, t: &mut dyn Transport, bootstrap: u64) -> Result<(), NodeError> {
        let view = self.members_view();
        let reply = t.request(
            bootstrap,
            &encode(&Message::Join {
                id: self.id,
                members: view,
            }),
        )?;
        match decode(&reply)? {
            Message::Join { members, .. } | Message::Stabilize { members, .. } => {
                self.merge_view(&members);
                Ok(())
            }
            other => Err(NodeError::Protocol(format!(
                "join reply carried unexpected message {other:?}"
            ))),
        }
    }

    /// One stabilize round: exchange membership views with every peer in
    /// the current view (sorted order), merging each reply. Returns
    /// whether the view grew — `false` from every node means the
    /// cluster has reached its gossip fixpoint.
    ///
    /// # Errors
    ///
    /// Fails on peer-side protocol violations; unreachable peers are
    /// skipped.
    pub fn stabilize_once(&mut self, t: &mut dyn Transport) -> Result<bool, NodeError> {
        let round = self.stabilize_round;
        self.stabilize_round += 1;
        let peers = self.members_view();
        let mut grew = false;
        for peer in peers {
            if peer == self.id {
                continue;
            }
            let reply = match t.request(
                peer,
                &encode(&Message::Stabilize {
                    round,
                    members: self.members_view(),
                }),
            ) {
                Ok(bytes) => bytes,
                Err(TransportError::UnknownPeer(_) | TransportError::Partitioned { .. }) => {
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            match decode(&reply)? {
                Message::Stabilize { members, .. } | Message::Join { members, .. } => {
                    grew |= self.merge_view(&members);
                }
                other => {
                    return Err(NodeError::Protocol(format!(
                        "stabilize reply carried unexpected message {other:?}"
                    )))
                }
            }
        }
        Ok(grew)
    }

    /// Announces a graceful departure to every peer in the view.
    ///
    /// # Errors
    ///
    /// Only local send failures surface; the datagram may be lost.
    pub fn announce_leave(&mut self, t: &mut dyn Transport) -> Result<(), NodeError> {
        let frame = encode(&Message::Leave { id: self.id });
        for peer in self.members_view() {
            if peer != self.id {
                t.send(peer, &frame)?;
            }
        }
        Ok(())
    }

    // ---- link construction ---------------------------------------------

    /// Builds the routing table over the wire, replicating the
    /// simulator's `build_table` exactly: classic picks for structural
    /// slots, spare-indegree-restricted random picks (from the private
    /// build stream) for elastic slots, then indegree expansion to the
    /// `β`-target.
    ///
    /// # Errors
    ///
    /// Propagates peer protocol violations; unreachable candidates are
    /// skipped exactly where the simulator's directory returns its
    /// unknown-peer defaults.
    pub fn build_links(&mut self, t: &mut dyn Transport) -> Result<(), NodeError> {
        match self.protocol {
            MiniProtocol::Classic => {
                for (slot, members) in self.geometry.table_slots(self.id) {
                    if let Some(pick) = self.geometry.classic_pick(self.id, slot, &members) {
                        if !self.table.outlinks(slot).contains(&pick) {
                            self.add_link(t, slot, pick)?;
                        }
                    }
                }
            }
            MiniProtocol::ElasticErt => {
                for (slot, members) in self.geometry.table_slots(self.id) {
                    let pick = if self.geometry.is_structural(slot) {
                        self.geometry.classic_pick(self.id, slot, &members)
                    } else {
                        let mut eligible: Vec<u64> = Vec::new();
                        for c in members {
                            if self.spare_of(t, c)? >= 1 {
                                eligible.push(c);
                            }
                        }
                        self.build_rng.choose(&eligible).copied()
                    };
                    if let Some(pick) = pick {
                        if !self.table.outlinks(slot).contains(&pick) {
                            self.add_link(t, slot, pick)?;
                        }
                    }
                }
                let target = initial_indegree_target(&self.ert, self.d_max);
                self.expand_indegree(t, target)?;
            }
        }
        Ok(())
    }

    fn add_link(&mut self, t: &mut dyn Transport, slot: u16, pick: u64) -> Result<(), NodeError> {
        self.table.add_outlink(slot, pick);
        if !self.geometry.is_structural(slot) {
            match t.request(
                pick,
                &encode(&Message::AdaptIndegree {
                    from: self.id,
                    slot,
                    op: AdaptOp::AddBackward,
                }),
            ) {
                Ok(_) | Err(TransportError::UnknownPeer(_)) => {}
                Err(TransportError::Partitioned { .. }) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Remote spare indegree, as the simulator's directory reports it:
    /// unknown or unreachable peers count as 0 (never eligible).
    fn spare_of(&mut self, t: &mut dyn Transport, peer: u64) -> Result<i64, NodeError> {
        match t.request(peer, &encode(&Message::ProbeLoad { token: 0 })) {
            Ok(bytes) => match decode(&bytes)? {
                Message::LoadReport { spare, .. } => Ok(spare),
                other => Err(NodeError::Protocol(format!(
                    "probe reply carried unexpected message {other:?}"
                ))),
            },
            Err(TransportError::UnknownPeer(_) | TransportError::Partitioned { .. }) => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    /// Wire mirror of `ert_core::expand_indegree`: walk the geometry's
    /// inlink candidates, querying each holder for an existing link and
    /// asking it to add one, until the indegree target is met. The loop
    /// body is intentionally the same shape as the shared-memory
    /// version; the differential oracle pins the equivalence.
    fn expand_indegree(&mut self, t: &mut dyn Transport, target: u32) -> Result<u32, NodeError> {
        let mut gained = 0;
        if self.indegree() >= target {
            return Ok(gained);
        }
        for (slot, cand) in self.geometry.inlink_candidates(self.id) {
            if self.indegree() >= target {
                break;
            }
            if cand == self.id {
                continue;
            }
            let has = match t.request(
                cand,
                &encode(&Message::AdaptIndegree {
                    from: self.id,
                    slot,
                    op: AdaptOp::QueryOutlink,
                }),
            ) {
                Ok(bytes) => match decode(&bytes)? {
                    Message::LoadReport { load, .. } => load != 0,
                    other => {
                        return Err(NodeError::Protocol(format!(
                            "query-outlink reply carried unexpected message {other:?}"
                        )))
                    }
                },
                Err(TransportError::UnknownPeer(_) | TransportError::Partitioned { .. }) => {
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            if has {
                continue;
            }
            match t.request(
                cand,
                &encode(&Message::AdaptIndegree {
                    from: self.id,
                    slot,
                    op: AdaptOp::AddOutlink,
                }),
            ) {
                Ok(_) => {}
                Err(TransportError::UnknownPeer(_) | TransportError::Partitioned { .. }) => {
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
            self.table.add_backward(cand);
            gained += 1;
        }
        Ok(gained)
    }

    // ---- datagram lane -------------------------------------------------

    /// Handles one datagram frame (`Lookup` or `Leave`).
    ///
    /// # Errors
    ///
    /// Fails on undecodable frames or messages that do not belong on
    /// the datagram lane.
    pub fn on_frame(&mut self, t: &mut dyn Transport, frame: &[u8]) -> Result<(), NodeError> {
        match decode(frame)? {
            Message::Lookup {
                query,
                key,
                hops,
                attempts,
                flags,
                avoid,
            } => {
                let st = LookupState {
                    query,
                    key,
                    hops,
                    attempts,
                    numeric_mode: flags & 1 != 0,
                    avoid: avoid.into_iter().collect(),
                };
                self.on_lookup(t, st);
                Ok(())
            }
            Message::Leave { id } => {
                if self.members.remove(&id) {
                    self.table.purge_peer(id);
                    self.rebuild_geometry();
                }
                Ok(())
            }
            other => Err(NodeError::Protocol(format!(
                "message does not belong on the datagram lane: {other:?}"
            ))),
        }
    }

    /// Lookup arrival: the simulator's `on_arrive`, verbatim — heavy
    /// accounting, then service-or-queue, then the congestion high-water
    /// mark.
    fn on_lookup(&mut self, t: &mut dyn Transport, st: LookupState) {
        if self.is_heavy() {
            self.heavy_encounters += 1;
        }
        self.total_received += 1;
        self.period_load += 1;
        if self.in_service.is_none() {
            self.start_service(t, st);
        } else {
            self.queue.push_back(st);
        }
        let g = self.load() as f64 / self.capacity_eval as f64;
        if g > self.max_congestion {
            self.max_congestion = g;
        }
    }

    fn start_service(&mut self, t: &mut dyn Transport, st: LookupState) {
        let query = st.query;
        self.in_service = Some(st);
        let service = if self.is_heavy() {
            self.heavy
        } else {
            self.light
        };
        t.timer(service, TimerKind::ServiceDone { query });
    }

    // ---- RPC lane ------------------------------------------------------

    /// Handles one reliable RPC and returns the encoded reply. Pure
    /// local-state handler: it never issues transport calls, so nested
    /// RPC deadlock is impossible by construction.
    ///
    /// # Errors
    ///
    /// Fails on undecodable frames or messages that do not belong on
    /// the RPC lane.
    pub fn on_request(&mut self, frame: &[u8]) -> Result<Vec<u8>, NodeError> {
        match decode(frame)? {
            Message::ProbeLoad { token } => Ok(encode(&self.load_report(token))),
            Message::AdaptIndegree { from, slot, op } => {
                let reply = match op {
                    AdaptOp::QueryOutlink => {
                        let has = self.table.outlinks(slot).contains(&from);
                        Message::LoadReport {
                            token: u64::from(has),
                            load: u64::from(has),
                            capacity: self.capacity_eval as u64,
                            indegree: self.table.indegree() as u32,
                            spare: self.spare(),
                        }
                    }
                    AdaptOp::AddOutlink => {
                        self.table.add_outlink(slot, from);
                        self.load_report(0)
                    }
                    AdaptOp::DropOutlinks => {
                        let slots: Vec<u16> = self.table.occupied_slots().collect();
                        for s in slots {
                            self.table.remove_outlink(s, from);
                        }
                        self.load_report(0)
                    }
                    AdaptOp::AddBackward => {
                        self.table.add_backward(from);
                        self.load_report(0)
                    }
                };
                Ok(encode(&reply))
            }
            Message::Join { id, members } => {
                self.members.insert(id);
                self.merge_view(&members);
                self.rebuild_geometry();
                Ok(encode(&Message::Join {
                    id: self.id,
                    members: self.members_view(),
                }))
            }
            Message::Stabilize { round, members } => {
                self.merge_view(&members);
                Ok(encode(&Message::Stabilize {
                    round,
                    members: self.members_view(),
                }))
            }
            other => Err(NodeError::Protocol(format!(
                "message does not belong on the RPC lane: {other:?}"
            ))),
        }
    }

    // ---- timers --------------------------------------------------------

    /// Handles a timer callback. `AdaptTick` returns the adaptation
    /// outcome so the transport owner can record the trace.
    ///
    /// # Errors
    ///
    /// Propagates forwarding/adaptation wire failures.
    pub fn on_timer(
        &mut self,
        t: &mut dyn Transport,
        kind: TimerKind,
    ) -> Result<Option<AdaptTrace>, NodeError> {
        match kind {
            TimerKind::ServiceDone { query } => {
                if self.in_service.as_ref().map(|s| s.query) != Some(query) {
                    return Ok(None);
                }
                let Some(st) = self.in_service.take() else {
                    return Ok(None);
                };
                // Start the next service *before* forwarding, exactly as
                // the simulator schedules the next Done before the
                // forwarded Arrive — the (time, seq) merge key preserves
                // the relative order.
                if let Some(next) = self.queue.pop_front() {
                    self.start_service(t, next);
                }
                if self.geometry.owner(st.key) == Some(self.id) {
                    self.reply(t, st.query, LookupStatus::Found, self.id, st.hops)?;
                } else {
                    self.forward(t, st)?;
                }
                Ok(None)
            }
            TimerKind::AdaptTick => self.adapt(t).map(Some),
        }
    }

    fn reply(
        &mut self,
        t: &mut dyn Transport,
        query: u64,
        status: LookupStatus,
        owner: u64,
        hops: u32,
    ) -> Result<(), NodeError> {
        t.send(
            CLIENT_ADDR,
            &encode(&Message::LookupReply {
                query,
                status,
                owner,
                hops,
            }),
        )?;
        Ok(())
    }

    fn probe(&mut self, t: &mut dyn Transport, peer: u64, token: u64) -> Result<Probe, NodeError> {
        match t.request(peer, &encode(&Message::ProbeLoad { token })) {
            Ok(bytes) => match decode(&bytes)? {
                Message::LoadReport { load, capacity, .. } => Ok(Probe::Report(load, capacity)),
                other => Err(NodeError::Protocol(format!(
                    "probe reply carried unexpected message {other:?}"
                ))),
            },
            Err(TransportError::UnknownPeer(_)) => Ok(Probe::Unknown),
            Err(TransportError::Partitioned { .. }) => Ok(Probe::Unreachable),
            Err(e) => Err(e.into()),
        }
    }

    /// The simulator's `forward`, as wire exchanges: hop-limit check,
    /// owner resolution on the geometry replica, candidate discovery
    /// from the local table, per-candidate load probes, then
    /// `choose_next_b` on the private decide stream.
    fn forward(&mut self, t: &mut dyn Transport, mut st: LookupState) -> Result<(), NodeError> {
        if st.hops >= self.max_hops {
            return self.reply(t, st.query, LookupStatus::Dropped, 0, st.hops);
        }
        let Some(owner) = self.geometry.owner(st.key) else {
            return self.reply(t, st.query, LookupStatus::Failed, 0, st.hops);
        };
        let hc =
            self.geometry
                .hop_candidates(self.id, owner, &mut self.table, &mut st.numeric_mode);
        let mut cands: Vec<Candidate<u64>> = Vec::with_capacity(hc.ids.len());
        for &c in &hc.ids {
            let (load, capacity) = match self.probe(t, c, st.query)? {
                Probe::Report(load, capacity) => (load as f64, capacity as f64),
                Probe::Unknown => (0.0, 1.0),
                Probe::Unreachable => continue,
            };
            cands.push(Candidate {
                id: c,
                load,
                capacity,
                logical_distance: self.geometry.metric(c, owner),
                physical_distance: 0.0,
            });
        }
        let policy = match self.protocol {
            MiniProtocol::Classic => ForwardPolicy::Deterministic,
            MiniProtocol::ElasticErt => ForwardPolicy::TwoChoice {
                topology_aware: true,
                use_memory: true,
            },
        };
        let memory = self.table.memory(hc.slot);
        let Some(choice) = choose_next_b(
            policy,
            &cands,
            memory,
            &st.avoid,
            self.ert.gamma_l,
            self.ert.probe_width,
            &mut self.decide,
        ) else {
            // Every candidate was partition-hidden: terminal failure
            // rather than the simulator's panic (the sim never gets
            // here because its candidate list is never emptied).
            return self.reply(t, st.query, LookupStatus::Failed, 0, st.hops);
        };
        for o in &choice.newly_overloaded {
            st.avoid.insert(*o);
        }
        if let Some(mem) = choice.new_memory {
            if policy != ForwardPolicy::Deterministic {
                self.table.set_memory(hc.slot, mem);
            }
        }
        st.hops += 1;
        let frame = encode(&Message::Lookup {
            query: st.query,
            key: st.key,
            hops: st.hops,
            attempts: st.attempts,
            flags: u8::from(st.numeric_mode),
            avoid: st.avoid.iter().copied().collect(),
        });
        t.send(choice.next, &frame)?;
        Ok(())
    }

    /// One adaptation round for this node: the simulator's per-node
    /// `on_adapt` body with the victim/candidate operations issued as
    /// `AdaptIndegree` RPCs.
    fn adapt(&mut self, t: &mut dyn Transport) -> Result<AdaptTrace, NodeError> {
        let load = self.period_load as f64;
        let capacity = self.capacity_eval as f64;
        let mut delta: i64 = 0;
        match adaptation_action(load, capacity, &self.ert) {
            AdaptAction::Keep => {}
            AdaptAction::Shed(x) => {
                let x = x.min(self.table.indegree() as u32);
                delta = -(x as i64);
                let victims: Vec<u64> = self
                    .table
                    .backward_fingers()
                    .iter()
                    .rev()
                    .take(x as usize)
                    .copied()
                    .collect();
                for v in victims {
                    match t.request(
                        v,
                        &encode(&Message::AdaptIndegree {
                            from: self.id,
                            slot: 0,
                            op: AdaptOp::DropOutlinks,
                        }),
                    ) {
                        Ok(_)
                        | Err(
                            TransportError::UnknownPeer(_) | TransportError::Partitioned { .. },
                        ) => {}
                        Err(e) => return Err(e.into()),
                    }
                    self.table.remove_backward(v);
                }
                self.d_max = self.d_max.saturating_sub(x).max(1);
            }
            AdaptAction::Grow(x) => {
                delta = x as i64;
                let cap = 8 * self.capacity_eval.max(8);
                self.d_max = (self.d_max + x).min(cap);
                let target = (self.table.indegree() as u32 + x).min(self.d_max);
                self.expand_indegree(t, target)?;
            }
        }
        self.period_load = 0;
        let trace = AdaptTrace {
            round: self.adapt_round,
            node: self.id,
            delta,
            d_max: self.d_max,
        };
        self.adapt_round += 1;
        Ok(trace)
    }
}
