//! Hand-rolled wire codec for the ERT node protocol.
//!
//! Every frame is `[magic "ER"][version u8][tag u8][len u32 BE][payload]`
//! with all multi-byte integers big-endian and vectors encoded as a
//! `u32` count followed by the items. The codec is deliberately
//! dependency-free and fully deterministic: the same [`Message`] always
//! encodes to the same bytes, so byte-identity assertions on captured
//! wire traffic are meaningful.
//!
//! The decoder is total: every malformed input — truncation, bad magic,
//! unknown tags, length mismatches, oversized counts, out-of-range enum
//! discriminants, trailing bytes — is rejected with a typed
//! [`CodecError`]. This file is wired into `ert-lint`'s D4/D9 panic-path
//! roots, so no panicking construct may appear here outside tests.

use std::fmt;

/// Two-byte frame magic.
pub const MAGIC: [u8; 2] = *b"ER";
/// Current protocol version carried in every frame header.
pub const VERSION: u8 = 1;
/// Fixed header length: magic (2) + version (1) + tag (1) + len (4).
pub const HEADER_LEN: usize = 8;
/// Upper bound on the declared payload length of a single frame.
pub const MAX_FRAME: usize = 1 << 20;
/// Upper bound on any encoded vector count (ids per message).
pub const MAX_COUNT: u32 = 1 << 16;

/// Terminal status of a lookup, carried on [`Message::LookupReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupStatus {
    /// The lookup reached the key's owner.
    Found,
    /// The lookup exhausted its hop budget and was dropped.
    Dropped,
    /// The lookup could not make progress (no owner or no candidates).
    Failed,
}

/// Indegree-adaptation sub-operation carried on [`Message::AdaptIndegree`].
///
/// Replies reuse [`Message::LoadReport`]: `QueryOutlink` answers with
/// `load` set to 0/1 for absent/present, the mutating ops answer with
/// the responder's post-op state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptOp {
    /// Does the receiver already hold an outlink to the sender at `slot`?
    QueryOutlink,
    /// Add an outlink from the receiver to the sender at `slot`.
    AddOutlink,
    /// Remove every outlink from the receiver to the sender (shed).
    DropOutlinks,
    /// Record the sender as a backward finger of the receiver.
    AddBackward,
}

/// A wire message. See DESIGN.md "Wire Protocol & Live Node" for the
/// taxonomy and which transport lane (lossy datagram vs reliable RPC)
/// each message rides on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Node `id` joins, advertising its current membership view.
    Join {
        /// Joining node's ring identifier.
        id: u64,
        /// The joiner's membership view (sorted ring ids).
        members: Vec<u64>,
    },
    /// Periodic anti-entropy exchange of membership views.
    Stabilize {
        /// Monotone stabilize round counter of the sender.
        round: u32,
        /// The sender's membership view (sorted ring ids).
        members: Vec<u64>,
    },
    /// A lookup in flight, forwarded hop by hop.
    Lookup {
        /// Platform-unique query identifier.
        query: u64,
        /// Target key on the ring.
        key: u64,
        /// Hops taken so far.
        hops: u32,
        /// Client retry attempt (0 for the first send).
        attempts: u32,
        /// Bit 0: numeric-mode fallback engaged (geometry exhausted).
        flags: u8,
        /// Overloaded nodes to route around (sorted).
        avoid: Vec<u64>,
    },
    /// Terminal answer for a lookup, sent to the issuing client.
    LookupReply {
        /// Query identifier this reply resolves.
        query: u64,
        /// Terminal status.
        status: LookupStatus,
        /// Owner that served the key (0 unless `Found`).
        owner: u64,
        /// Total hops taken.
        hops: u32,
    },
    /// Load probe issued while choosing among next-hop candidates.
    ProbeLoad {
        /// Correlates the probe with its [`Message::LoadReport`].
        token: u64,
    },
    /// Reply to [`Message::ProbeLoad`] and to [`Message::AdaptIndegree`].
    LoadReport {
        /// Token of the probe being answered.
        token: u64,
        /// Instantaneous queue + in-service load.
        load: u64,
        /// Evaluated capacity (units of service slots).
        capacity: u64,
        /// Current indegree (backward-finger count).
        indegree: u32,
        /// Spare indegree: `d_max - indegree` (may be negative).
        spare: i64,
    },
    /// One step of the indegree-adaptation protocol (Algorithm 3).
    AdaptIndegree {
        /// Ring id of the adapting node issuing the op.
        from: u64,
        /// Slot the op applies to (`u16::MAX` = successor slot).
        slot: u16,
        /// The sub-operation.
        op: AdaptOp,
    },
    /// Node `id` announces a graceful departure.
    Leave {
        /// Departing node's ring identifier.
        id: u64,
    },
}

const TAG_JOIN: u8 = 1;
const TAG_STABILIZE: u8 = 2;
const TAG_LOOKUP: u8 = 3;
const TAG_LOOKUP_REPLY: u8 = 4;
const TAG_PROBE_LOAD: u8 = 5;
const TAG_LOAD_REPORT: u8 = 6;
const TAG_ADAPT_INDEGREE: u8 = 7;
const TAG_LEAVE: u8 = 8;

/// Typed decode failure. Every malformed frame maps onto exactly one of
/// these; the decoder never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the declared structure was complete.
    Truncated,
    /// First two bytes were not [`MAGIC`].
    BadMagic,
    /// Header carried an unsupported protocol version.
    BadVersion(u8),
    /// Header carried a tag outside the known message set.
    UnknownTag(u8),
    /// Declared payload length exceeds [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// Declared payload length disagrees with the bytes present.
    LengthMismatch {
        /// Length the header declared.
        declared: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// A vector count exceeded [`MAX_COUNT`].
    CountTooLarge(u32),
    /// An enum field carried an out-of-range discriminant.
    BadEnum {
        /// Which field rejected the discriminant.
        field: &'static str,
        /// The rejected raw value.
        value: u8,
    },
    /// Payload bytes remained after the message was fully decoded.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            CodecError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::FrameTooLarge(n) => write!(f, "declared payload length {n} exceeds cap"),
            CodecError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "declared payload length {declared} but {actual} bytes present"
                )
            }
            CodecError::CountTooLarge(n) => write!(f, "vector count {n} exceeds cap"),
            CodecError::BadEnum { field, value } => {
                write!(f, "out-of-range discriminant {value} for {field}")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bounds-checked big-endian reader over a borrowed frame.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        let bytes = self.take(1)?;
        bytes.first().copied().ok_or(CodecError::Truncated)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let bytes = self.take(2)?;
        let mut raw = [0u8; 2];
        raw.copy_from_slice(bytes);
        Ok(u16::from_be_bytes(raw))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(bytes);
        Ok(u32::from_be_bytes(raw))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let bytes = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(u64::from_be_bytes(raw))
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    fn ids(&mut self) -> Result<Vec<u64>, CodecError> {
        let count = self.u32()?;
        if count > MAX_COUNT {
            return Err(CodecError::CountTooLarge(count));
        }
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            out.push(self.u64()?);
        }
        Ok(out)
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_ids(out: &mut Vec<u8>, ids: &[u64]) {
    // Counts are bounded by MAX_COUNT at decode; encoders never build
    // vectors anywhere near the cap (cluster sizes are tiny), so the
    // saturating cast can only be observed by a hostile caller and then
    // simply produces a frame the peer rejects.
    let count = u32::try_from(ids.len()).unwrap_or(u32::MAX);
    put_u32(out, count);
    for id in ids {
        put_u64(out, *id);
    }
}

fn status_byte(status: LookupStatus) -> u8 {
    match status {
        LookupStatus::Found => 0,
        LookupStatus::Dropped => 1,
        LookupStatus::Failed => 2,
    }
}

fn status_from(value: u8) -> Result<LookupStatus, CodecError> {
    match value {
        0 => Ok(LookupStatus::Found),
        1 => Ok(LookupStatus::Dropped),
        2 => Ok(LookupStatus::Failed),
        _ => Err(CodecError::BadEnum {
            field: "LookupStatus",
            value,
        }),
    }
}

fn op_byte(op: AdaptOp) -> u8 {
    match op {
        AdaptOp::QueryOutlink => 0,
        AdaptOp::AddOutlink => 1,
        AdaptOp::DropOutlinks => 2,
        AdaptOp::AddBackward => 3,
    }
}

fn op_from(value: u8) -> Result<AdaptOp, CodecError> {
    match value {
        0 => Ok(AdaptOp::QueryOutlink),
        1 => Ok(AdaptOp::AddOutlink),
        2 => Ok(AdaptOp::DropOutlinks),
        3 => Ok(AdaptOp::AddBackward),
        _ => Err(CodecError::BadEnum {
            field: "AdaptOp",
            value,
        }),
    }
}

fn tag_of(msg: &Message) -> u8 {
    match msg {
        Message::Join { .. } => TAG_JOIN,
        Message::Stabilize { .. } => TAG_STABILIZE,
        Message::Lookup { .. } => TAG_LOOKUP,
        Message::LookupReply { .. } => TAG_LOOKUP_REPLY,
        Message::ProbeLoad { .. } => TAG_PROBE_LOAD,
        Message::LoadReport { .. } => TAG_LOAD_REPORT,
        Message::AdaptIndegree { .. } => TAG_ADAPT_INDEGREE,
        Message::Leave { .. } => TAG_LEAVE,
    }
}

/// Encodes a message into a complete frame (header + payload).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 32);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(tag_of(msg));
    put_u32(&mut out, 0); // length backpatched below
    match msg {
        Message::Join { id, members } => {
            put_u64(&mut out, *id);
            put_ids(&mut out, members);
        }
        Message::Stabilize { round, members } => {
            put_u32(&mut out, *round);
            put_ids(&mut out, members);
        }
        Message::Lookup {
            query,
            key,
            hops,
            attempts,
            flags,
            avoid,
        } => {
            put_u64(&mut out, *query);
            put_u64(&mut out, *key);
            put_u32(&mut out, *hops);
            put_u32(&mut out, *attempts);
            out.push(*flags);
            put_ids(&mut out, avoid);
        }
        Message::LookupReply {
            query,
            status,
            owner,
            hops,
        } => {
            put_u64(&mut out, *query);
            out.push(status_byte(*status));
            put_u64(&mut out, *owner);
            put_u32(&mut out, *hops);
        }
        Message::ProbeLoad { token } => {
            put_u64(&mut out, *token);
        }
        Message::LoadReport {
            token,
            load,
            capacity,
            indegree,
            spare,
        } => {
            put_u64(&mut out, *token);
            put_u64(&mut out, *load);
            put_u64(&mut out, *capacity);
            put_u32(&mut out, *indegree);
            put_u64(&mut out, *spare as u64);
        }
        Message::AdaptIndegree { from, slot, op } => {
            put_u64(&mut out, *from);
            put_u16(&mut out, *slot);
            out.push(op_byte(*op));
        }
        Message::Leave { id } => {
            put_u64(&mut out, *id);
        }
    }
    let payload_len = out.len().saturating_sub(HEADER_LEN);
    let len_bytes = (payload_len as u32).to_be_bytes();
    if let Some(slot) = out.get_mut(4..8) {
        slot.copy_from_slice(&len_bytes);
    }
    out
}

/// Decodes one complete frame. Rejects every malformed input with a
/// typed [`CodecError`]; never panics.
pub fn decode(frame: &[u8]) -> Result<Message, CodecError> {
    let mut r = Reader::new(frame);
    let magic = r.take(2)?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let tag = r.u8()?;
    let declared = r.u32()? as usize;
    if declared > MAX_FRAME {
        return Err(CodecError::FrameTooLarge(declared));
    }
    let actual = frame.len().saturating_sub(HEADER_LEN);
    if declared != actual {
        return Err(CodecError::LengthMismatch { declared, actual });
    }
    let msg = match tag {
        TAG_JOIN => Message::Join {
            id: r.u64()?,
            members: r.ids()?,
        },
        TAG_STABILIZE => Message::Stabilize {
            round: r.u32()?,
            members: r.ids()?,
        },
        TAG_LOOKUP => Message::Lookup {
            query: r.u64()?,
            key: r.u64()?,
            hops: r.u32()?,
            attempts: r.u32()?,
            flags: r.u8()?,
            avoid: r.ids()?,
        },
        TAG_LOOKUP_REPLY => Message::LookupReply {
            query: r.u64()?,
            status: status_from(r.u8()?)?,
            owner: r.u64()?,
            hops: r.u32()?,
        },
        TAG_PROBE_LOAD => Message::ProbeLoad { token: r.u64()? },
        TAG_LOAD_REPORT => Message::LoadReport {
            token: r.u64()?,
            load: r.u64()?,
            capacity: r.u64()?,
            indegree: r.u32()?,
            spare: r.i64()?,
        },
        TAG_ADAPT_INDEGREE => Message::AdaptIndegree {
            from: r.u64()?,
            slot: r.u16()?,
            op: op_from(r.u8()?)?,
        },
        TAG_LEAVE => Message::Leave { id: r.u64()? },
        other => return Err(CodecError::UnknownTag(other)),
    };
    if r.pos != frame.len() {
        return Err(CodecError::TrailingBytes(frame.len().saturating_sub(r.pos)));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_variant() {
        let msgs = vec![
            Message::Join {
                id: 7,
                members: vec![1, 2, 3],
            },
            Message::Stabilize {
                round: 9,
                members: vec![],
            },
            Message::Lookup {
                query: 1,
                key: 99,
                hops: 3,
                attempts: 1,
                flags: 1,
                avoid: vec![4, 8],
            },
            Message::LookupReply {
                query: 1,
                status: LookupStatus::Found,
                owner: 99,
                hops: 4,
            },
            Message::ProbeLoad { token: 12 },
            Message::LoadReport {
                token: 12,
                load: 3,
                capacity: 8,
                indegree: 5,
                spare: -2,
            },
            Message::AdaptIndegree {
                from: 7,
                slot: u16::MAX,
                op: AdaptOp::AddBackward,
            },
            Message::Leave { id: 7 },
        ];
        for msg in msgs {
            let frame = encode(&msg);
            assert_eq!(decode(&frame).unwrap(), msg);
        }
    }

    #[test]
    fn rejects_bad_magic_version_tag() {
        let mut frame = encode(&Message::Leave { id: 1 });
        frame[0] = b'X';
        assert_eq!(decode(&frame), Err(CodecError::BadMagic));
        let mut frame = encode(&Message::Leave { id: 1 });
        frame[2] = 9;
        assert_eq!(decode(&frame), Err(CodecError::BadVersion(9)));
        let mut frame = encode(&Message::Leave { id: 1 });
        frame[3] = 0;
        assert_eq!(decode(&frame), Err(CodecError::UnknownTag(0)));
    }

    #[test]
    fn rejects_length_mismatch_and_trailing() {
        let mut frame = encode(&Message::ProbeLoad { token: 5 });
        frame.push(0);
        assert!(matches!(
            decode(&frame),
            Err(CodecError::LengthMismatch { .. })
        ));
        // Declared length padded to include junk the message does not use.
        let mut frame = encode(&Message::ProbeLoad { token: 5 });
        frame.push(0xAB);
        let declared = (frame.len() - HEADER_LEN) as u32;
        frame[4..8].copy_from_slice(&declared.to_be_bytes());
        assert_eq!(decode(&frame), Err(CodecError::TrailingBytes(1)));
    }
}
