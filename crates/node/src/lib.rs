//! `ert-node` — a live wire-protocol node for the elastic routing
//! table, with the deterministic simulator as its differential oracle.
//!
//! The crate promotes the `ert-minidht` platform model to a node that
//! speaks a versioned, length-prefixed frame protocol ([`codec`]) over
//! a pluggable [`Transport`]: join, stabilize, lookup forwarding,
//! load probing, and indegree adaptation all run as real wire
//! exchanges between peers instead of method calls on one struct.
//!
//! Two transports implement the trait:
//!
//! * [`WireCluster`] — a deterministic in-memory switch keyed on
//!   `(time, seq)` with `ert-faults` loss/partition hooks. This is the
//!   test harness and the half of the differential oracle that runs
//!   live nodes; `ert-testkit`'s `diff::wire` module drives it against
//!   `MiniDht` and asserts identical hop-by-hop routing decisions and
//!   indegree-adaptation sequences.
//! * a UDP event loop (feature `udp`, module [`udp`]) behind the
//!   `ert-node` binary, for running a real process-per-node cluster.
//!
//! Determinism rules inherited from the workspace: no wall clock in
//! library code (the binary driver feeds elapsed time in), no
//! `HashMap`/`HashSet` (iteration-order hazards), and the codec never
//! panics on untrusted bytes — malformed input is a typed
//! [`CodecError`], enforced by `ert-lint`'s panic-path rule and the
//! bit-flip fuzz suite in `tests/codec_props.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod codec;
pub mod node;
pub mod transport;
#[cfg(feature = "udp")]
pub mod udp;

pub use cluster::{WireCluster, WireReport};
pub use codec::{decode, encode, AdaptOp, CodecError, LookupStatus, Message};
pub use node::{NodeError, WireNode};
pub use transport::{TimerKind, Transport, TransportError, CLIENT_ADDR};
