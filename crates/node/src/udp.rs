//! Real UDP transport for the `ert-node` binary (feature `udp`).
//!
//! Determinism discipline even here: this module never reads the wall
//! clock. The binary driver measures elapsed real time (it is a
//! binary, so `Instant` is legitimate there) and feeds it in through
//! [`UdpTransport::advance`]; everything in this file is a pure
//! function of that injected clock plus socket I/O. That keeps the
//! node logic identical between the deterministic in-memory switch and
//! a real network — only the driver differs.
//!
//! RPC semantics over UDP are demo-grade by design: a request blocks
//! on the socket's read timeout for the first frame from the target
//! peer's address, and unrelated frames that arrive in the meantime
//! are parked in an inbox for the event loop to drain. Good enough to
//! run a real process-per-node cluster; the provable-accounting runs
//! stay on the in-memory switch.

use std::collections::VecDeque;
use std::net::{SocketAddr, UdpSocket};

use ert_sim::{SimDuration, SimTime};

use crate::transport::{TimerKind, Transport, TransportError, CLIENT_ADDR};

/// Maximum datagram we ever expect (well above any frame the codec
/// emits for practical cluster sizes).
const RECV_BUF: usize = 64 * 1024;

/// A peer in the static address book.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Peer {
    /// Ring id.
    pub id: u64,
    /// Socket address.
    pub addr: SocketAddr,
}

/// UDP-backed [`Transport`]: one socket, a static `id → addr` book, a
/// driver-fed clock, and a timer wheel the driver polls.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    /// Sorted by id for binary search (no `HashMap` by workspace rule).
    peers: Vec<Peer>,
    now: SimTime,
    /// Pending timers as `(due, kind)`, kept sorted on insert.
    timers: Vec<(SimTime, TimerKind)>,
    /// Frames that arrived while an RPC was waiting for its reply.
    inbox: VecDeque<(SocketAddr, Vec<u8>)>,
}

impl UdpTransport {
    /// Wraps a bound socket and a peer book (sorted internally).
    ///
    /// # Errors
    ///
    /// Fails when the peer book contains duplicate ids or the socket
    /// refuses the non-blocking/read-timeout configuration.
    pub fn new(socket: UdpSocket, mut peers: Vec<Peer>) -> Result<Self, TransportError> {
        peers.sort_by_key(|p| p.id);
        if peers.windows(2).any(|w| w[0].id == w[1].id) {
            return Err(TransportError::Io(
                "duplicate peer id in address book".into(),
            ));
        }
        socket
            .set_read_timeout(Some(std::time::Duration::from_millis(250)))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(UdpTransport {
            socket,
            peers,
            now: SimTime::ZERO,
            timers: Vec::new(),
            inbox: VecDeque::new(),
        })
    }

    fn addr_of(&self, id: u64) -> Option<SocketAddr> {
        self.peers
            .binary_search_by_key(&id, |p| p.id)
            .ok()
            .map(|i| self.peers[i].addr)
    }

    /// Driver hook: sets the transport clock to the driver's measured
    /// elapsed time.
    pub fn advance(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Driver hook: pops every timer due at or before the current
    /// clock, in `(due, insertion)` order.
    pub fn due_timers(&mut self) -> Vec<TimerKind> {
        let mut due = Vec::new();
        let now = self.now;
        self.timers.retain(|&(at, kind)| {
            if at <= now {
                due.push(kind);
                false
            } else {
                true
            }
        });
        due
    }

    /// Earliest pending timer deadline, if any (drives the driver's
    /// sleep budget).
    #[must_use]
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.timers.first().map(|&(at, _)| at)
    }

    /// Driver hook: answers an incoming RPC request by sending `reply`
    /// straight back to the requester's socket address.
    ///
    /// # Errors
    ///
    /// Propagates socket send failures.
    pub fn reply_to(&self, addr: SocketAddr, reply: &[u8]) -> Result<(), TransportError> {
        self.socket
            .send_to(reply, addr)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(())
    }

    /// Driver hook: one frame from the network, either parked inbox
    /// traffic or a fresh datagram. `None` on timeout.
    pub fn poll_frame(&mut self) -> Option<(SocketAddr, Vec<u8>)> {
        if let Some(parked) = self.inbox.pop_front() {
            return Some(parked);
        }
        let mut buf = [0u8; RECV_BUF];
        match self.socket.recv_from(&mut buf) {
            Ok((len, from)) => Some((from, buf[..len].to_vec())),
            Err(_) => None,
        }
    }
}

impl Transport for UdpTransport {
    fn now(&self) -> SimTime {
        self.now
    }

    fn send(&mut self, to: u64, frame: &[u8]) -> Result<(), TransportError> {
        if to == CLIENT_ADDR {
            // The binary driver is its own client; replies to it are
            // parked locally instead of crossing the network.
            let self_addr = self
                .socket
                .local_addr()
                .map_err(|e| TransportError::Io(e.to_string()))?;
            self.inbox.push_back((self_addr, frame.to_vec()));
            return Ok(());
        }
        let addr = self.addr_of(to).ok_or(TransportError::UnknownPeer(to))?;
        self.socket
            .send_to(frame, addr)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(())
    }

    fn request(&mut self, to: u64, frame: &[u8]) -> Result<Vec<u8>, TransportError> {
        let addr = self.addr_of(to).ok_or(TransportError::UnknownPeer(to))?;
        self.socket
            .send_to(frame, addr)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let mut buf = [0u8; RECV_BUF];
        // Bounded wait: a few read-timeout windows, parking unrelated
        // traffic; then the peer counts as unreachable.
        for _ in 0..4 {
            match self.socket.recv_from(&mut buf) {
                Ok((len, from)) if from == addr => return Ok(buf[..len].to_vec()),
                Ok((len, from)) => self.inbox.push_back((from, buf[..len].to_vec())),
                Err(_) => {}
            }
        }
        Err(TransportError::Io(format!("request to {to} timed out")))
    }

    fn timer(&mut self, delay: SimDuration, kind: TimerKind) {
        let at = self.now + delay;
        let pos = self.timers.partition_point(|&(t, _)| t <= at);
        self.timers.insert(pos, (at, kind));
    }
}
