//! Deterministic in-memory cluster: the test-side [`Transport`] plus
//! the lookup-issuing client.
//!
//! A [`WireCluster`] owns one [`WireNode`] per member and a single
//! `(time, seq)`-ordered event heap — the same merge key the sharded
//! simulator core uses — over four entry kinds: client injections,
//! in-flight frames, node timers, and client retries. Sequence numbers
//! are allocated when work is emitted, so equal-timestamp events run in
//! emission order exactly like the simulator's FIFO-stable engine; the
//! correspondence argument lives in DESIGN.md "Wire Protocol & Live
//! Node".
//!
//! Faults ride on `ert-faults` plans through [`LinkFaults`]: datagram
//! sends roll probabilistic loss and hard partitions, the RPC lane
//! fails only across partitions. An empty plan consumes zero random
//! draws, so fault-free runs are byte-identical to runs with no fault
//! machinery at all — `transport_faults.rs` pins that, along with
//! byte-identity across node-spawn orders.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use ert_core::{max_indegree, normalize_capacities};
use ert_faults::{Delivery, FaultPlan, LinkFaults, RetryPolicy};
use ert_minidht::{CompletionTrace, HopTrace, MiniDhtConfig, MiniProtocol, RouteTrace};
use ert_sim::stats::{Samples, Summary};
use ert_sim::{SimDuration, SimRng, SimTime};

use crate::codec::{decode, encode, LookupStatus, Message};
use crate::node::WireNode;
use crate::transport::{TimerKind, Transport, TransportError, CLIENT_ADDR};

#[derive(Debug)]
enum Work {
    /// Client injects query `query` for `key` at its scheduled time.
    Inject { query: u64, key: u64 },
    /// A frame in flight on the datagram lane.
    Frame { to: u64, bytes: Vec<u8> },
    /// A timer callback owed to node `node`.
    Timer { node: usize, kind: TimerKind },
    /// Client retry check for query `query`.
    Retry { query: u64 },
}

#[derive(Debug)]
struct Entry {
    at: SimTime,
    seq: u64,
    work: Work,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The switch-side view handed to a node while one of its handlers
/// runs. Borrows the cluster's internals disjointly; the running node
/// itself is taken out of `nodes`, so a reentrant RPC to self would
/// surface as `UnknownPeer` instead of aliasing.
struct SwitchCtx<'a> {
    me: usize,
    me_id: u64,
    now: SimTime,
    heap: &'a mut BinaryHeap<Reverse<Entry>>,
    seq: &'a mut u64,
    faults: &'a mut LinkFaults,
    nodes: &'a mut Vec<Option<WireNode>>,
    ids: &'a [u64],
    trace: &'a mut Option<RouteTrace>,
    probe_rpcs: &'a mut u64,
    adapt_rpcs: &'a mut u64,
}

impl SwitchCtx<'_> {
    fn push(&mut self, at: SimTime, work: Work) {
        let seq = *self.seq;
        *self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, work }));
    }
}

impl Transport for SwitchCtx<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn send(&mut self, to: u64, frame: &[u8]) -> Result<(), TransportError> {
        // Decoding at the switch double-exercises the codec on every
        // wire crossing and gives the trace recorder typed access.
        let msg = decode(frame)?;
        if to == CLIENT_ADDR {
            // Replies can be lost too (the client must retry); the
            // client is co-located so partitions never sever it.
            match self.faults.deliver(self.now, self.me, self.me) {
                Delivery::Pass => self.push(
                    self.now,
                    Work::Frame {
                        to,
                        bytes: frame.to_vec(),
                    },
                ),
                Delivery::Dropped | Delivery::Partitioned => {}
            }
            return Ok(());
        }
        if let Message::Lookup { query, .. } = msg {
            // Recorded at the send — the same program point where the
            // simulator records its hop — and before the fault roll:
            // the routing *decision* is what the oracle compares.
            if let Some(tr) = self.trace.as_mut() {
                tr.hops.push(HopTrace {
                    query,
                    from: self.me_id,
                    to,
                });
            }
        }
        let Ok(to_idx) = self.ids.binary_search(&to) else {
            // Datagram to a peer outside the switch: vanishes, as on a
            // real network.
            return Ok(());
        };
        match self.faults.deliver(self.now, self.me, to_idx) {
            Delivery::Pass => self.push(
                self.now,
                Work::Frame {
                    to,
                    bytes: frame.to_vec(),
                },
            ),
            Delivery::Dropped | Delivery::Partitioned => {}
        }
        Ok(())
    }

    fn request(&mut self, to: u64, frame: &[u8]) -> Result<Vec<u8>, TransportError> {
        let Ok(to_idx) = self.ids.binary_search(&to) else {
            return Err(TransportError::UnknownPeer(to));
        };
        if !self.faults.reachable(self.now, self.me, to_idx) {
            return Err(TransportError::Partitioned {
                from: self.me_id,
                to,
            });
        }
        match decode(frame)? {
            Message::ProbeLoad { .. } => *self.probe_rpcs += 1,
            Message::AdaptIndegree { .. } => *self.adapt_rpcs += 1,
            _ => {}
        }
        let Some(mut target) = self.nodes[to_idx].take() else {
            return Err(TransportError::UnknownPeer(to));
        };
        let result = target.on_request(frame);
        self.nodes[to_idx] = Some(target);
        result.map_err(|e| TransportError::Peer(e.to_string()))
    }

    fn timer(&mut self, delay: SimDuration, kind: TimerKind) {
        let at = self.now + delay;
        let node = self.me;
        self.push(at, Work::Timer { node, kind });
    }
}

/// Digest of one wire-cluster run; integer fields plus the same digest
/// shapes `MiniReport` carries, so oracle comparisons are direct.
#[derive(Debug, Clone)]
pub struct WireReport {
    /// Platform + protocol name ("Chord", "Chord+ERT").
    pub protocol: String,
    /// Lookups answered `Found`.
    pub completed: u64,
    /// Lookups answered `Dropped`/`Failed` by a node.
    pub dropped: u64,
    /// Lookups the client abandoned after exhausting its retry budget.
    pub gave_up: u64,
    /// Lookups still unresolved when the event heap drained.
    pub unresolved: u64,
    /// Mean request path length in hops.
    pub mean_path_length: f64,
    /// Lookup time digest in seconds.
    pub lookup_time: Summary,
    /// 99th percentile over nodes of each node's maximum congestion.
    pub p99_max_congestion: f64,
    /// 99th percentile fair-share ratio.
    pub p99_share: f64,
    /// Heavy nodes encountered in routings.
    pub heavy_encounters: u64,
    /// `ProbeLoad` RPCs issued (control-message accounting).
    pub probe_rpcs: u64,
    /// `AdaptIndegree` RPCs issued (control-message accounting).
    pub adapt_rpcs: u64,
}

impl WireReport {
    /// Canonical rendering with float fields as exact bit patterns —
    /// equal strings mean bit-identical runs.
    pub fn canonical_string(&self) -> String {
        format!(
            "proto={};completed={};dropped={};gave_up={};unresolved={};hops={:016x};\
             lt_count={};lt_mean={:016x};lt_p99={:016x};p99g={:016x};p99s={:016x};\
             heavy={};probes={};adapt={}",
            self.protocol,
            self.completed,
            self.dropped,
            self.gave_up,
            self.unresolved,
            self.mean_path_length.to_bits(),
            self.lookup_time.count,
            self.lookup_time.mean.to_bits(),
            self.lookup_time.p99.to_bits(),
            self.p99_max_congestion.to_bits(),
            self.p99_share.to_bits(),
            self.heavy_encounters,
            self.probe_rpcs,
            self.adapt_rpcs,
        )
    }
}

/// A cluster of live in-memory-transport nodes plus the issuing client.
#[derive(Debug)]
pub struct WireCluster {
    cfg: MiniDhtConfig,
    protocol: MiniProtocol,
    ids: Vec<u64>,
    nodes: Vec<Option<WireNode>>,
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
    now: SimTime,
    faults: LinkFaults,
    retry: RetryPolicy,
    platform_rng: SimRng,
    trace: Option<RouteTrace>,
    started: Vec<SimTime>,
    resolved: Vec<bool>,
    attempts: Vec<u32>,
    sources: Vec<usize>,
    keys: Vec<u64>,
    pending: u64,
    lookup_times: Samples,
    path_lengths: Samples,
    completed: u64,
    dropped: u64,
    gave_up: u64,
    probe_rpcs: u64,
    adapt_rpcs: u64,
    adapt_seen: usize,
}

impl WireCluster {
    /// Builds the cluster and its routing tables over the wire.
    ///
    /// `members` must be sorted and distinct with `capacities` aligned
    /// to it — the same alignment `MiniDht::new` gets from its
    /// geometry. `spawn_order`, when given, permutes only the order in
    /// which node *structs* are instantiated; link construction always
    /// follows the platform build order (the seeded permutation the
    /// simulator draws), so spawn order can never change an outcome.
    ///
    /// # Errors
    ///
    /// Rejects unsorted/duplicate members, capacity-count mismatches,
    /// invalid ERT/retry/fault parameters, and wire build failures.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: MiniDhtConfig,
        bits: u8,
        members: &[u64],
        capacities: &[f64],
        protocol: MiniProtocol,
        plan: &FaultPlan,
        retry: RetryPolicy,
        spawn_order: Option<&[usize]>,
    ) -> Result<WireCluster, String> {
        let n = members.len();
        if n == 0 {
            return Err("cluster needs at least one member".into());
        }
        if capacities.len() != n {
            return Err(format!(
                "{n} members but {} capacities were given",
                capacities.len()
            ));
        }
        if !members.windows(2).all(|w| w[0] < w[1]) {
            return Err("members must be sorted and distinct".into());
        }
        cfg.ert.validate().map_err(|e| e.to_string())?;
        retry.validate()?;
        let faults = LinkFaults::new(plan)?;
        let norm = normalize_capacities(capacities);
        let mut nodes: Vec<Option<WireNode>> = (0..n).map(|_| None).collect();
        let spawn: Vec<usize> = match spawn_order {
            Some(order) => {
                let mut seen = vec![false; n];
                for &i in order {
                    if i >= n || seen[i] {
                        return Err("spawn_order must be a permutation of the node indices".into());
                    }
                    seen[i] = true;
                }
                if order.len() != n {
                    return Err("spawn_order must cover every node".into());
                }
                order.to_vec()
            }
            None => (0..n).collect(),
        };
        for &i in &spawn {
            let capacity_eval = max_indegree(cfg.ert.alpha, norm[i]);
            nodes[i] = Some(WireNode::new(
                members[i],
                bits,
                members,
                capacities[i],
                capacity_eval,
                &cfg,
                protocol,
            ));
        }
        let mut cluster = WireCluster {
            cfg,
            protocol,
            ids: members.to_vec(),
            nodes,
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            faults,
            retry,
            platform_rng: SimRng::seed_from(cfg.seed),
            trace: None,
            started: Vec::new(),
            resolved: Vec::new(),
            attempts: Vec::new(),
            sources: Vec::new(),
            keys: Vec::new(),
            pending: 0,
            lookup_times: Samples::new(),
            path_lengths: Samples::new(),
            completed: 0,
            dropped: 0,
            gave_up: 0,
            probe_rpcs: 0,
            adapt_rpcs: 0,
            adapt_seen: 0,
        };
        // The platform's seeded build permutation — identical draws to
        // MiniDht::new, so table construction interleaves identically.
        let order = cluster.platform_rng.sample_indices(n, n);
        for i in order {
            cluster
                .with_node(i, |node, ctx| node.build_links(ctx))?
                .map_err(|e| format!("build_links({i}): {e}"))?;
        }
        Ok(cluster)
    }

    /// Switches on decision tracing for the next run.
    pub fn enable_trace(&mut self) {
        self.trace = Some(RouteTrace::default());
    }

    /// Takes the recorded trace.
    pub fn take_trace(&mut self) -> Option<RouteTrace> {
        self.trace.take()
    }

    /// Per-node routing-state fingerprints in member order, formatted
    /// exactly like `MiniDht::table_fingerprints`.
    pub fn table_fingerprints(&self) -> Vec<String> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| match n {
                Some(node) => node.fingerprint(),
                None => format!("id={};departed", self.ids[i]),
            })
            .collect()
    }

    /// Elastic indegree of every live node (for bound checks).
    pub fn indegrees(&self) -> Vec<(u64, u32, u32)> {
        self.nodes
            .iter()
            .flatten()
            .map(|n| (n.id(), n.indegree(), n.d_max()))
            .collect()
    }

    fn with_node<R>(
        &mut self,
        idx: usize,
        f: impl FnOnce(&mut WireNode, &mut SwitchCtx) -> R,
    ) -> Result<R, String> {
        let Some(mut node) = self.nodes[idx].take() else {
            return Err(format!("node index {idx} is not live"));
        };
        let mut ctx = SwitchCtx {
            me: idx,
            me_id: node.id(),
            now: self.now,
            heap: &mut self.heap,
            seq: &mut self.seq,
            faults: &mut self.faults,
            nodes: &mut self.nodes,
            ids: &self.ids,
            trace: &mut self.trace,
            probe_rpcs: &mut self.probe_rpcs,
            adapt_rpcs: &mut self.adapt_rpcs,
        };
        let out = f(&mut node, &mut ctx);
        self.nodes[idx] = Some(node);
        Ok(out)
    }

    fn push(&mut self, at: SimTime, work: Work) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, work }));
    }

    /// Runs an explicit injection schedule of `(time, key)` pairs —
    /// the exact analogue of `MiniDht::run_schedule`.
    ///
    /// # Errors
    ///
    /// Propagates node protocol failures (impossible in fault-free
    /// runs; fault plans surface them as lost lookups instead).
    pub fn run_schedule(&mut self, schedule: &[(SimTime, u64)]) -> Result<WireReport, String> {
        let n = self.ids.len();
        let count = schedule.len();
        self.started = vec![SimTime::ZERO; count];
        self.resolved = vec![false; count];
        self.attempts = vec![0; count];
        self.sources = vec![0; count];
        self.keys = schedule.iter().map(|&(_, key)| key).collect();
        self.pending = count as u64;
        for (q, &(at, key)) in schedule.iter().enumerate() {
            self.push(
                at,
                Work::Inject {
                    query: q as u64,
                    key,
                },
            );
        }
        if self.protocol == MiniProtocol::ElasticErt {
            let at = self.now + self.cfg.ert.adaptation_period;
            for i in 0..n {
                self.push(
                    at,
                    Work::Timer {
                        node: i,
                        kind: TimerKind::AdaptTick,
                    },
                );
            }
        }
        while self.pending > 0 {
            let Some(Reverse(entry)) = self.heap.pop() else {
                break;
            };
            self.now = entry.at;
            match entry.work {
                Work::Inject { query, key } => self.on_inject(query, key)?,
                Work::Frame { to, bytes } => {
                    if to == CLIENT_ADDR {
                        self.on_client_frame(&bytes)?;
                    } else {
                        self.on_node_frame(to, &bytes)?;
                    }
                }
                Work::Timer { node, kind } => self.on_timer(node, kind)?,
                Work::Retry { query } => self.on_retry(query)?,
            }
        }
        Ok(self.report())
    }

    fn lookup_frame(&self, query: u64, key: u64, attempts: u32) -> Vec<u8> {
        encode(&Message::Lookup {
            query,
            key,
            hops: 0,
            attempts,
            flags: 0,
            avoid: Vec::new(),
        })
    }

    fn on_inject(&mut self, query: u64, key: u64) -> Result<(), String> {
        let n = self.ids.len();
        // Identical draw to the simulator's per-injection source pick.
        let source = self.platform_rng.fork("source").sample_indices(n, 1)[0];
        let q = query as usize;
        self.sources[q] = source;
        self.started[q] = self.now;
        let source_id = self.ids[source];
        if let Some(tr) = self.trace.as_mut() {
            tr.sources.push(source_id);
        }
        // The client hands the frame to its co-located source node
        // directly (no network crossing), mirroring the simulator's
        // synchronous inject→arrive call.
        let frame = self.lookup_frame(query, key, 0);
        self.with_node(source, |node, ctx| node.on_frame(ctx, &frame))?
            .map_err(|e| format!("inject {query}: {e}"))?;
        if self.retry.enabled() {
            let wait = self.retry.backoff(1);
            self.push(self.now + wait, Work::Retry { query });
        }
        Ok(())
    }

    fn on_node_frame(&mut self, to: u64, bytes: &[u8]) -> Result<(), String> {
        let Ok(idx) = self.ids.binary_search(&to) else {
            return Ok(());
        };
        if self.nodes[idx].is_none() {
            // Departed peer: the datagram vanishes.
            return Ok(());
        }
        self.with_node(idx, |node, ctx| node.on_frame(ctx, bytes))?
            .map_err(|e| format!("frame to {to}: {e}"))
    }

    fn on_client_frame(&mut self, bytes: &[u8]) -> Result<(), String> {
        let msg = decode(bytes).map_err(|e| e.to_string())?;
        let Message::LookupReply {
            query,
            status,
            owner: _,
            hops,
        } = msg
        else {
            return Err(format!("client received a non-reply frame: {msg:?}"));
        };
        let q = query as usize;
        if q >= self.resolved.len() || self.resolved[q] {
            // Duplicate terminal answer (a retry raced a slow reply).
            return Ok(());
        }
        self.resolved[q] = true;
        self.pending -= 1;
        match status {
            LookupStatus::Found => {
                self.completed += 1;
                self.lookup_times
                    .push((self.now - self.started[q]).as_secs_f64());
                self.path_lengths.push(f64::from(hops));
                if let Some(tr) = self.trace.as_mut() {
                    tr.completions.push(CompletionTrace {
                        query,
                        hops,
                        at_micros: self.now.as_micros(),
                    });
                }
            }
            LookupStatus::Dropped | LookupStatus::Failed => {
                if self.retry.enabled() {
                    // A failure reply is not terminal for a retrying
                    // client: leave the query unresolved and let the
                    // already-scheduled retry timer resend it (or give
                    // up when the attempt budget runs out).
                    self.resolved[q] = false;
                    self.pending += 1;
                    return Ok(());
                }
                self.dropped += 1;
                if let Some(tr) = self.trace.as_mut() {
                    tr.drops.push(query);
                }
            }
        }
        Ok(())
    }

    fn on_timer(&mut self, idx: usize, kind: TimerKind) -> Result<(), String> {
        let is_adapt = matches!(kind, TimerKind::AdaptTick);
        if self.nodes[idx].is_some() {
            let outcome = self
                .with_node(idx, |node, ctx| node.on_timer(ctx, kind))?
                .map_err(|e| format!("timer on node {idx}: {e}"))?;
            if let Some(adapt) = outcome {
                if let Some(tr) = self.trace.as_mut() {
                    tr.adapts.push(adapt);
                }
            }
        }
        if is_adapt {
            self.adapt_seen += 1;
            if self.adapt_seen == self.ids.len() {
                // Round complete: reschedule iff work remains — the
                // simulator's `injections_left > 0 || outstanding > 0`
                // is exactly "some query is still unresolved".
                self.adapt_seen = 0;
                if self.pending > 0 {
                    let at = self.now + self.cfg.ert.adaptation_period;
                    for i in 0..self.ids.len() {
                        self.push(
                            at,
                            Work::Timer {
                                node: i,
                                kind: TimerKind::AdaptTick,
                            },
                        );
                    }
                }
            }
        }
        Ok(())
    }

    fn on_retry(&mut self, query: u64) -> Result<(), String> {
        let q = query as usize;
        if self.resolved[q] {
            return Ok(());
        }
        if self.attempts[q] + 1 >= self.retry.max_attempts {
            self.resolved[q] = true;
            self.pending -= 1;
            self.gave_up += 1;
            return Ok(());
        }
        self.attempts[q] += 1;
        let attempt = self.attempts[q];
        let frame = self.lookup_frame(query, self.keys[q], attempt);
        let source = self.sources[q];
        if self.nodes[source].is_some() {
            self.with_node(source, |node, ctx| node.on_frame(ctx, &frame))?
                .map_err(|e| format!("retry {query}: {e}"))?;
        }
        let wait = self.retry.backoff(attempt + 1);
        self.push(self.now + wait, Work::Retry { query });
        Ok(())
    }

    fn report(&mut self) -> WireReport {
        let live: Vec<&WireNode> = self.nodes.iter().flatten().collect();
        let max_g: Samples = live.iter().map(|n| n.max_congestion).collect();
        let total_load: f64 = live.iter().map(|n| n.total_received as f64).sum();
        let total_cap: f64 = live.iter().map(|n| n.raw_capacity).sum();
        let mut shares = Samples::new();
        if total_load > 0.0 {
            for n in &live {
                shares.push((n.total_received as f64 / total_load) / (n.raw_capacity / total_cap));
            }
        }
        let heavy_encounters: u64 = live.iter().map(|n| n.heavy_encounters).sum();
        let suffix = match self.protocol {
            MiniProtocol::Classic => "",
            MiniProtocol::ElasticErt => "+ERT",
        };
        WireReport {
            protocol: format!("Chord{suffix}"),
            completed: self.completed,
            dropped: self.dropped,
            gave_up: self.gave_up,
            unresolved: self.pending,
            mean_path_length: self.path_lengths.mean(),
            lookup_time: self.lookup_times.summary(),
            p99_max_congestion: max_g.percentile(0.99),
            p99_share: shares.percentile(0.99),
            heavy_encounters,
            probe_rpcs: self.probe_rpcs,
            adapt_rpcs: self.adapt_rpcs,
        }
    }
}
