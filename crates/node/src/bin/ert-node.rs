//! `ert-node` — run one live wire-protocol node over real UDP.
//!
//! Usage:
//!   ert-node --id <ring-id> --bind <addr:port> --bits <bits> \
//!            [--peer <id>=<addr:port>]... [--bootstrap <id>] [--seed <u64>]
//!
//! The node joins through `--bootstrap` (when given), then services
//! frames forever: lookups are forwarded with the two-choice elastic
//! policy, stabilize rounds run every 2 s of real time, and indegree
//! adaptation every `adaptation_period`. All protocol logic is the
//! same `WireNode` the deterministic oracle runs — only the transport
//! and the clock differ here.

use std::net::UdpSocket;
use std::process::ExitCode;

use ert_minidht::{MiniDhtConfig, MiniProtocol};
use ert_node::udp::{Peer, UdpTransport};
use ert_node::{TimerKind, Transport, WireNode};
use ert_sim::{SimDuration, SimTime};

struct Args {
    id: u64,
    bind: String,
    bits: u8,
    peers: Vec<Peer>,
    bootstrap: Option<u64>,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut id = None;
    let mut bind = None;
    let mut bits = 16u8;
    let mut peers = Vec::new();
    let mut bootstrap = None;
    let mut seed = 0u64;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--id" => id = Some(value("--id")?.parse::<u64>().map_err(|e| e.to_string())?),
            "--bind" => bind = Some(value("--bind")?),
            "--bits" => bits = value("--bits")?.parse::<u8>().map_err(|e| e.to_string())?,
            "--seed" => seed = value("--seed")?.parse::<u64>().map_err(|e| e.to_string())?,
            "--bootstrap" => {
                bootstrap = Some(
                    value("--bootstrap")?
                        .parse::<u64>()
                        .map_err(|e| e.to_string())?,
                );
            }
            "--peer" => {
                let spec = value("--peer")?;
                let (pid, addr) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--peer expects <id>=<addr:port>, got `{spec}`"))?;
                peers.push(Peer {
                    id: pid.parse::<u64>().map_err(|e| e.to_string())?,
                    addr: addr.parse().map_err(|e| format!("{addr}: {e}"))?,
                });
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args {
        id: id.ok_or("--id is required")?,
        bind: bind.ok_or("--bind is required")?,
        bits,
        peers,
        bootstrap,
        seed,
    })
}

fn run(args: &Args) -> Result<(), String> {
    let socket = UdpSocket::bind(&args.bind).map_err(|e| format!("bind {}: {e}", args.bind))?;
    let mut transport = UdpTransport::new(socket, args.peers.clone()).map_err(|e| e.to_string())?;

    let cfg = MiniDhtConfig::defaults(args.bits, args.seed);
    let mut view: Vec<u64> = args.peers.iter().map(|p| p.id).collect();
    view.push(args.id);
    view.sort_unstable();
    view.dedup();
    let mut node = WireNode::new(
        args.id,
        args.bits,
        &view,
        1.0,
        8,
        &cfg,
        MiniProtocol::ElasticErt,
    );

    // Wall-clock reads are confined to this binary: the transport and
    // node only ever see the elapsed SimTime fed in below.
    #[allow(clippy::disallowed_methods)] // D1: binary driver clock, not sim code
    let epoch = std::time::Instant::now();
    #[allow(clippy::disallowed_methods)] // D1: binary driver clock, not sim code
    let elapsed = move || SimTime::ZERO + SimDuration::from_secs_f64(epoch.elapsed().as_secs_f64());

    if let Some(boot) = args.bootstrap {
        transport.advance(elapsed());
        node.join_via(&mut transport, boot)
            .map_err(|e| format!("join via {boot}: {e}"))?;
        eprintln!("[{id}] joined via {boot}", id = args.id);
    }
    transport.advance(elapsed());
    node.build_links(&mut transport)
        .map_err(|e| format!("build links: {e}"))?;
    eprintln!(
        "[{id}] serving: view={n} indegree={ind}",
        id = args.id,
        n = node.members_view().len(),
        ind = node.indegree()
    );

    transport.timer(cfg.ert.adaptation_period, TimerKind::AdaptTick);
    let stabilize_every = SimDuration::from_secs_f64(2.0);
    let mut next_stabilize = elapsed() + stabilize_every;

    loop {
        transport.advance(elapsed());
        for kind in transport.due_timers() {
            if let TimerKind::AdaptTick = kind {
                // Keep the adaptation cadence alive on the real clock.
                transport.timer(cfg.ert.adaptation_period, TimerKind::AdaptTick);
            }
            node.on_timer(&mut transport, kind)
                .map_err(|e| format!("timer: {e}"))?;
        }
        if transport.now() >= next_stabilize {
            next_stabilize = transport.now() + stabilize_every;
            if let Err(e) = node.stabilize_once(&mut transport) {
                eprintln!("[{id}] stabilize: {e}", id = args.id);
            }
        }
        if let Some((from, frame)) = transport.poll_frame() {
            transport.advance(elapsed());
            // One socket carries both lanes: request-type messages are
            // answered in place, datagram-lane messages go through the
            // node's frame handler.
            let is_request = matches!(
                ert_node::decode(&frame),
                Ok(ert_node::Message::Join { .. }
                    | ert_node::Message::Stabilize { .. }
                    | ert_node::Message::ProbeLoad { .. }
                    | ert_node::Message::AdaptIndegree { .. })
            );
            let outcome = if is_request {
                node.on_request(&frame)
                    .and_then(|reply| transport.reply_to(from, &reply).map_err(Into::into))
            } else {
                node.on_frame(&mut transport, &frame)
            };
            if let Err(e) = outcome {
                eprintln!("[{id}] frame: {e}", id = args.id);
            }
        }
    }
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ert-node: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("ert-node: {e}\nusage: ert-node --id <u64> --bind <addr:port> [--bits B] [--peer id=addr]... [--bootstrap id] [--seed S]");
            ExitCode::FAILURE
        }
    }
}
