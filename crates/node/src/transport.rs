//! The pluggable transport surface a [`WireNode`](crate::WireNode)
//! drives.
//!
//! Two lanes with deliberately different delivery contracts:
//!
//! * **datagram** ([`Transport::send`]) — fire-and-forget frames
//!   (`Lookup`, `LookupReply`, `Leave`). Subject to loss, reordering
//!   and partitions; the sender learns nothing about delivery.
//! * **reliable RPC** ([`Transport::request`]) — synchronous
//!   request/response pairs (`ProbeLoad`, `AdaptIndegree`, `Join`,
//!   `Stabilize`). Exempt from probabilistic loss (only hard
//!   partitions fail them), mirroring the simulator's assumption that
//!   control-plane reads are instantaneous and reliable.
//!
//! Timers ([`Transport::timer`]) are the node's only clock: the node
//! never reads wall time, it only asks the transport to call back after
//! a simulated/physical delay.

use std::fmt;

use ert_sim::{SimDuration, SimTime};

use crate::codec::CodecError;

/// Pseudo-address of the lookup-issuing client. `LookupReply` frames
/// are sent here; the transport owner (test cluster or binary driver)
/// consumes them.
pub const CLIENT_ADDR: u64 = u64::MAX;

/// Timer callbacks a node can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// The lookup in service (identified by query id) finishes service.
    ServiceDone {
        /// Query id the service slot was committed to.
        query: u64,
    },
    /// Periodic indegree-adaptation tick (Algorithm 3 cadence).
    AdaptTick,
}

/// Transport-level failure, surfaced only on the RPC lane (datagram
/// sends swallow loss by design).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Destination is not a known live peer.
    UnknownPeer(u64),
    /// An active partition separates the endpoints.
    Partitioned {
        /// Sending host's ring id.
        from: u64,
        /// Destination ring id.
        to: u64,
    },
    /// The frame failed to decode at the switch or peer.
    Codec(CodecError),
    /// The peer rejected the request at the protocol level.
    Peer(String),
    /// Underlying I/O failure (UDP transport only).
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownPeer(id) => write!(f, "unknown peer {id}"),
            TransportError::Partitioned { from, to } => {
                write!(f, "partition between {from} and {to}")
            }
            TransportError::Codec(e) => write!(f, "codec: {e}"),
            TransportError::Peer(e) => write!(f, "peer error: {e}"),
            TransportError::Io(e) => write!(f, "transport i/o: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

/// What a live node needs from the outside world. Implemented by the
/// deterministic in-memory switch (tests, the differential oracle) and
/// by the UDP event loop (the `ert-node` binary).
pub trait Transport {
    /// Current time on the transport's clock. Deterministic transports
    /// report simulated time; the UDP loop reports elapsed real time
    /// fed in by the binary driver.
    fn now(&self) -> SimTime;

    /// Fire-and-forget datagram. Loss is silent: `Ok(())` means the
    /// frame was handed to the network, not that it arrived.
    ///
    /// # Errors
    ///
    /// Only local failures (malformed frame, I/O error) are reported.
    fn send(&mut self, to: u64, frame: &[u8]) -> Result<(), TransportError>;

    /// Synchronous reliable RPC: delivers `frame` to `to` and returns
    /// the peer's encoded reply.
    ///
    /// # Errors
    ///
    /// Fails on unknown peers, active partitions, or peer-side protocol
    /// errors.
    fn request(&mut self, to: u64, frame: &[u8]) -> Result<Vec<u8>, TransportError>;

    /// Asks the transport to fire `kind` back into the node after
    /// `delay` on its clock.
    fn timer(&mut self, delay: SimDuration, kind: TimerKind);
}
