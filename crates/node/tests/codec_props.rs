//! Satellite 1: codec robustness properties.
//!
//! Three layers of defense for the wire codec:
//!
//! * **roundtrip** — every message shape survives encode→decode bit
//!   for bit, across the whole generator space;
//! * **truncation** — every strict prefix of a valid frame decodes to
//!   a typed error, never a panic and never a bogus `Ok`;
//! * **bit-flip fuzz** — flipping any single bit of a valid frame
//!   either fails with a typed error or yields a message that
//!   re-encodes canonically (decode is a partial inverse of encode on
//!   its accepted set).
//!
//! `ert-lint`'s panic-path rules (D4/D9) independently guarantee the
//! decoder contains no panicking constructs; these properties check
//! the behavioral half of the same contract.

use ert_node::{decode, encode, AdaptOp, CodecError, LookupStatus, Message};
use ert_sim::SimRng;
use proptest::prelude::*;
use rand::Rng;

fn ids(rng: &mut SimRng, max: usize) -> Vec<u64> {
    let n = rng.gen_range(0..=max);
    (0..n).map(|_| rng.gen::<u64>()).collect()
}

/// Draws one message of every shape with seeded randomized payloads.
fn arbitrary_message(seed: u64, shape: u32) -> Message {
    let mut rng = SimRng::seed_from(seed);
    match shape % 8 {
        0 => Message::Join {
            id: rng.gen(),
            members: ids(&mut rng, 40),
        },
        1 => Message::Stabilize {
            round: rng.gen(),
            members: ids(&mut rng, 40),
        },
        2 => Message::Lookup {
            query: rng.gen(),
            key: rng.gen(),
            hops: rng.gen(),
            attempts: rng.gen(),
            flags: rng.gen(),
            avoid: ids(&mut rng, 24),
        },
        3 => Message::LookupReply {
            query: rng.gen(),
            status: match shape % 3 {
                0 => LookupStatus::Found,
                1 => LookupStatus::Dropped,
                _ => LookupStatus::Failed,
            },
            owner: rng.gen(),
            hops: rng.gen(),
        },
        4 => Message::ProbeLoad { token: rng.gen() },
        5 => Message::LoadReport {
            token: rng.gen(),
            load: rng.gen(),
            capacity: rng.gen(),
            indegree: rng.gen(),
            spare: rng.gen::<i64>(),
        },
        6 => Message::AdaptIndegree {
            from: rng.gen(),
            slot: rng.gen(),
            op: match shape % 4 {
                0 => AdaptOp::QueryOutlink,
                1 => AdaptOp::AddOutlink,
                2 => AdaptOp::DropOutlinks,
                _ => AdaptOp::AddBackward,
            },
        },
        _ => Message::Leave { id: rng.gen() },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roundtrip_is_identity(seed in 0u64..100_000, shape in 0u32..256) {
        let msg = arbitrary_message(seed, shape);
        let bytes = encode(&msg);
        prop_assert_eq!(decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn every_strict_prefix_is_a_typed_error(seed in 0u64..50_000, shape in 0u32..256) {
        let msg = arbitrary_message(seed, shape);
        let bytes = encode(&msg);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode(&bytes[..cut]).is_err(),
                "prefix of length {}/{} decoded successfully",
                cut,
                bytes.len()
            );
        }
    }

    #[test]
    fn single_bit_flips_never_panic_and_ok_results_reencode(
        seed in 0u64..50_000,
        shape in 0u32..256,
    ) {
        let msg = arbitrary_message(seed, shape);
        let bytes = encode(&msg);
        for byte in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut mutated = bytes.clone();
                mutated[byte] ^= 1 << bit;
                // Must not panic; on acceptance, the decoded message
                // must re-encode to exactly the mutated bytes
                // (canonical encoding: accepted frames are fixpoints).
                if let Ok(got) = decode(&mutated) {
                    prop_assert_eq!(
                        encode(&got),
                        mutated.clone(),
                        "bit {bit} of byte {byte}: non-canonical accept"
                    );
                }
            }
        }
    }

    #[test]
    fn random_garbage_never_panics(seed in 0u64..100_000, len in 0usize..512) {
        let mut rng = SimRng::seed_from(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let _unused = decode(&bytes);
    }
}

#[test]
fn error_taxonomy_is_reachable() {
    // Each decoder rejection path has a distinguishable typed error.
    assert!(matches!(decode(&[]), Err(CodecError::Truncated)));
    assert!(matches!(
        decode(b"XX\x01\x01\0\0\0\x01\0"),
        Err(CodecError::BadMagic)
    ));
    assert!(matches!(
        decode(b"ER\x07\x01\0\0\0\x01\0"),
        Err(CodecError::BadVersion(7))
    ));
    assert!(matches!(
        decode(b"ER\x01\x63\0\0\0\x01\0"),
        Err(CodecError::UnknownTag(0x63))
    ));
    let valid = encode(&Message::ProbeLoad { token: 7 });
    let mut lied = valid.clone();
    lied[7] = lied[7].wrapping_add(1);
    assert!(matches!(
        decode(&lied),
        Err(CodecError::LengthMismatch { .. })
    ));
    let mut huge = valid.clone();
    huge[4..8].copy_from_slice(&(u32::MAX).to_be_bytes());
    assert!(matches!(decode(&huge), Err(CodecError::FrameTooLarge(_))));
    let mut trailing = valid;
    trailing.push(0);
    // Declared length counts payload bytes only (frame minus header).
    let fixed_len = ((trailing.len() - 8) as u32).to_be_bytes();
    trailing[4..8].copy_from_slice(&fixed_len);
    assert!(matches!(
        decode(&trailing),
        Err(CodecError::TrailingBytes(1))
    ));
    let mut bad_status = encode(&Message::LookupReply {
        query: 1,
        status: LookupStatus::Found,
        owner: 2,
        hops: 3,
    });
    let idx = bad_status.len() - 13;
    bad_status[idx] = 9;
    assert!(matches!(
        decode(&bad_status),
        Err(CodecError::BadEnum { .. })
    ));
}
