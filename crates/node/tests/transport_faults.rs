//! Satellite 2: wire transport under injected faults.
//!
//! * under a sustained 10% message-loss episode, the bounded-backoff
//!   retry client still completes ≥90% of lookups;
//! * fault-free runs are byte-identical across repeats AND across
//!   node-spawn orders (the spawn permutation is construction-order
//!   only — link building always follows the platform's seeded
//!   permutation);
//! * a partition window fails cross-class traffic while it lasts and
//!   heals cleanly afterwards.

use ert_faults::{FaultEvent, FaultKind, FaultPlan, RetryPolicy};
use ert_minidht::{ChordGeometry, Geometry, MiniDhtConfig, MiniProtocol};
use ert_node::WireCluster;
use ert_sim::{SimDuration, SimRng, SimTime};
use rand::Rng;

/// Backoff tuned to the platform's 0.2–1.0 s service times: the first
/// retry fires only after any live attempt would long since have
/// terminated, so retries target genuinely lost lookups instead of
/// racing slow ones.
fn patient_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base: SimDuration::from_secs_f64(30.0),
        factor: 2.0,
    }
}

const BITS: u8 = 7;
const N: usize = 20;

fn members(seed: u64) -> Vec<u64> {
    ChordGeometry::populate(BITS, N, &mut SimRng::seed_from(seed)).members()
}

fn caps(n: usize) -> Vec<f64> {
    (0..n).map(|i| 600.0 + 250.0 * (i % 5) as f64).collect()
}

fn schedule(count: usize, rate: f64, wseed: u64) -> Vec<(SimTime, u64)> {
    let ring = 1u64 << BITS;
    let mut rng = SimRng::seed_from(wseed).fork("wire-workload");
    let mut at = SimTime::ZERO;
    (0..count)
        .map(|_| {
            at += SimDuration::from_secs_f64(rng.exp_secs(rate));
            (at, rng.gen_range(0..ring))
        })
        .collect()
}

fn cluster(
    seed: u64,
    plan: &FaultPlan,
    retry: RetryPolicy,
    spawn_order: Option<&[usize]>,
) -> WireCluster {
    let members = members(seed);
    let caps = caps(members.len());
    WireCluster::new(
        MiniDhtConfig::defaults(BITS, seed),
        BITS,
        &members,
        &caps,
        MiniProtocol::ElasticErt,
        plan,
        retry,
        spawn_order,
    )
    .expect("cluster construction")
}

#[test]
fn ninety_percent_completion_under_ten_percent_loss() {
    let mut plan = FaultPlan::new(23);
    plan.events.push(FaultEvent {
        at: SimTime::ZERO,
        kind: FaultKind::DropMessages {
            p: 0.10,
            // Outlives the whole run: every datagram rolls the dice.
            window: SimDuration::from_secs_f64(1e6),
        },
    });
    let mut c = cluster(23, &plan, patient_retry(), None);
    let sched = schedule(200, 40.0, 23);
    let report = c.run_schedule(&sched).expect("run");
    let total = report.completed + report.dropped + report.gave_up + report.unresolved;
    assert_eq!(total, 200);
    assert!(
        report.completed as f64 >= 0.90 * total as f64,
        "completion too low under 10% loss: {}/{total} (dropped {}, gave up {}, unresolved {})",
        report.completed,
        report.dropped,
        report.gave_up,
        report.unresolved
    );
    // The retry machinery must have actually been exercised: with ~10%
    // frame loss over multi-hop paths, some first attempts died.
    assert!(
        report.completed < total || report.gave_up == 0,
        "sanity: counts are consistent"
    );
}

#[test]
fn fault_free_runs_are_byte_identical_across_repeats_and_spawn_orders() {
    let sched = schedule(120, 40.0, 7);
    let mut canonicals = Vec::new();
    let mut fingerprints = Vec::new();
    let reversed: Vec<usize> = (0..N).rev().collect();
    let shuffled: Vec<usize> = {
        // A fixed odd-stride permutation of 0..N.
        (0..N).map(|i| (i * 7 + 3) % N).collect()
    };
    for spawn in [None, None, Some(&reversed[..]), Some(&shuffled[..])] {
        let mut c = cluster(7, &FaultPlan::new(7), RetryPolicy::default(), spawn);
        let report = c.run_schedule(&sched).expect("run");
        canonicals.push(report.canonical_string());
        fingerprints.push(c.table_fingerprints());
    }
    for other in &canonicals[1..] {
        assert_eq!(&canonicals[0], other, "wire runs diverged");
    }
    for other in &fingerprints[1..] {
        assert_eq!(&fingerprints[0], other, "routing tables diverged");
    }
    // And nothing was silently lost in a fault-free run.
    assert!(canonicals[0].contains("gave_up=0;unresolved=0"));
}

#[test]
fn partition_fails_cross_class_traffic_then_heals() {
    // Partition the cluster into two classes for a window in the middle
    // of the run; no retries, so lookups needing cross-class hops
    // during the window are lost for good.
    let mut plan = FaultPlan::new(11);
    plan.events.push(FaultEvent {
        at: SimTime::ZERO + SimDuration::from_secs_f64(1.0),
        kind: FaultKind::Partition {
            groups: 2,
            window: SimDuration::from_secs_f64(2.0),
        },
    });
    let sched = schedule(150, 30.0, 11);
    let mut partitioned = cluster(11, &plan, RetryPolicy::default(), None);
    let p_report = partitioned.run_schedule(&sched).expect("run");
    let mut clean = cluster(11, &FaultPlan::new(11), RetryPolicy::default(), None);
    let c_report = clean.run_schedule(&sched).expect("run");

    assert_eq!(c_report.unresolved, 0);
    assert_eq!(c_report.completed + c_report.dropped, 150);
    // The partition must have cost something...
    assert!(
        p_report.completed < c_report.completed,
        "partition had no effect: {} vs {}",
        p_report.completed,
        c_report.completed
    );
    // ...but traffic outside the window still completes: well over the
    // in-window fraction survives.
    assert!(
        p_report.completed > 0,
        "partition wiped out all completions"
    );
    // With retries armed, the same plan recovers most of the loss:
    // retries past the heal point route successfully.
    let mut retried = cluster(11, &plan, patient_retry(), None);
    let r_report = retried.run_schedule(&sched).expect("run");
    assert!(
        r_report.completed > p_report.completed,
        "retry did not recover partition losses: {} vs {}",
        r_report.completed,
        p_report.completed
    );
}
