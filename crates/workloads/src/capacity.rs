//! Node-capacity distributions.

use ert_sim::SimRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The bounded Pareto distribution the paper samples node capacities
/// from: "shape 2, lower bound 500, upper bound 50000".
///
/// ```
/// use ert_workloads::BoundedPareto;
/// use ert_sim::SimRng;
/// let dist = BoundedPareto::paper_default();
/// let mut rng = SimRng::seed_from(1);
/// let c = dist.sample(&mut rng);
/// assert!((500.0..=50000.0).contains(&c));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedPareto {
    shape: f64,
    lower: f64,
    upper: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `shape > 0` and `0 < lower < upper`.
    pub fn new(shape: f64, lower: f64, upper: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "invalid shape: {shape}");
        assert!(
            lower > 0.0 && lower < upper && upper.is_finite(),
            "invalid bounds: [{lower}, {upper}]"
        );
        BoundedPareto {
            shape,
            lower,
            upper,
        }
    }

    /// Table 2's capacity distribution: shape 2 on `[500, 50000]`.
    pub fn paper_default() -> Self {
        BoundedPareto::new(2.0, 500.0, 50000.0)
    }

    /// The shape parameter.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The lower bound.
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// The upper bound.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Draws one capacity by inverse-CDF sampling.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u: f64 = rng.gen();
        let a = self.shape;
        let lha = (self.lower / self.upper).powf(a);
        self.lower / (1.0 - u * (1.0 - lha)).powf(1.0 / a)
    }

    /// Draws `n` capacities.
    pub fn sample_n(&self, n: usize, rng: &mut SimRng) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_bounds_and_skews_low() {
        let dist = BoundedPareto::paper_default();
        let mut rng = SimRng::seed_from(2);
        let samples = dist.sample_n(20_000, &mut rng);
        assert!(samples.iter().all(|&c| (500.0..=50000.0).contains(&c)));
        let below_2000 = samples.iter().filter(|&&c| c < 2000.0).count();
        // Shape-2 Pareto: P(X < 2000) ≈ 0.9375 on these bounds.
        let frac = below_2000 as f64 / samples.len() as f64;
        assert!((frac - 0.9375).abs() < 0.01, "fraction below 2000: {frac}");
    }

    #[test]
    fn mean_matches_theory() {
        let dist = BoundedPareto::new(2.0, 500.0, 50000.0);
        let mut rng = SimRng::seed_from(3);
        let samples = dist.sample_n(100_000, &mut rng);
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let (a, l, h) = (2.0f64, 500.0f64, 50000.0f64);
        let expect = l.powf(a) / (1.0 - (l / h).powf(a)) * a / (a - 1.0) * (1.0 / l - 1.0 / h);
        assert!(
            (mean - expect).abs() / expect < 0.03,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn accessors() {
        let d = BoundedPareto::new(1.5, 10.0, 100.0);
        assert_eq!((d.shape(), d.lower(), d.upper()), (1.5, 10.0, 100.0));
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn rejects_inverted_bounds() {
        let _ = BoundedPareto::new(2.0, 10.0, 5.0);
    }
}
