//! Workload generators for the ERT reproduction.
//!
//! The paper's evaluation draws on three workload ingredients, all
//! reproduced here:
//!
//! * **capacities** ([`BoundedPareto`]) — "machines' capacities vary by
//!   different orders of magnitude" (Table 2: bounded Pareto, shape 2,
//!   500–50000);
//! * **lookup streams** ([`uniform_lookups`], [`impulse_lookups`], and
//!   the popularity models in [`popularity`]) — from the uniform default
//!   through the Section 5.4 impulse to the Zipf / time-varying file
//!   popularity the introduction motivates;
//! * **churn schedules** ([`churn_schedule`]) — Poisson join/leave
//!   streams (Section 5.5 sweeps interarrival from 0.1 to 0.9 s).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;
mod churn;
mod lookups;
pub mod popularity;

pub use capacity::BoundedPareto;
pub use churn::churn_schedule;
pub use lookups::{impulse_lookups, uniform_lookups};
pub use popularity::{shifting_hotspot_lookups, zipf_lookups, ZipfKeys};
