//! File-popularity models: Zipf-distributed and time-varying lookups.
//!
//! The paper's introduction motivates ERT with "nonuniform and
//! time-varying popular files": measurement studies of P2P file sharing
//! find request frequencies that are heavily skewed (approximately
//! Zipf) and whose hot set drifts over time. The Section 5.4 impulse is
//! the extreme static form; this module provides the graded forms:
//!
//! * [`zipf_lookups`] — keys drawn from a fixed catalogue with Zipf
//!   weights (rank-`k` probability ∝ `1/k^s`);
//! * [`shifting_hotspot_lookups`] — the same catalogue, but the hot
//!   ranks rotate every epoch, exercising the *time-varying* part of
//!   the claim (the periodic indegree adaptation is what is supposed to
//!   track it).

use ert_network::{KeyPick, Lookup, SourcePick};
use ert_sim::{SimDuration, SimRng, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fixed catalogue of keys with Zipf-distributed request
/// probabilities.
///
/// ```
/// use ert_workloads::ZipfKeys;
/// use ert_sim::SimRng;
/// let mut rng = SimRng::seed_from(1);
/// let keys = ZipfKeys::new(100, 1.0, &mut rng);
/// let r = keys.sample_rank(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZipfKeys {
    /// Ring fractions of the catalogue's keys, rank order.
    fractions: Vec<f64>,
    /// Cumulative probability per rank.
    cdf: Vec<f64>,
}

impl ZipfKeys {
    /// Builds a catalogue of `n_keys` random keys with Zipf exponent
    /// `s` (`s = 0` is uniform; larger is more skewed; measurement
    /// studies of P2P traffic report `s ≈ 0.6–1.2`).
    ///
    /// # Panics
    ///
    /// Panics unless `n_keys >= 1` and `s >= 0` and finite.
    pub fn new(n_keys: usize, s: f64, rng: &mut SimRng) -> Self {
        assert!(n_keys >= 1, "need at least one key");
        assert!(s >= 0.0 && s.is_finite(), "invalid Zipf exponent: {s}");
        let fractions: Vec<f64> = (0..n_keys).map(|_| rng.gen()).collect();
        let weights: Vec<f64> = (1..=n_keys).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfKeys { fractions, cdf }
    }

    /// Number of keys in the catalogue.
    pub fn len(&self) -> usize {
        self.fractions.len()
    }

    /// Whether the catalogue is empty (never: construction requires one
    /// key).
    pub fn is_empty(&self) -> bool {
        self.fractions.is_empty()
    }

    /// Draws a rank according to the Zipf weights.
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The ring fraction of the key at `rank`, with ranks rotated by
    /// `rotation` (used by the shifting-hotspot workload).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len`.
    pub fn key_at(&self, rank: usize, rotation: usize) -> f64 {
        assert!(rank < self.fractions.len(), "rank out of range");
        self.fractions[(rank + rotation) % self.fractions.len()]
    }
}

/// A Poisson lookup stream whose keys follow a static Zipf popularity
/// over a fixed catalogue. Sources are uniform.
///
/// # Panics
///
/// Panics if `rate_per_sec` is not strictly positive (catalogue
/// construction validates its own inputs).
pub fn zipf_lookups(
    count: usize,
    rate_per_sec: f64,
    n_keys: usize,
    exponent: f64,
    rng: &mut SimRng,
) -> Vec<Lookup> {
    assert!(rate_per_sec > 0.0, "invalid rate: {rate_per_sec}");
    let keys = ZipfKeys::new(n_keys, exponent, rng);
    let mut t = SimTime::ZERO;
    (0..count)
        .map(|_| {
            t += SimDuration::from_secs_f64(rng.exp_secs(rate_per_sec));
            let rank = keys.sample_rank(rng);
            Lookup {
                at: t,
                source: SourcePick::Random,
                key: KeyPick::RingFraction(keys.key_at(rank, 0)),
            }
        })
        .collect()
}

/// A Zipf lookup stream whose hot set **drifts**: every
/// `epoch_lookups` lookups, the rank-to-key mapping rotates by one, so
/// yesterday's most popular file becomes unpopular and a cold file
/// takes its place. This is the "time-varying file popularity" the
/// periodic indegree adaptation targets.
///
/// # Panics
///
/// Panics if `rate_per_sec` is not strictly positive or
/// `epoch_lookups` is zero.
pub fn shifting_hotspot_lookups(
    count: usize,
    rate_per_sec: f64,
    n_keys: usize,
    exponent: f64,
    epoch_lookups: usize,
    rng: &mut SimRng,
) -> Vec<Lookup> {
    assert!(rate_per_sec > 0.0, "invalid rate: {rate_per_sec}");
    assert!(epoch_lookups > 0, "epoch must cover at least one lookup");
    let keys = ZipfKeys::new(n_keys, exponent, rng);
    let mut t = SimTime::ZERO;
    (0..count)
        .map(|i| {
            t += SimDuration::from_secs_f64(rng.exp_secs(rate_per_sec));
            let rotation = i / epoch_lookups;
            let rank = keys.sample_rank(rng);
            Lookup {
                at: t,
                source: SourcePick::Random,
                key: KeyPick::RingFraction(keys.key_at(rank, rotation)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn zipf_rank_frequencies_decay() {
        let mut rng = SimRng::seed_from(10);
        let keys = ZipfKeys::new(50, 1.0, &mut rng);
        let mut counts = [0u32; 50];
        for _ in 0..40_000 {
            counts[keys.sample_rank(&mut rng)] += 1;
        }
        // Rank 1 ~ 2x rank 2 ~ 10x rank 10 under s = 1.
        assert!(
            counts[0] as f64 > 1.6 * counts[1] as f64,
            "{:?}",
            &counts[..5]
        );
        assert!(counts[0] as f64 > 6.0 * counts[9] as f64);
        // Every rank still appears.
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 45);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let mut rng = SimRng::seed_from(11);
        let keys = ZipfKeys::new(10, 0.0, &mut rng);
        let mut counts = vec![0u32; 10];
        for _ in 0..20_000 {
            counts[keys.sample_rank(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1600..=2400).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_lookups_reuse_the_catalogue() {
        let mut rng = SimRng::seed_from(12);
        let ls = zipf_lookups(5000, 100.0, 30, 1.0, &mut rng);
        let mut distinct: BTreeMap<u64, u32> = BTreeMap::new();
        for l in &ls {
            if let KeyPick::RingFraction(f) = l.key {
                *distinct.entry((f * 1e12) as u64).or_insert(0) += 1;
            }
        }
        assert!(distinct.len() <= 30);
        let max = distinct.values().max().copied().unwrap();
        assert!(max as usize > 5000 / 10, "hot key should dominate: {max}");
    }

    #[test]
    fn shifting_hotspot_changes_the_hot_key() {
        let mut rng = SimRng::seed_from(13);
        let ls = shifting_hotspot_lookups(4000, 100.0, 20, 1.2, 1000, &mut rng);
        let hot_of = |slice: &[Lookup]| {
            let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
            for l in slice {
                if let KeyPick::RingFraction(f) = l.key {
                    *counts.entry((f * 1e12) as u64).or_insert(0) += 1;
                }
            }
            counts.into_iter().max_by_key(|&(_, c)| c).map(|(k, _)| k)
        };
        let first = hot_of(&ls[..1000]);
        let last = hot_of(&ls[3000..]);
        assert_ne!(first, last, "hot key should drift between epochs");
    }

    #[test]
    fn key_at_wraps_rotation() {
        let mut rng = SimRng::seed_from(14);
        let keys = ZipfKeys::new(5, 1.0, &mut rng);
        assert_eq!(keys.key_at(2, 0), keys.key_at(0, 2));
        assert_eq!(keys.key_at(4, 3), keys.key_at(2, 5));
        assert_eq!(keys.len(), 5);
        assert!(!keys.is_empty());
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn key_at_checks_rank() {
        let mut rng = SimRng::seed_from(15);
        let keys = ZipfKeys::new(3, 1.0, &mut rng);
        let _ = keys.key_at(3, 0);
    }
}
