//! Uniform and impulse lookup streams.

use ert_network::{KeyPick, Lookup, SourcePick};
use ert_sim::{SimDuration, SimRng, SimTime};
use rand::Rng;

/// A Poisson stream of `count` lookups with random live sources and
/// uniformly random keys, at aggregate rate `rate_per_sec`.
///
/// The paper generates queries "according to a Poisson process at a
/// rate of one per second" per node; pass `n as f64 * 1.0` for that
/// reading.
///
/// # Panics
///
/// Panics if `rate_per_sec` is not strictly positive.
pub fn uniform_lookups(count: usize, rate_per_sec: f64, rng: &mut SimRng) -> Vec<Lookup> {
    assert!(rate_per_sec > 0.0, "invalid rate: {rate_per_sec}");
    let mut t = SimTime::ZERO;
    (0..count)
        .map(|_| {
            t += SimDuration::from_secs_f64(rng.exp_secs(rate_per_sec));
            Lookup {
                at: t,
                source: SourcePick::Random,
                key: KeyPick::Random,
            }
        })
        .collect()
}

/// The skewed-lookup impulse of Section 5.4: `impulse_nodes` sources
/// drawn from one contiguous interval of the ID space (an
/// `impulse_nodes / n` fraction of the ring) querying the same
/// `impulse_keys` randomly chosen keys.
///
/// # Panics
///
/// Panics if any count or the rate is zero.
pub fn impulse_lookups(
    count: usize,
    rate_per_sec: f64,
    n: usize,
    impulse_nodes: usize,
    impulse_keys: usize,
    rng: &mut SimRng,
) -> Vec<Lookup> {
    assert!(rate_per_sec > 0.0, "invalid rate: {rate_per_sec}");
    assert!(
        n > 0 && impulse_nodes > 0 && impulse_keys > 0,
        "counts must be positive"
    );
    let width = (impulse_nodes as f64 / n as f64).min(1.0);
    let start: f64 = rng.gen();
    let keys: Vec<f64> = (0..impulse_keys).map(|_| rng.gen()).collect();
    let mut t = SimTime::ZERO;
    (0..count)
        .map(|_| {
            t += SimDuration::from_secs_f64(rng.exp_secs(rate_per_sec));
            let src = (start + rng.gen::<f64>() * width).rem_euclid(1.0);
            let key = keys[rng.gen_range(0..keys.len())];
            Lookup {
                at: t,
                source: SourcePick::RingFraction(src),
                key: KeyPick::RingFraction(key),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_lookups_are_ordered_and_uniform() {
        let mut rng = SimRng::seed_from(4);
        let ls = uniform_lookups(1000, 100.0, &mut rng);
        assert_eq!(ls.len(), 1000);
        assert!(ls.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(ls
            .iter()
            .all(|l| l.source == SourcePick::Random && l.key == KeyPick::Random));
        let span = ls.last().unwrap().at.as_secs_f64();
        assert!(
            (span - 10.0).abs() < 2.0,
            "1000 lookups at 100/s took {span}s"
        );
    }

    #[test]
    fn impulse_confines_sources_and_keys() {
        let mut rng = SimRng::seed_from(5);
        let ls = impulse_lookups(2000, 100.0, 2048, 100, 50, &mut rng);
        let mut keys = std::collections::BTreeSet::new();
        let mut sources = Vec::new();
        for l in &ls {
            match l.key {
                KeyPick::RingFraction(f) => {
                    keys.insert((f * 1e12) as u64);
                }
                KeyPick::Random => panic!("impulse keys must be fixed"),
            }
            match l.source {
                SourcePick::RingFraction(f) => sources.push(f),
                SourcePick::Random => panic!("impulse sources must be pinned"),
            }
        }
        assert!(keys.len() <= 50);
        assert!(keys.len() > 30, "should use most of the 50 keys");
        let width = 100.0 / 2048.0;
        let min = sources.iter().copied().fold(f64::INFINITY, f64::min);
        let spread = sources
            .iter()
            .copied()
            .fold(0.0f64, |acc, s| acc.max((s - min).rem_euclid(1.0)));
        assert!(spread <= width + 1e-9, "source spread {spread} > {width}");
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn zero_rate_rejected() {
        let mut rng = SimRng::seed_from(6);
        let _ = uniform_lookups(1, 0.0, &mut rng);
    }
}
