//! Membership-churn schedules.

use ert_network::ChurnEvent;
use ert_sim::{SimDuration, SimRng, SimTime};

use crate::capacity::BoundedPareto;

/// Poisson join/leave schedule up to `horizon`: joins with the given
/// mean interarrival time (capacities drawn from `capacity`), and
/// departures likewise. The paper sweeps interarrival from 0.1 to 0.9 s
/// on its one-lookup-per-second time scale.
///
/// # Panics
///
/// Panics if either interarrival time is not strictly positive.
pub fn churn_schedule(
    horizon: SimTime,
    join_interarrival_secs: f64,
    leave_interarrival_secs: f64,
    capacity: BoundedPareto,
    rng: &mut SimRng,
) -> Vec<ChurnEvent> {
    assert!(join_interarrival_secs > 0.0, "invalid join interarrival");
    assert!(leave_interarrival_secs > 0.0, "invalid leave interarrival");
    let mut events = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        t += SimDuration::from_secs_f64(rng.exp_secs(1.0 / join_interarrival_secs));
        if t > horizon {
            break;
        }
        events.push(ChurnEvent::Join {
            at: t,
            capacity: capacity.sample(rng),
        });
    }
    let mut t = SimTime::ZERO;
    loop {
        t += SimDuration::from_secs_f64(rng.exp_secs(1.0 / leave_interarrival_secs));
        if t > horizon {
            break;
        }
        events.push(ChurnEvent::Leave { at: t });
    }
    events.sort_by_key(ChurnEvent::at);
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_sorted_and_balanced() {
        let mut rng = SimRng::seed_from(6);
        let horizon = SimTime::from_secs_f64(100.0);
        let events = churn_schedule(horizon, 0.5, 0.5, BoundedPareto::paper_default(), &mut rng);
        assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));
        assert!(events.iter().all(|e| e.at() <= horizon));
        let joins = events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Join { .. }))
            .count();
        let leaves = events.len() - joins;
        assert!((150..=260).contains(&joins), "joins {joins}");
        assert!((150..=260).contains(&leaves), "leaves {leaves}");
    }

    #[test]
    fn asymmetric_rates_skew_the_mix() {
        let mut rng = SimRng::seed_from(7);
        let horizon = SimTime::from_secs_f64(50.0);
        let events = churn_schedule(horizon, 0.25, 2.0, BoundedPareto::paper_default(), &mut rng);
        let joins = events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Join { .. }))
            .count();
        let leaves = events.len() - joins;
        assert!(joins > 4 * leaves, "joins {joins} vs leaves {leaves}");
    }

    #[test]
    #[should_panic(expected = "invalid join interarrival")]
    fn zero_interarrival_rejected() {
        let mut rng = SimRng::seed_from(8);
        let _ = churn_schedule(
            SimTime::from_secs_f64(1.0),
            0.0,
            1.0,
            BoundedPareto::paper_default(),
            &mut rng,
        );
    }
}
