//! Integration: the workspace-aware analysis pass (D9/D10/D11), the
//! baseline diff pipeline's exit codes, and the SARIF 2.1.0 schema
//! shape — each proven against planted throwaway workspaces, the same
//! fixture style as `workspace_gate.rs`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use ert_obs::Json;

/// A throwaway workspace under the system temp dir; removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("ert-lint-analysis-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&root).ok();
        fs::create_dir_all(&root).expect("mkdir fixture");
        fs::write(
            root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .expect("write root manifest");
        Fixture { root }
    }

    /// Adds a crate `dir` (under `crates/`) named `package` with the
    /// given `(rel_src_path, contents)` source files.
    fn krate(&self, dir: &str, package: &str, files: &[(&str, &str)]) -> &Fixture {
        let base = self.root.join("crates").join(dir);
        fs::write(
            {
                fs::create_dir_all(base.join("src")).expect("mkdir crate");
                base.join("Cargo.toml")
            },
            format!("[package]\nname = \"{package}\"\nversion = \"0.0.0\"\n"),
        )
        .expect("write crate manifest");
        for (rel, contents) in files {
            let path = base.join(rel);
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent).expect("mkdir src subdir");
            }
            fs::write(path, contents).expect("write source");
        }
        self
    }

    fn lint(&self, extra_args: &[&str]) -> (i32, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_ert-lint"))
            .arg("--root")
            .arg(&self.root)
            .args(extra_args)
            .output()
            .expect("run ert-lint");
        (
            out.status.code().expect("exit code"),
            String::from_utf8(out.stdout).expect("utf-8 stdout"),
            String::from_utf8(out.stderr).expect("utf-8 stderr"),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.root).ok();
    }
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

// ---- D9: transitive-panic through the call graph ----

#[test]
fn d9_panic_two_calls_below_a_hot_path_root_fails_the_gate() {
    let fx = Fixture::new("d9");
    // The panic is two hops below `network::lookup` and in a different
    // file, so the old per-file D4 pass could never see it.
    fx.krate(
        "network",
        "ert-network",
        &[
            (
                "src/lookup.rs",
                "pub fn lookup_step(x: Option<u32>) -> u32 { crate::helper::stage_one(x) }\n",
            ),
            (
                "src/helper.rs",
                "pub fn stage_one(x: Option<u32>) -> u32 { stage_two(x) }\n\
                 pub fn stage_two(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
        ],
    );
    let (code, stdout, _) = fx.lint(&["--json"]);
    assert_ne!(code, 0, "reachable panic must fail the gate: {stdout}");
    assert!(
        stdout.contains("\"rule\": \"transitive-panic\""),
        "report: {stdout}"
    );
    // The diagnostic names the chain from the root to the panic site.
    assert!(stdout.contains("stage_two"), "report: {stdout}");
}

#[test]
fn d9_is_waivable_at_the_panic_site() {
    let fx = Fixture::new("d9-waived");
    fx.krate(
        "network",
        "ert-network",
        &[
            (
                "src/lookup.rs",
                "pub fn lookup_step(v: &[u32]) -> u32 { crate::helper::first(v) }\n",
            ),
            (
                "src/helper.rs",
                "pub fn first(v: &[u32]) -> u32 {\n\
                 // ert-lint: allow(transitive-panic) — lookup_step's callers never pass an empty slice\n\
                 *v.first().unwrap()\n\
                 }\n",
            ),
        ],
    );
    let (code, stdout, _) = fx.lint(&["--json"]);
    assert_eq!(code, 0, "justified waiver must pass: {stdout}");
    assert!(
        stdout.contains("\"rule\": \"transitive-panic\""),
        "waiver should appear in the suppressed list: {stdout}"
    );
}

// ---- D10: shared-state in the shard-bound crates ----

#[test]
fn d10_mutex_in_a_sim_module_fails_the_gate() {
    let fx = Fixture::new("d10");
    fx.krate(
        "sim",
        "ert-sim",
        &[(
            "src/lib.rs",
            "use std::sync::Mutex;\npub static SHARED: Mutex<u64> = Mutex::new(0);\n",
        )],
    );
    let (code, stdout, _) = fx.lint(&["--json"]);
    assert_ne!(code, 0, "shared state in ert-sim must fail: {stdout}");
    assert!(
        stdout.contains("\"rule\": \"shared-state\""),
        "report: {stdout}"
    );
}

/// The sharded-core regression shape: someone "fixes" cross-shard
/// communication by wrapping the mailboxes in a `Mutex` instead of
/// keeping the shard reactors shared-nothing. D10 must catch exactly
/// this plant in any shard-bound crate, while the same types stay
/// exempt inside `#[cfg(test)]` modules.
#[test]
fn d10_catches_a_planted_cross_shard_mutex() {
    let fx = Fixture::new("d10-cross-shard");
    fx.krate(
        "network",
        "ert-network",
        &[(
            "src/shard_bridge.rs",
            "pub struct ShardBridge {\n\
                 // cross-shard mailbox \"protected\" by a lock: the exact\n\
                 // shared-state regression the shared-nothing core forbids\n\
                 cross_shard: std::sync::Mutex<Vec<(usize, u64)>>,\n\
             }\n\
             impl ShardBridge {\n\
                 pub fn send(&self, to: usize, ev: u64) {\n\
                     self.cross_shard.lock().unwrap().push((to, ev));\n\
                 }\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 use std::cell::RefCell;\n\
                 #[test]\n\
                 fn scratch() { let c = RefCell::new(1u32); assert_eq!(*c.borrow(), 1); }\n\
             }\n",
        )],
    );
    let (code, stdout, _) = fx.lint(&["--json"]);
    assert_ne!(code, 0, "a cross-shard Mutex must fail the gate: {stdout}");
    assert!(
        stdout.contains("\"rule\": \"shared-state\""),
        "report: {stdout}"
    );
    assert!(
        stdout.contains("Mutex"),
        "diagnostic must name the planted type: {stdout}"
    );
    // Exactly one finding: the test-module RefCell stays exempt.
    assert_eq!(
        stdout.matches("\"rule\": \"shared-state\"").count(),
        1,
        "the #[cfg(test)] RefCell must not be flagged: {stdout}"
    );
}

// ---- D11: stale allows ----

#[test]
fn d11_allow_masking_nothing_fails_the_gate() {
    let fx = Fixture::new("d11");
    fx.krate(
        "clean",
        "ert-clean",
        &[(
            "src/lib.rs",
            "// ert-lint: allow(wall-clock) — leftover from a removed Instant::now\n\
             pub fn f() -> u32 { 1 }\n",
        )],
    );
    let (code, stdout, _) = fx.lint(&["--json"]);
    assert_ne!(code, 0, "stale allow must fail the gate: {stdout}");
    assert!(
        stdout.contains("\"rule\": \"stale-allow\""),
        "report: {stdout}"
    );
}

// ---- baseline pipeline exit codes ----

#[test]
fn baseline_diff_exit_codes_cover_new_accepted_and_stale() {
    let fx = Fixture::new("baseline");
    fx.krate(
        "app",
        "ert-app",
        &[(
            "src/lib.rs",
            "pub fn f() { let _t = std::time::Instant::now(); }\n",
        )],
    );

    // Unbaselined violation: plain run and empty-baseline diff both fail
    // with exit 1, and the diff labels it NEW.
    fs::write(
        fx.root.join("empty.json"),
        "{ \"version\": 1, \"entries\": [] }",
    )
    .expect("write empty baseline");
    let (code, _, _) = fx.lint(&[]);
    assert_eq!(code, 1);
    let (code, _, stderr) = fx.lint(&["--baseline", "empty.json"]);
    assert_eq!(code, 1, "new finding against empty baseline: {stderr}");
    assert!(stderr.contains("NEW"), "stderr: {stderr}");

    // Accept the finding, diff again: exit 0, reported as baselined.
    let (code, _, _) = fx.lint(&["--write-baseline", "accepted.json"]);
    assert_eq!(code, 1, "write-baseline does not change the exit");
    let (code, _, stderr) = fx.lint(&["--baseline", "accepted.json"]);
    assert_eq!(code, 0, "baselined finding passes: {stderr}");
    assert!(stderr.contains("1 baselined"), "stderr: {stderr}");

    // Fix the violation but keep the baseline: exit 3 (stale entries).
    fs::write(
        fx.root.join("crates/app/src/lib.rs"),
        "pub fn f() -> u32 { 1 }\n",
    )
    .expect("fix the violation");
    let (code, _, stderr) = fx.lint(&["--baseline", "accepted.json"]);
    assert_eq!(code, 3, "stale baseline entry must exit 3: {stderr}");
    assert!(stderr.contains("STALE"), "stderr: {stderr}");

    // A malformed baseline is a usage error.
    fs::write(fx.root.join("broken.json"), "{ not json").expect("write broken baseline");
    let (code, _, _) = fx.lint(&["--baseline", "broken.json"]);
    assert_eq!(code, 2);
}

#[test]
fn real_workspace_is_clean_against_the_committed_baseline() {
    let root = repo_root();
    let out = Command::new(env!("CARGO_BIN_EXE_ert-lint"))
        .arg("--root")
        .arg(&root)
        .args(["--baseline", "lint-baseline.json"])
        .output()
        .expect("run ert-lint");
    assert!(
        out.status.success(),
        "workspace must be clean against lint-baseline.json:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

// ---- SARIF 2.1.0 schema shape ----

#[test]
fn sarif_output_matches_the_2_1_0_schema_shape() {
    let fx = Fixture::new("sarif");
    fx.krate(
        "app",
        "ert-app",
        &[(
            "src/lib.rs",
            "pub fn f() { let _t = std::time::Instant::now(); }\n\
             // ert-lint: allow(ambient-rng) — fixture waiver, exercises the suppressed path\n\
             pub fn g() -> u64 { thread_rng().gen() }\n",
        )],
    );
    let sarif_path = fx.root.join("out.sarif");
    let (code, _, _) = fx.lint(&["--sarif", sarif_path.to_str().expect("utf-8")]);
    assert_eq!(code, 1, "the wall-clock violation still fails the run");

    let text = fs::read_to_string(&sarif_path).expect("SARIF written");
    let doc = Json::parse(&text).expect("SARIF is valid JSON");

    // Top level: $schema, version, runs[].
    assert_eq!(
        doc.get("$schema").and_then(Json::as_str),
        Some("https://json.schemastore.org/sarif-2.1.0.json")
    );
    assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
    assert_eq!(runs.len(), 1);

    // tool.driver with a populated rule catalog.
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(driver.get("name").and_then(Json::as_str), Some("ert-lint"));
    let rules = driver.get("rules").and_then(Json::as_arr).expect("rules");
    let rule_ids: Vec<&str> = rules
        .iter()
        .filter_map(|r| r.get("id").and_then(Json::as_str))
        .collect();
    for expected in [
        "wall-clock",
        "transitive-panic",
        "shared-state",
        "stale-allow",
    ] {
        assert!(rule_ids.contains(&expected), "missing rule {expected}");
    }
    for r in rules {
        assert!(
            r.get("shortDescription")
                .and_then(|d| d.get("text"))
                .and_then(Json::as_str)
                .is_some_and(|t| !t.is_empty()),
            "every rule needs a shortDescription.text"
        );
    }

    // results: every entry has ruleId/level/message.text and a physical
    // location with a 1-based startLine; waived findings carry an
    // inSource suppression.
    let results = runs[0]
        .get("results")
        .and_then(Json::as_arr)
        .expect("results");
    assert!(results.len() >= 2, "one error and one note expected");
    let mut saw_error = false;
    let mut saw_suppressed_note = false;
    for r in results {
        assert!(r.get("ruleId").and_then(Json::as_str).is_some());
        let level = r.get("level").and_then(Json::as_str).expect("level");
        assert!(matches!(level, "error" | "note" | "warning"));
        assert!(r
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .is_some());
        let loc = &r
            .get("locations")
            .and_then(Json::as_arr)
            .expect("locations")[0];
        let phys = loc.get("physicalLocation").expect("physicalLocation");
        assert!(phys
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Json::as_str)
            .is_some());
        assert!(phys
            .get("region")
            .and_then(|g| g.get("startLine"))
            .and_then(Json::as_u64)
            .is_some_and(|l| l >= 1));
        saw_error |= level == "error";
        if let Some(sups) = r.get("suppressions").and_then(Json::as_arr) {
            saw_suppressed_note |= level == "note"
                && sups.iter().all(|s| {
                    s.get("kind").and_then(Json::as_str) == Some("inSource")
                        && s.get("justification").and_then(Json::as_str).is_some()
                });
        }
    }
    assert!(
        saw_error,
        "the wall-clock violation must appear as an error"
    );
    assert!(
        saw_suppressed_note,
        "the waived ambient-rng finding must appear as a suppressed note"
    );
}

#[test]
fn sarif_baseline_state_distinguishes_new_from_unchanged() {
    let fx = Fixture::new("sarif-baseline");
    fx.krate(
        "app",
        "ert-app",
        &[(
            "src/lib.rs",
            "pub fn f() { let _t = std::time::Instant::now(); }\n\
             pub fn g() -> u64 { thread_rng().gen() }\n",
        )],
    );
    // Baseline only the wall-clock finding; the ambient-rng one is new.
    fs::write(
        fx.root.join("partial.json"),
        "{ \"version\": 1, \"entries\": [\n\
         { \"rule\": \"wall-clock\", \"file\": \"crates/app/src/lib.rs\", \"line\": 1 }\n\
         ] }",
    )
    .expect("write partial baseline");
    let sarif_path = fx.root.join("out.sarif");
    let (code, _, _) = fx.lint(&[
        "--baseline",
        "partial.json",
        "--sarif",
        sarif_path.to_str().expect("utf-8"),
    ]);
    assert_eq!(code, 1, "the unbaselined finding fails the diff");

    let doc =
        Json::parse(&fs::read_to_string(&sarif_path).expect("SARIF written")).expect("valid JSON");
    let results = doc.get("runs").and_then(Json::as_arr).expect("runs")[0]
        .get("results")
        .and_then(Json::as_arr)
        .expect("results");
    let state_of = |rule: &str| {
        results
            .iter()
            .find(|r| r.get("ruleId").and_then(Json::as_str) == Some(rule))
            .and_then(|r| r.get("baselineState"))
            .and_then(Json::as_str)
    };
    assert_eq!(state_of("wall-clock"), Some("unchanged"));
    assert_eq!(state_of("ambient-rng"), Some("new"));
}
