//! Integration: `ert-lint` over the real workspace must be clean, and
//! a planted fixture violation must fail the CLI with a nonzero exit.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn real_workspace_has_zero_unsuppressed_violations() {
    let report = ert_lint::lint_workspace(&repo_root());
    assert!(
        report.violations.is_empty(),
        "workspace must be lint-clean, found:\n{}",
        report.human()
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); did workspace discovery break?",
        report.files_scanned
    );
    // Every suppression in the tree carries a real justification.
    for s in &report.suppressed {
        assert!(
            !s.justification.trim().is_empty(),
            "bare suppression at {}:{}",
            s.violation.file,
            s.violation.line
        );
    }
}

#[test]
fn cli_exits_zero_and_emits_json_on_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_ert-lint"))
        .args([
            "--root",
            repo_root().to_str().expect("utf-8 path"),
            "--json",
        ])
        .output()
        .expect("run ert-lint");
    assert!(out.status.success(), "expected exit 0 on clean workspace");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(stdout.contains("\"violations\": []"), "report: {stdout}");
    assert!(stdout.contains("\"files_scanned\""));
}

#[test]
fn cli_exits_nonzero_on_planted_violation() {
    // Build a minimal throwaway workspace with one doomed crate.
    let fixture = std::env::temp_dir().join(format!("ert-lint-fixture-{}", std::process::id()));
    let src_dir = fixture.join("crates/evil/src");
    fs::create_dir_all(&src_dir).expect("mkdir fixture");
    fs::write(
        fixture.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write root manifest");
    fs::write(
        fixture.join("crates/evil/Cargo.toml"),
        "[package]\nname = \"ert-network\"\nversion = \"0.0.0\"\n",
    )
    .expect("write crate manifest");
    fs::write(
        src_dir.join("lib.rs"),
        "use std::collections::HashMap;\n\
         pub fn f() -> u64 { let r = thread_rng(); r.gen() }\n",
    )
    .expect("write doomed source");

    let out = Command::new(env!("CARGO_BIN_EXE_ert-lint"))
        .args(["--root", fixture.to_str().expect("utf-8 path"), "--json"])
        .output()
        .expect("run ert-lint");
    fs::remove_dir_all(&fixture).ok();

    assert!(
        !out.status.success(),
        "planted violations must fail the gate"
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    // D2 fires anywhere; D3 fires because the fixture names itself
    // ert-network (a determinism-critical crate).
    assert!(
        stdout.contains("\"rule\": \"ambient-rng\""),
        "report: {stdout}"
    );
    assert!(
        stdout.contains("\"rule\": \"hash-container\""),
        "report: {stdout}"
    );
}
