//! Workspace discovery: which `.rs` files to lint and in what scope.
//!
//! The walk is deterministic (directory entries are sorted) — the
//! linter holds itself to the same reproducibility bar it enforces.

use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::FileContext;

/// A source file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Scope information handed to the rule engine.
    pub ctx: FileContext,
}

/// Enumerates every lintable `.rs` file under `root` (a workspace
/// checkout): the root package's `src`/`tests` and each `crates/*`
/// member's `src`/`tests`/`benches`/`examples`. The vendored
/// third-party code under `crates/compat` is external and skipped.
pub fn workspace_files(root: &Path) -> Vec<SourceFile> {
    let mut out = Vec::new();
    for dir in ["src", "tests", "benches", "examples"] {
        collect(root, &root.join(dir), "ert-repro", &mut out);
    }
    let crates_dir = root.join("crates");
    for member in sorted_entries(&crates_dir) {
        if !member.is_dir() || member.file_name().is_some_and(|n| n == "compat") {
            continue;
        }
        let name = package_name(&member.join("Cargo.toml")).unwrap_or_else(|| {
            member
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        });
        for dir in ["src", "tests", "benches", "examples"] {
            collect(root, &member.join(dir), &name, &mut out);
        }
    }
    out
}

/// Recursively gathers `.rs` files under `dir` into `out`.
fn collect(root: &Path, dir: &Path, crate_name: &str, out: &mut Vec<SourceFile>) {
    for path in sorted_entries(dir) {
        if path.is_dir() {
            collect(root, &path, crate_name, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let is_binary = rel.contains("/src/bin/")
                || rel.ends_with("/main.rs")
                || rel.contains("/benches/")
                || rel.contains("/examples/");
            out.push(SourceFile {
                path: path.clone(),
                ctx: FileContext {
                    rel_path: rel,
                    crate_name: crate_name.to_string(),
                    is_binary,
                },
            });
        }
    }
}

/// Directory children in lexicographic order; empty when unreadable.
fn sorted_entries(dir: &Path) -> Vec<PathBuf> {
    let mut entries: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd.filter_map(|e| e.ok()).map(|e| e.path()).collect(),
        Err(_) => Vec::new(),
    };
    entries.sort();
    entries
}

/// Pulls `name = "..."` out of a `Cargo.toml` without a TOML parser —
/// enough for well-formed workspace manifests.
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                if !v.is_empty() {
                    return Some(v.to_string());
                }
            }
        }
    }
    None
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
