//! CLI for `ert-lint`.
//!
//! ```text
//! cargo run -p ert-lint --              # human diagnostics, exit 1 on violations
//! cargo run -p ert-lint -- --json       # JSON report on stdout
//! cargo run -p ert-lint -- --root PATH  # lint a different workspace checkout
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use ert_lint::{find_workspace_root, lint_workspace};

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ert-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: ert-lint [--json] [--root PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ert-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("ert-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = lint_workspace(&root);
    if json {
        println!("{}", report.json());
    } else {
        print!("{}", report.human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
