//! CLI for `ert-lint`.
//!
//! ```text
//! cargo run -p ert-lint --                        # human diagnostics, exit 1 on violations
//! cargo run -p ert-lint -- --json                 # JSON report on stdout
//! cargo run -p ert-lint -- --sarif out.sarif      # also write a SARIF 2.1.0 file
//! cargo run -p ert-lint -- --baseline FILE        # diff against a committed baseline
//! cargo run -p ert-lint -- --write-baseline FILE  # accept current findings as the baseline
//! cargo run -p ert-lint -- --root PATH            # lint a different workspace checkout
//! ```
//!
//! Exit codes: `0` clean (or all findings baselined), `1` new
//! violations, `2` usage/IO error, `3` no new violations but the
//! baseline holds stale entries (regenerate it with
//! `--write-baseline`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use ert_lint::baseline::Baseline;
use ert_lint::{find_workspace_root, lint_workspace, sarif};

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut sarif_out: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_arg = |flag: &str, slot: &mut Option<PathBuf>| match args.next() {
            Some(p) => {
                *slot = Some(PathBuf::from(p));
                true
            }
            None => {
                eprintln!("ert-lint: {flag} requires a path");
                false
            }
        };
        match arg.as_str() {
            "--json" => json = true,
            "--root" => {
                if !path_arg("--root", &mut root) {
                    return ExitCode::from(2);
                }
            }
            "--sarif" => {
                if !path_arg("--sarif", &mut sarif_out) {
                    return ExitCode::from(2);
                }
            }
            "--baseline" => {
                if !path_arg("--baseline", &mut baseline_path) {
                    return ExitCode::from(2);
                }
            }
            "--write-baseline" => {
                if !path_arg("--write-baseline", &mut write_baseline) {
                    return ExitCode::from(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: ert-lint [--json] [--sarif FILE] [--baseline FILE] \
                     [--write-baseline FILE] [--root PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ert-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("ert-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = lint_workspace(&root);

    // Baseline paths resolve against the linted root when relative, so
    // `--baseline lint-baseline.json` works from any subdirectory.
    let resolve = |p: &PathBuf| {
        if p.is_absolute() {
            p.clone()
        } else {
            root.join(p)
        }
    };

    if let Some(path) = &write_baseline {
        let path = resolve(path);
        let rendered = Baseline::render(&report.violations);
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("ert-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "ert-lint: wrote baseline with {} entr{} to {}",
            report.violations.len(),
            if report.violations.len() == 1 {
                "y"
            } else {
                "ies"
            },
            path.display()
        );
    }

    let diff = match &baseline_path {
        None => None,
        Some(p) => {
            let resolved = resolve(p);
            let src = match std::fs::read_to_string(&resolved) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ert-lint: cannot read baseline {}: {e}", resolved.display());
                    return ExitCode::from(2);
                }
            };
            match Baseline::parse(&src) {
                Ok(b) => Some(b.diff(&report.violations)),
                Err(e) => {
                    eprintln!("ert-lint: malformed baseline {}: {e}", resolved.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if let Some(path) = &sarif_out {
        if let Err(e) = std::fs::write(path, sarif::render(&report, diff.as_ref())) {
            eprintln!("ert-lint: cannot write SARIF {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        println!("{}", report.json());
    } else {
        print!("{}", report.human());
    }

    match diff {
        None => {
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some(d) => {
            for v in &d.new {
                eprintln!(
                    "ert-lint: NEW {}:{}: [{}] {}",
                    v.file, v.line, v.rule, v.message
                );
            }
            for e in &d.stale {
                eprintln!(
                    "ert-lint: STALE baseline entry {}:{}: [{}] no longer occurs — \
                     regenerate with --write-baseline",
                    e.file, e.line, e.rule
                );
            }
            eprintln!(
                "ert-lint: baseline diff: {} new, {} baselined, {} stale",
                d.new.len(),
                d.baselined.len(),
                d.stale.len()
            );
            if !d.new.is_empty() {
                ExitCode::FAILURE
            } else if !d.stale.is_empty() {
                ExitCode::from(3)
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}
