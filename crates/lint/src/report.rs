//! Aggregated lint results: human diagnostics and a JSON report.
//!
//! JSON is emitted by hand (the linter takes no dependencies, not even
//! the vendored serde) — the shape is small and stable:
//!
//! ```json
//! {
//!   "files_scanned": 93,
//!   "violations": [{"rule": "...", "file": "...", "line": 7, "message": "..."}],
//!   "suppressed": [{"rule": "...", "file": "...", "line": 9, "justification": "..."}]
//! }
//! ```

use std::fmt::Write as _;

use crate::rules::{Suppressed, Violation};

/// The outcome of linting a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Standing violations, sorted by file/line/rule.
    pub violations: Vec<Violation>,
    /// Waived violations with their justifications.
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// True when the workspace is clean (CI gate passes).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Sorts both lists into a stable file/line/rule order.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressed.sort_by(|a, b| {
            (&a.violation.file, a.violation.line, a.violation.rule).cmp(&(
                &b.violation.file,
                b.violation.line,
                b.violation.rule,
            ))
        });
    }

    /// Human-readable diagnostics, one `file:line: [rule] message` per
    /// violation, with a trailing summary line.
    pub fn human(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            let _ = writeln!(s, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        let _ = writeln!(
            s,
            "ert-lint: {} file(s) scanned, {} violation(s), {} suppressed",
            self.files_scanned,
            self.violations.len(),
            self.suppressed.len()
        );
        s
    }

    /// The machine-readable JSON report.
    pub fn json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.message)
            );
        }
        s.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"suppressed\": [");
        for (i, sv) in self.suppressed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"justification\": {}}}",
                json_str(sv.violation.rule),
                json_str(&sv.violation.file),
                sv.violation.line,
                json_str(&sv.justification)
            );
        }
        s.push_str(if self.suppressed.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        s.push('}');
        s
    }
}

/// Escapes a string for JSON output.
fn json_str(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len() + 2);
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report {
            files_scanned: 2,
            violations: vec![Violation {
                rule: "ambient-rng",
                file: "a\\b.rs".into(),
                line: 3,
                message: "say \"no\"".into(),
            }],
            suppressed: vec![],
        };
        r.sort();
        let j = r.json();
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("say \\\"no\\\""));
        assert!(j.contains("\"suppressed\": []"));
    }

    #[test]
    fn human_summary_counts() {
        let r = Report {
            files_scanned: 5,
            violations: vec![],
            suppressed: vec![],
        };
        assert!(r.is_clean());
        assert!(r.human().contains("5 file(s) scanned, 0 violation(s)"));
    }
}
