//! The workspace symbol table: every function the parser found, indexed
//! for the conservative call resolution the call graph needs.
//!
//! Resolution is deliberately *over*-approximate — when a call site is
//! ambiguous, every plausible target gets an edge. A transitive-panic
//! path can therefore be a false positive (waived with a justified
//! suppression) but never silently missed by a resolution gap the table
//! could have covered.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{FnItem, ParsedFile};
use crate::rules::FileContext;

/// One function with its location in the workspace.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The parsed item.
    pub item: FnItem,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Cargo package the file belongs to.
    pub crate_name: String,
    /// Index of the file in the slice handed to [`SymbolTable::build`]
    /// — the call-graph builder uses it to find the body tokens.
    pub file_idx: usize,
}

/// All functions in the workspace, indexed by bare name.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every function, in file-then-source order.
    pub fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// Every qualifier that could refer to something in the workspace:
    /// `impl` type names and module path segments. A qualified call
    /// whose qualifier is not in this set is external (`std::`, `Vec`)
    /// and produces no edge.
    known_quals: BTreeSet<String>,
}

impl SymbolTable {
    /// Builds the table from parsed files; `files[i]` must correspond to
    /// the same index the call-graph builder uses for token access.
    pub fn build(files: &[(&ParsedFile, &FileContext)]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (file_idx, (parsed, ctx)) in files.iter().enumerate() {
            for item in &parsed.fns {
                let idx = table.fns.len();
                table
                    .by_name
                    .entry(item.name.clone())
                    .or_default()
                    .push(idx);
                if let Some(t) = &item.self_type {
                    table.known_quals.insert(t.clone());
                }
                for seg in item.module.split("::") {
                    table.known_quals.insert(seg.to_string());
                }
                table.fns.push(FnInfo {
                    item: item.clone(),
                    file: ctx.rel_path.clone(),
                    crate_name: ctx.crate_name.clone(),
                    file_idx,
                });
            }
        }
        table
    }

    /// All functions with the given bare name.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolves a method call `.name(...)`: conservatively, every
    /// workspace method with that name, whatever its receiver type —
    /// trait dispatch and generic receivers make anything narrower
    /// unsound for a token-level analysis.
    pub fn resolve_method(&self, name: &str) -> Vec<usize> {
        self.named(name)
            .iter()
            .copied()
            .filter(|&i| self.fns[i].item.self_type.is_some())
            .collect()
    }

    /// Resolves a bare call `name(...)`: every workspace *free* function
    /// with that name, in any module — a `use` could have imported any
    /// of them, so cross-module resolution stays conservative.
    pub fn resolve_free(&self, name: &str) -> Vec<usize> {
        self.named(name)
            .iter()
            .copied()
            .filter(|&i| self.fns[i].item.self_type.is_none())
            .collect()
    }

    /// Resolves a qualified call `Qual::name(...)`.
    ///
    /// `Self::name` resolves within `current_self`'s methods. Otherwise
    /// the qualifier must match a known `impl` type, a module segment,
    /// or a crate name (`ert_core` ≡ `core`); unknown qualifiers are
    /// external paths and produce no edge. A known qualifier resolves to
    /// every function whose type or module plausibly matches — same-name
    /// types in different modules all get edges.
    pub fn resolve_qualified(
        &self,
        qual: &str,
        name: &str,
        current_self: Option<&str>,
    ) -> Vec<usize> {
        let qual = if qual == "Self" {
            match current_self {
                Some(t) => t,
                None => return Vec::new(),
            }
        } else {
            qual
        };
        // `ert_core::f` and `core::f` both name the `ert-core` crate.
        let crate_form = qual.replace('_', "-");
        let short = crate_form.strip_prefix("ert-").unwrap_or(&crate_form);
        if !self.known_quals.contains(qual) && !self.known_quals.contains(short) {
            return Vec::new();
        }
        self.named(name)
            .iter()
            .copied()
            .filter(|&i| {
                let f = &self.fns[i];
                f.item.self_type.as_deref() == Some(qual)
                    || f.item.module.split("::").any(|s| s == qual || s == short)
                    || f.crate_name == crate_form
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_items;

    fn file(src: &str, rel: &str, krate: &str) -> (ParsedFile, FileContext) {
        let ctx = FileContext {
            rel_path: rel.into(),
            crate_name: krate.into(),
            is_binary: false,
        };
        (parse_items(&lex(src), &ctx), ctx)
    }

    fn table(files: &[(ParsedFile, FileContext)]) -> SymbolTable {
        let refs: Vec<(&ParsedFile, &FileContext)> = files.iter().map(|(p, c)| (p, c)).collect();
        SymbolTable::build(&refs)
    }

    #[test]
    fn bare_calls_resolve_across_modules() {
        let files = [
            file("pub fn helper() {}", "crates/a/src/util.rs", "ert-a"),
            file("pub fn helper() {}", "crates/b/src/other.rs", "ert-b"),
        ];
        let t = table(&files);
        // Conservative: a bare `helper()` could be either import.
        assert_eq!(t.resolve_free("helper").len(), 2);
        assert!(t.resolve_method("helper").is_empty());
    }

    #[test]
    fn methods_resolve_by_name_only() {
        let files = [file(
            "struct A; struct B;\n\
             impl A { fn go(&self) {} }\n\
             impl B { fn go(&self) {} }\n\
             fn go() {}",
            "crates/a/src/lib.rs",
            "ert-a",
        )];
        let t = table(&files);
        assert_eq!(t.resolve_method("go").len(), 2, "both receivers");
        assert_eq!(t.resolve_free("go").len(), 1, "only the free fn");
    }

    #[test]
    fn qualified_calls_filter_by_type_module_or_crate() {
        let files = [
            file(
                "pub struct Queue;\nimpl Queue { pub fn pop(&mut self) {} }",
                "crates/sim/src/event.rs",
                "ert-sim",
            ),
            file("pub fn pop() {}", "crates/core/src/stack.rs", "ert-core"),
        ];
        let t = table(&files);
        assert_eq!(t.resolve_qualified("Queue", "pop", None).len(), 1);
        assert_eq!(t.resolve_qualified("stack", "pop", None).len(), 1);
        assert_eq!(t.resolve_qualified("ert_core", "pop", None).len(), 1);
        // `Vec::pop` — external qualifier, no edge even though the name
        // exists in the workspace.
        assert!(t.resolve_qualified("Vec", "pop", None).is_empty());
    }

    #[test]
    fn self_resolves_within_current_impl() {
        let files = [file(
            "struct S;\nimpl S { fn a(&self) {} fn b(&self) {} }",
            "crates/a/src/lib.rs",
            "ert-a",
        )];
        let t = table(&files);
        assert_eq!(t.resolve_qualified("Self", "b", Some("S")).len(), 1);
        assert!(t.resolve_qualified("Self", "b", None).is_empty());
    }
}
