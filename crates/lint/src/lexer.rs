//! A small hand-rolled Rust lexer: just enough token structure for the
//! D1–D8 rules, with line numbers and comment capture for suppressions.
//!
//! The lexer deliberately does not aim for full fidelity with rustc's
//! grammar. It needs three properties: (1) identifiers and punctuation
//! come out with correct line numbers, (2) string/char literals and
//! comments never leak their contents into the token stream (so a rule
//! can't fire on `"thread_rng"` inside a string), and (3) line comments
//! are surfaced separately so the suppression parser can see them.

/// What a token is. Literal contents of strings are discarded; only the
/// classification matters to the rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unwrap`, `fn`, ...).
    Ident(String),
    /// A lifetime such as `'a` (kept distinct so it never looks like a
    /// char literal or an identifier).
    Lifetime,
    /// An integer literal (`42`, `0xff`, `1_000`).
    Int,
    /// A float literal (`0.5`, `1.`, `2e-3`).
    Float,
    /// A string, raw string, byte string, byte, or char literal.
    Literal,
    /// Punctuation; multi-character operators that the rules care about
    /// (`==`, `!=`, `::`, `..`) are fused into one token.
    Punct(&'static str),
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token classification (see [`TokenKind`]).
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// A `//` comment, surfaced for suppression parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// Comment text after the `//` (or `///`, `//!`) marker.
    pub text: String,
    /// 1-based source line the comment sits on.
    pub line: u32,
    /// True for doc comments (`///`, `//!`). Suppressions are only
    /// honored in plain `//` comments, so prose *describing* the
    /// suppression syntax in rustdoc never parses as one.
    pub doc: bool,
}

/// Lexer output: the token stream plus every line comment encountered.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

/// Tokenizes `src`. Unknown bytes are skipped rather than rejected: the
/// linter must never fail a build because of an exotic construct, only
/// report what it positively recognizes.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! push {
        ($kind:expr) => {
            out.tokens.push(Token { kind: $kind, line })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let doc = matches!(bytes.get(start), Some(b'/') | Some(b'!'));
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(LineComment {
                    text: src[start..j].to_string(),
                    line,
                    doc,
                });
                i = j;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment; contents (including any line
                // breaks) are skipped but lines are still counted.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'\n' => line += 1,
                        b'/' if bytes.get(j + 1) == Some(&b'*') => {
                            depth += 1;
                            j += 1;
                        }
                        b'*' if bytes.get(j + 1) == Some(&b'/') => {
                            depth -= 1;
                            j += 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
            }
            '"' => {
                i = skip_string(bytes, i, &mut line);
                push!(TokenKind::Literal);
            }
            // Raw identifier `r#type`: an escape hatch for keywords used
            // as names, NOT a raw string. Distinguished from `r#"..."`
            // (raw string) by what follows the `#`. The `r#` prefix is
            // stripped so `r#fn` and a plain `fn` ident compare equal —
            // which is what the item parser wants.
            'r' if bytes.get(i + 1) == Some(&b'#')
                && bytes
                    .get(i + 2)
                    .is_some_and(|&b| b == b'_' || (b as char).is_alphabetic()) =>
            {
                let start = i + 2;
                i = start;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                push!(TokenKind::Ident(src[start..i].to_string()));
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                let at = line;
                i = skip_raw_or_byte_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line: at,
                });
            }
            '\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    push!(TokenKind::Literal);
                    i = end;
                } else {
                    // A lifetime: consume the quote and the identifier.
                    push!(TokenKind::Lifetime);
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let (end, is_float) = scan_number(bytes, i);
                push!(if is_float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                });
                i = end;
            }
            c if c == '_' || c.is_alphabetic() => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                push!(TokenKind::Ident(src[start..i].to_string()));
            }
            _ => {
                let two = |a: u8, b: u8| bytes[i] == a && bytes.get(i + 1) == Some(&b);
                let fused = if two(b'=', b'=') {
                    Some("==")
                } else if two(b'!', b'=') {
                    Some("!=")
                } else if two(b':', b':') {
                    Some("::")
                } else if two(b'.', b'.') {
                    Some("..")
                } else {
                    None
                };
                if let Some(op) = fused {
                    push!(TokenKind::Punct(op));
                    i += 2;
                } else {
                    push!(TokenKind::Punct(punct_str(c)));
                    i += c.len_utf8();
                }
            }
        }
    }
    out
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || (b as char).is_alphanumeric()
}

/// Interns single-char punctuation into `&'static str` so rules can
/// match on `Punct("!")` etc. without allocation.
fn punct_str(c: char) -> &'static str {
    match c {
        '!' => "!",
        '#' => "#",
        '(' => "(",
        ')' => ")",
        '{' => "{",
        '}' => "}",
        '[' => "[",
        ']' => "]",
        '.' => ".",
        ',' => ",",
        ';' => ";",
        ':' => ":",
        '=' => "=",
        '<' => "<",
        '>' => ">",
        '&' => "&",
        '|' => "|",
        '+' => "+",
        '-' => "-",
        '*' => "*",
        '/' => "/",
        '%' => "%",
        '?' => "?",
        '@' => "@",
        '$' => "$",
        '~' => "~",
        '^' => "^",
        '\\' => "\\",
        _ => "<other>",
    }
}

/// Skips a `"..."` string starting at `start` (the opening quote),
/// honoring backslash escapes; returns the index just past the closing
/// quote and keeps the line counter current across embedded newlines.
fn skip_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut j = start + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// True when position `i` begins `r"`, `r#`, `b"`, `b'`, `br"`, or
/// `br#` — the literal prefixes the lexer must not read as identifiers.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    matches!(
        rest,
        [b'r', b'"', ..]
            | [b'r', b'#', ..]
            | [b'b', b'"', ..]
            | [b'b', b'\'', ..]
            | [b'b', b'r', b'"', ..]
            | [b'b', b'r', b'#', ..]
    )
}

fn skip_raw_or_byte_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut j = start;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'\'' {
        // Byte literal b'x'.
        return char_literal_end(bytes, j).unwrap_or(j + 1);
    }
    let raw = j < bytes.len() && bytes[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'"' {
        return j; // Not actually a string prefix; resync.
    }
    j += 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\n' => *line += 1,
            b'\\' if !raw => j += 1,
            b'"' => {
                let mut k = 0usize;
                while k < hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return j + 1 + hashes;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// If a char literal starts at `i` (which holds `'`), returns the index
/// just past its closing quote; `None` means `i` starts a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: scan to the closing quote, starting AT the
        // backslash so escape pairs stay paired (`'\\'` must not read
        // its own closing quote as escaped).
        let mut j = i + 1;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return None;
    }
    // `'a'` is a char literal; `'a` followed by anything else is a
    // lifetime. Look for the quote right after one ident-like run or a
    // single non-ident char.
    if next == b'\'' {
        return None; // `''` — malformed; treat as lifetime-ish.
    }
    if is_ident_continue(next) {
        let mut j = i + 2;
        while j < bytes.len() && is_ident_continue(bytes[j]) {
            j += 1;
        }
        if bytes.get(j) == Some(&b'\'') {
            return Some(j + 1);
        }
        return None;
    }
    if bytes.get(i + 2) == Some(&b'\'') {
        return Some(i + 3);
    }
    None
}

/// Scans a numeric literal starting at `i`; returns (end, is_float).
/// A `.` continues the number only when followed by a digit or by a
/// non-identifier, non-dot character (`1.max(2)` and `0..n` stay
/// integers; `1.` and `1.5` are floats).
fn scan_number(bytes: &[u8], i: usize) -> (usize, bool) {
    let mut j = i;
    let mut is_float = false;
    while j < bytes.len() {
        let b = bytes[j];
        if b.is_ascii_alphanumeric() || b == b'_' {
            if (b == b'e' || b == b'E')
                && !bytes[i..].starts_with(b"0x")
                && matches!(bytes.get(j + 1), Some(b'+') | Some(b'-'))
            {
                is_float = true;
                j += 2; // Exponent sign.
                continue;
            }
            j += 1;
        } else if b == b'.' {
            match bytes.get(j + 1) {
                Some(n) if n.is_ascii_digit() => {
                    is_float = true;
                    j += 2;
                }
                Some(b'.') => break,                       // Range `0..n`.
                Some(n) if is_ident_continue(*n) => break, // Method `1.max(..)`.
                _ => {
                    is_float = true; // Trailing-dot float `1.`.
                    j += 1;
                    break;
                }
            }
        } else {
            break;
        }
    }
    (j, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "thread_rng()";
            // thread_rng in a comment
            /* HashMap in a block
               comment */
            let b = r#"SystemTime"#;
            let c = 'H';
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "thread_rng"));
        assert!(!ids.iter().any(|s| s == "HashMap"));
        assert!(!ids.iter().any(|s| s == "SystemTime"));
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let s = \"a\nb\";\nlet t = 1;\n";
        let lexed = lex(src);
        let t_line = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("t".into()))
            .map(|t| t.line);
        assert_eq!(t_line, Some(3));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Literal));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let kinds: Vec<TokenKind> = lex("0.5 17 0..n 1.max(2) 2e-3")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds[0], TokenKind::Float);
        assert_eq!(kinds[1], TokenKind::Int);
        assert_eq!(kinds[2], TokenKind::Int); // 0
        assert_eq!(kinds[3], TokenKind::Punct("..")); // ..
        assert!(matches!(kinds[4], TokenKind::Ident(_))); // n
        assert_eq!(kinds[5], TokenKind::Int); // 1 (method call)
        assert_eq!(*kinds.last().expect("tokens"), TokenKind::Float); // 2e-3
    }

    #[test]
    fn escaped_backslash_char_literal_does_not_desync() {
        // `'\\'` once swallowed its own closing quote and lexed the
        // rest of the file as garbage until the next apostrophe.
        let ids = idents("let c = '\\\\'; let after = 1;");
        assert_eq!(ids, vec!["let", "c", "let", "after"]);
    }

    #[test]
    fn doc_comments_are_marked() {
        let lexed = lex("/// outer doc\n//! inner doc\n// plain\n");
        let flags: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(flags, vec![true, true, false]);
    }

    #[test]
    fn comments_surface_text_and_line() {
        let lexed = lex("let x = 1; // ert-lint: allow(float-eq) - why\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("ert-lint"));
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        // `r#type` once matched the raw-string prefix heuristic and
        // emitted a bogus Literal token, desyncing the item parser.
        let lexed = lex("struct r#type; fn r#fn(r#loop: u32) {}");
        let ids = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(ids, vec!["struct", "type", "fn", "fn", "loop", "u32"]);
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Literal));
        // ...while `r#"..."#` stays a raw string, contents hidden.
        let raw = lex(r###"let s = r#"thread_rng"#;"###);
        assert!(raw.tokens.iter().any(|t| t.kind == TokenKind::Literal));
        assert!(!raw
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident("thread_rng".into())));
    }

    #[test]
    fn byte_string_literals_hide_contents_and_keep_sync() {
        // Plain, escaped-quote, and raw byte strings must each come out
        // as one Literal with the following tokens intact.
        for src in [
            "let a = b\"thread_rng\"; let after = 1;",
            "let a = b\"say \\\"hi\\\"\"; let after = 1;",
            "let a = br#\"HashMap\"#; let after = 1;",
            "let a = b'\\''; let after = 1;",
        ] {
            let lexed = lex(src);
            let ids: Vec<&str> = lexed
                .tokens
                .iter()
                .filter_map(|t| match &t.kind {
                    TokenKind::Ident(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect();
            assert_eq!(ids, vec!["let", "a", "let", "after"], "src: {src}");
            assert!(
                lexed.tokens.iter().any(|t| t.kind == TokenKind::Literal),
                "src: {src}"
            );
        }
    }

    #[test]
    fn lifetime_heavy_generics_do_not_eat_char_literals() {
        // A signature mixing lifetimes with real char literals in the
        // default-expression position must keep both classifications.
        let src =
            "fn f<'a, 'b: 'a>(x: &'a str, c: char) -> &'b str { if c == 'x' { x } else { x } }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lifetimes, 5, "'a, 'b, 'a bound, &'a, &'b");
        assert_eq!(literals, 1, "only 'x' is a char literal");
    }

    #[test]
    fn fused_operators() {
        let kinds: Vec<TokenKind> = lex("a == b != c :: d")
            .tokens
            .into_iter()
            .filter(|t| matches!(t.kind, TokenKind::Punct(_)))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Punct("=="),
                TokenKind::Punct("!="),
                TokenKind::Punct("::")
            ]
        );
    }
}
