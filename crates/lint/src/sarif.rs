//! SARIF 2.1.0 output, for CI annotation and archive upload.
//!
//! One run, one driver (`ert-lint`), the full rule catalog under
//! `tool.driver.rules`, and one `result` per finding: standing
//! violations at level `error` (with a `baselineState` when the run was
//! diffed against a baseline), waived findings at level `note` carrying
//! an `inSource` suppression with the inline justification. The writer
//! is hand-rolled like the rest of the crate; the schema-shape guard
//! test in `tests/analysis_gate.rs` keeps it honest.

use std::fmt::Write as _;

use crate::baseline::{json_str, Diff};
use crate::report::Report;
use crate::rules::{CATALOG, META_CATALOG};

/// One-line rule descriptions for the SARIF catalog entry.
fn describe(rule: &str) -> &'static str {
    match rule {
        "wall-clock" => "Wall-clock reads; sims must be pure functions of the seed",
        "ambient-rng" => "Ambient randomness; derive all RNG state from the run seed",
        "hash-container" => "Hash-ordered containers in determinism-critical crates",
        "panic-path" => "unwrap/expect/panic! directly in a hot-path file",
        "float-eq" => "Direct float equality in load/capacity comparisons",
        "swallowed-result" => "Silently discarded Results in fault-handling code",
        "raw-thread" => "Raw thread spawning outside the ert-par pool",
        "unbounded-collector" => "Unbounded sample accumulation in streaming hot loops",
        "transitive-panic" => "Panic reachable from a hot-path root through the call graph",
        "shared-state" => "Shared mutable state in the crates the sharded core will split",
        "stale-allow" => "An ert-lint allow comment that no longer waives anything",
        "suppression" => "Malformed ert-lint suppression comment",
        _ => "ert-lint rule",
    }
}

/// Renders the report as a SARIF 2.1.0 document. When `diff` is given
/// (a `--baseline` run), each violation carries a `baselineState` of
/// `"new"` or `"unchanged"`.
pub fn render(report: &Report, diff: Option<&Diff>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"ert-lint\",\n");
    let _ = writeln!(
        s,
        "          \"version\": {},",
        json_str(env!("CARGO_PKG_VERSION"))
    );
    s.push_str("          \"rules\": [\n");
    let all_rules: Vec<&(&str, &str)> = CATALOG.iter().chain(META_CATALOG.iter()).collect();
    for (i, (code, name)) in all_rules.iter().enumerate() {
        let sep = if i + 1 == all_rules.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "            {{ \"id\": {}, \"name\": {}, \"shortDescription\": {{ \"text\": {} }} }}{sep}",
            json_str(name),
            json_str(code),
            json_str(describe(name))
        );
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");

    // `baselineState` assignment mirrors the diff's multiset matching:
    // consume one `new` slot per textually-identical finding.
    let mut new_pool: Vec<bool> = diff.map(|d| vec![true; d.new.len()]).unwrap_or_default();
    let mut results: Vec<String> = Vec::new();
    for v in &report.violations {
        let state = diff.map(|d| {
            let slot = d
                .new
                .iter()
                .enumerate()
                .position(|(i, n)| new_pool[i] && n == v);
            match slot {
                Some(i) => {
                    new_pool[i] = false;
                    "new"
                }
                None => "unchanged",
            }
        });
        let mut r = String::from("        {\n");
        let _ = writeln!(r, "          \"ruleId\": {},", json_str(v.rule));
        r.push_str("          \"level\": \"error\",\n");
        let _ = writeln!(
            r,
            "          \"message\": {{ \"text\": {} }},",
            json_str(&v.message)
        );
        if let Some(state) = state {
            let _ = writeln!(r, "          \"baselineState\": {},", json_str(state));
        }
        push_location(&mut r, &v.file, v.line);
        r.push_str("        }");
        results.push(r);
    }
    for sup in &report.suppressed {
        let v = &sup.violation;
        let mut r = String::from("        {\n");
        let _ = writeln!(r, "          \"ruleId\": {},", json_str(v.rule));
        r.push_str("          \"level\": \"note\",\n");
        let _ = writeln!(
            r,
            "          \"message\": {{ \"text\": {} }},",
            json_str(&v.message)
        );
        let _ = writeln!(
            r,
            "          \"suppressions\": [ {{ \"kind\": \"inSource\", \"justification\": {} }} ],",
            json_str(&sup.justification)
        );
        push_location(&mut r, &v.file, v.line);
        r.push_str("        }");
        results.push(r);
    }
    s.push_str(&results.join(",\n"));
    if !results.is_empty() {
        s.push('\n');
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

fn push_location(r: &mut String, file: &str, line: u32) {
    let _ = writeln!(
        r,
        "          \"locations\": [ {{ \"physicalLocation\": {{ \
         \"artifactLocation\": {{ \"uri\": {} }}, \
         \"region\": {{ \"startLine\": {} }} }} }} ]",
        json_str(file),
        line
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Suppressed, Violation};

    fn sample_report() -> Report {
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        r.violations.push(Violation {
            rule: "wall-clock",
            file: "crates/a/src/lib.rs".into(),
            line: 3,
            message: "wall-clock read `Instant::now()`".into(),
        });
        r.suppressed.push(Suppressed {
            violation: Violation {
                rule: "shared-state",
                file: "crates/sim/src/stats.rs".into(),
                line: 47,
                message: "`RefCell` is shared/interior-mutable state".into(),
            },
            justification: "single-threaded by construction".into(),
        });
        r
    }

    #[test]
    fn sarif_names_schema_version_and_rules() {
        let out = render(&sample_report(), None);
        assert!(out.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(out.contains("\"version\": \"2.1.0\""));
        assert!(out.contains("\"id\": \"transitive-panic\""));
        assert!(out.contains("\"id\": \"stale-allow\""));
        // No baseline: no baselineState field anywhere.
        assert!(!out.contains("baselineState"));
    }

    #[test]
    fn violations_are_errors_and_waivers_are_suppressed_notes() {
        let out = render(&sample_report(), None);
        assert!(out.contains("\"level\": \"error\""));
        assert!(out.contains("\"level\": \"note\""));
        assert!(out.contains("\"kind\": \"inSource\""));
        assert!(out.contains("single-threaded by construction"));
        assert!(out.contains("\"startLine\": 47"));
    }

    #[test]
    fn baseline_diff_marks_new_vs_unchanged() {
        let report = sample_report();
        // Diff that says the single violation is new.
        let diff = Diff {
            new: report.violations.clone(),
            baselined: Vec::new(),
            stale: Vec::new(),
        };
        let out = render(&report, Some(&diff));
        assert!(out.contains("\"baselineState\": \"new\""));
        // And a diff that absorbed it.
        let diff2 = Diff {
            new: Vec::new(),
            baselined: report.violations.clone(),
            stale: Vec::new(),
        };
        let out2 = render(&report, Some(&diff2));
        assert!(out2.contains("\"baselineState\": \"unchanged\""));
    }
}
