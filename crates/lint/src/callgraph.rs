//! A conservative workspace call graph, and the D9 `transitive-panic`
//! rule built on top of it.
//!
//! For every function body the builder records (a) call edges into the
//! [`SymbolTable`] and (b) direct panic sites (`.unwrap()`, `.expect()`,
//! `panic!`-family macros — the same markers as D4). Edges are resolved
//! conservatively: a method call goes to every workspace method with
//! that name, a bare call to every same-named free function, a
//! qualified call to every function its qualifier could plausibly name.
//! Test functions are excluded from the graph entirely, on both ends.
//!
//! D9 then walks the graph from the hot-path roots (every non-test
//! function defined in the D4 files: `core::forward`, `core::adapt`,
//! `sim::engine`, `network::lookup`) and flags each panic site in a
//! reachable function. Direct panics *inside* the root files stay D4's
//! job; D9 reports only what D4 cannot see — panics below a call.

use std::collections::BTreeMap;

use crate::lexer::{Lexed, TokenKind};
use crate::rules::{Violation, D4_FILES, TRANSITIVE_PANIC};
use crate::symbols::SymbolTable;

/// A direct panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based source line.
    pub line: u32,
    /// What fires there (`unwrap`, `expect`, `panic!`, ...).
    pub what: String,
}

/// Call edges and panic sites, indexed like [`SymbolTable::fns`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `callees[f]` = functions `f` may call (conservatively).
    pub callees: Vec<Vec<usize>>,
    /// `panics[f]` = direct panic sites in `f`'s body.
    pub panics: Vec<Vec<PanicSite>>,
}

/// Names that look like calls but never are (macro fragments the lexer
/// happens to emit as `ident (`-shaped sequences, and control keywords).
const NON_CALLS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "fn", "let", "move", "in", "as", "where",
    "unsafe", "else", "break", "continue",
];

/// Builds the call graph. `lexed[i]` must be the token stream of the
/// file `SymbolTable` indexed as `file_idx == i`.
pub fn build_graph(table: &SymbolTable, lexed: &[&Lexed]) -> CallGraph {
    let mut graph = CallGraph {
        callees: vec![Vec::new(); table.fns.len()],
        panics: vec![Vec::new(); table.fns.len()],
    };
    for (fi, f) in table.fns.iter().enumerate() {
        if f.item.is_test {
            continue;
        }
        let Some((start, end)) = f.item.body else {
            continue;
        };
        let tokens = &lexed[f.file_idx].tokens;
        let ident = |i: usize| match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        };
        let punct = |i: usize| match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct(p)) => Some(*p),
            _ => None,
        };
        let current_self = f.item.self_type.as_deref();

        let mut j = start;
        while j < end.min(tokens.len()) {
            let Some(name) = ident(j) else {
                j += 1;
                continue;
            };
            // Macro invocation `name!(...)`: a panic marker or inert.
            if punct(j + 1) == Some("!") {
                if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented") {
                    graph.panics[fi].push(PanicSite {
                        line: tokens[j].line,
                        what: format!("{name}!"),
                    });
                }
                j += 2;
                continue;
            }
            // Optional turbofish between the name and the argument list.
            let mut k = j + 1;
            if punct(k) == Some("::") && punct(k + 1) == Some("<") {
                let mut angle = 1i32;
                k += 2;
                while k < tokens.len() && angle > 0 {
                    match punct(k) {
                        Some("<") => angle += 1,
                        Some(">") => angle -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            }
            if punct(k) != Some("(") || NON_CALLS.contains(&name) {
                j += 1;
                continue;
            }
            let prev = punct(j.wrapping_sub(1));
            if matches!(name, "unwrap" | "expect") && matches!(prev, Some(".") | Some("::")) {
                graph.panics[fi].push(PanicSite {
                    line: tokens[j].line,
                    what: format!(".{name}()"),
                });
                j = k;
                continue;
            }
            let targets = if prev == Some(".") {
                table.resolve_method(name)
            } else if prev == Some("::") {
                match ident(j.wrapping_sub(2)) {
                    Some(qual) => table.resolve_qualified(qual, name, current_self),
                    None => Vec::new(), // `<T as Trait>::f` and friends.
                }
            } else if ident(j.wrapping_sub(1)) == Some("fn") {
                Vec::new() // A nested definition, not a call.
            } else {
                table.resolve_free(name)
            };
            for t in targets {
                if !table.fns[t].item.is_test && !graph.callees[fi].contains(&t) {
                    graph.callees[fi].push(t);
                }
            }
            j = k;
        }
    }
    graph
}

impl CallGraph {
    /// Breadth-first reachability from `roots`; the map's value is the
    /// BFS parent (`None` for roots), which [`chain`] unwinds into a
    /// shortest call path for diagnostics.
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut seen: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if seen.insert(r, None).is_none() {
                queue.push(r);
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            for &next in &self.callees[cur] {
                if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(next) {
                    e.insert(Some(cur));
                    queue.push(next);
                }
            }
        }
        seen
    }
}

/// Renders the shortest root→function call chain the BFS recorded, e.g.
/// `core::forward::choose_next → sim::rng::choose`.
pub fn chain(
    parents: &BTreeMap<usize, Option<usize>>,
    mut idx: usize,
    table: &SymbolTable,
) -> String {
    let mut names = vec![table.fns[idx].item.qual()];
    while let Some(Some(p)) = parents.get(&idx) {
        names.push(table.fns[*p].item.qual());
        idx = *p;
    }
    names.reverse();
    names.join(" → ")
}

/// Runs D9: every panic site in a non-test function reachable from the
/// hot-path roots, excluding sites inside the root files themselves
/// (those are direct D4 territory). Violations are attributed to the
/// panic site so the usual same-line suppressions apply.
pub fn transitive_panic_violations(table: &SymbolTable, graph: &CallGraph) -> Vec<Violation> {
    let roots: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.item.is_test && D4_FILES.contains(&f.file.as_str()))
        .map(|(i, _)| i)
        .collect();
    let reachable = graph.reachable(&roots);
    let mut out = Vec::new();
    let mut seen_sites: Vec<(String, u32)> = Vec::new();
    for &fi in reachable.keys() {
        let f = &table.fns[fi];
        if D4_FILES.contains(&f.file.as_str()) {
            continue;
        }
        for site in &graph.panics[fi] {
            let key = (f.file.clone(), site.line);
            if seen_sites.contains(&key) {
                continue;
            }
            seen_sites.push(key);
            out.push(Violation {
                rule: TRANSITIVE_PANIC,
                file: f.file.clone(),
                line: site.line,
                message: format!(
                    "`{}` hits `{}` and is reachable from a hot path: {}; propagate an \
                     error instead, or justify with `ert-lint: allow(transitive-panic)`",
                    f.item.qual(),
                    site.what,
                    chain(&reachable, fi, table),
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::{parse_items, ParsedFile};
    use crate::rules::FileContext;

    struct Fixture {
        parsed: Vec<(ParsedFile, FileContext)>,
        lexed: Vec<Lexed>,
    }

    impl Fixture {
        fn new(files: &[(&str, &str, &str)]) -> Fixture {
            let mut parsed = Vec::new();
            let mut lexed = Vec::new();
            for (src, rel, krate) in files {
                let ctx = FileContext {
                    rel_path: (*rel).into(),
                    crate_name: (*krate).into(),
                    is_binary: false,
                };
                let lx = lex(src);
                parsed.push((parse_items(&lx, &ctx), ctx));
                lexed.push(lx);
            }
            Fixture { parsed, lexed }
        }

        fn analyze(&self) -> (SymbolTable, CallGraph) {
            let refs: Vec<(&ParsedFile, &FileContext)> =
                self.parsed.iter().map(|(p, c)| (p, c)).collect();
            let table = SymbolTable::build(&refs);
            let lexed: Vec<&Lexed> = self.lexed.iter().collect();
            let graph = build_graph(&table, &lexed);
            (table, graph)
        }
    }

    fn idx(table: &SymbolTable, qual: &str) -> usize {
        table
            .fns
            .iter()
            .position(|f| f.item.qual() == qual)
            .unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn direct_calls_make_edges_and_panics_are_sited() {
        let fx = Fixture::new(&[(
            "fn a(x: Option<u32>) -> u32 { b(x) }\n\
             fn b(x: Option<u32>) -> u32 { x.unwrap() }",
            "crates/x/src/lib.rs",
            "ert-x",
        )]);
        let (table, graph) = fx.analyze();
        let a = idx(&table, "x::a");
        let b = idx(&table, "x::b");
        assert_eq!(graph.callees[a], vec![b]);
        assert_eq!(graph.panics[b].len(), 1);
        assert_eq!(graph.panics[b][0].line, 2);
        assert!(graph.panics[a].is_empty());
    }

    #[test]
    fn cross_module_bare_calls_resolve_conservatively() {
        let fx = Fixture::new(&[
            (
                "pub fn caller() { shared_helper(); }",
                "crates/a/src/entry.rs",
                "ert-a",
            ),
            ("pub fn shared_helper() {}", "crates/b/src/util.rs", "ert-b"),
            (
                "pub fn shared_helper() { panic!(\"boom\") }",
                "crates/c/src/other.rs",
                "ert-c",
            ),
        ]);
        let (table, graph) = fx.analyze();
        let caller = idx(&table, "a::entry::caller");
        // Both same-named helpers get an edge: imports are invisible to
        // the token layer, so resolution must over-approximate.
        assert_eq!(graph.callees[caller].len(), 2);
    }

    #[test]
    fn trait_method_calls_resolve_to_every_impl() {
        let fx = Fixture::new(&[(
            "trait Step { fn advance(&self); }\n\
             struct Safe; struct Risky;\n\
             impl Step for Safe { fn advance(&self) {} }\n\
             impl Step for Risky { fn advance(&self) { panic!(\"no\") } }\n\
             fn drive(s: &dyn Step) { s.advance(); }",
            "crates/x/src/lib.rs",
            "ert-x",
        )]);
        let (table, graph) = fx.analyze();
        let drive = idx(&table, "x::drive");
        // Dynamic dispatch: the call must reach BOTH impls (and the
        // bodyless trait declaration contributes no edge target worth
        // distinguishing — it has no body, hence no panics).
        let method_targets: Vec<&str> = graph.callees[drive]
            .iter()
            .map(|&t| table.fns[t].item.qual())
            .collect::<Vec<String>>()
            .iter()
            .map(|s| {
                if s.contains("Risky") {
                    "risky"
                } else {
                    "other"
                }
            })
            .collect();
        assert!(method_targets.contains(&"risky"));
        assert!(graph.callees[drive].len() >= 2);
    }

    #[test]
    fn qualified_calls_do_not_leak_to_unrelated_types() {
        let fx = Fixture::new(&[(
            "struct Q;\nimpl Q { fn pop(&mut self) { panic!(\"x\") } }\n\
             fn safe() { let mut v = vec![1]; Vec::pop(&mut v); }",
            "crates/x/src/lib.rs",
            "ert-x",
        )]);
        let (table, graph) = fx.analyze();
        let safe = idx(&table, "x::safe");
        assert!(
            graph.callees[safe].is_empty(),
            "`Vec::pop` is external; it must not resolve to `Q::pop`"
        );
    }

    #[test]
    fn test_functions_are_outside_the_graph() {
        let fx = Fixture::new(&[(
            "fn lib_entry() { helper(); }\nfn helper() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { panic!(\"t\") }\n    #[test]\n    fn t() { helper(); }\n}",
            "crates/x/src/lib.rs",
            "ert-x",
        )]);
        let (table, graph) = fx.analyze();
        let entry = idx(&table, "x::lib_entry");
        // The test-module helper must not become a callee.
        for &t in &graph.callees[entry] {
            assert!(!table.fns[t].item.is_test);
        }
        assert_eq!(graph.callees[entry].len(), 1);
    }

    #[test]
    fn transitive_panic_walks_two_levels_from_a_root_file() {
        let fx = Fixture::new(&[
            (
                "pub fn lookup_step(x: Option<u32>) -> u32 { stage_one(x) }",
                "crates/network/src/lookup.rs",
                "ert-network",
            ),
            (
                "pub fn stage_one(x: Option<u32>) -> u32 { stage_two(x) }\n\
                 pub fn stage_two(x: Option<u32>) -> u32 { x.unwrap() }",
                "crates/network/src/helper.rs",
                "ert-network",
            ),
        ]);
        let (table, graph) = fx.analyze();
        let vs = transitive_panic_violations(&table, &graph);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, TRANSITIVE_PANIC);
        assert_eq!(vs[0].file, "crates/network/src/helper.rs");
        assert_eq!(vs[0].line, 2);
        assert!(
            vs[0].message.contains("network::lookup::lookup_step"),
            "chain should start at the root: {}",
            vs[0].message
        );
        assert!(vs[0].message.contains("stage_two"));
    }

    #[test]
    fn panics_not_reachable_from_roots_stay_quiet() {
        let fx = Fixture::new(&[
            (
                "pub fn lookup_step() -> u32 { 1 }",
                "crates/network/src/lookup.rs",
                "ert-network",
            ),
            (
                "pub fn island(x: Option<u32>) -> u32 { x.unwrap() }",
                "crates/network/src/helper.rs",
                "ert-network",
            ),
        ]);
        let (table, graph) = fx.analyze();
        assert!(transitive_panic_violations(&table, &graph).is_empty());
    }

    #[test]
    fn direct_root_file_panics_are_left_to_d4() {
        let fx = Fixture::new(&[(
            "pub fn lookup_step(x: Option<u32>) -> u32 { x.unwrap() }",
            "crates/network/src/lookup.rs",
            "ert-network",
        )]);
        let (table, graph) = fx.analyze();
        assert!(
            transitive_panic_violations(&table, &graph).is_empty(),
            "in-file panics are D4's finding, not D9's"
        );
    }

    #[test]
    fn chain_renders_shortest_path() {
        let fx = Fixture::new(&[(
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}",
            "crates/x/src/lib.rs",
            "ert-x",
        )]);
        let (table, graph) = fx.analyze();
        let a = idx(&table, "x::a");
        let c = idx(&table, "x::c");
        let parents = graph.reachable(&[a]);
        assert_eq!(chain(&parents, c, &table), "x::a → x::b → x::c");
    }
}
