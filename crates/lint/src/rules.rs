//! The D1–D11 rule catalog and the engine that applies it to one file.
//!
//! D1–D8 and D10 are purely token-based (see [`crate::lexer`]); scope
//! is decided from the [`FileContext`] the workspace walker supplies.
//! D9 (`transitive-panic`) is computed in [`crate::callgraph`] and
//! injected into [`resolve_file`] as extra findings; D11
//! (`stale-allow`) is decided here, after waiver matching.
//! Suppressions are inline comments of the form
//! `// ert-lint: allow(<rule>) — <justification>` and cover the line
//! they sit on plus the following line; the justification is mandatory.

use std::collections::BTreeSet;

use crate::lexer::{lex, Lexed, LineComment, Token, TokenKind};
use crate::parse::test_item_spans;

/// Rule D1: wall-clock reads outside `ert-bench`/binaries.
pub const WALL_CLOCK: &str = "wall-clock";
/// Rule D2: ambient (non-seeded) randomness anywhere.
pub const AMBIENT_RNG: &str = "ambient-rng";
/// Rule D3: hash-ordered containers in determinism-critical crates.
pub const HASH_CONTAINER: &str = "hash-container";
/// Rule D4: `unwrap`/`expect`/`panic!` in library hot paths.
pub const PANIC_PATH: &str = "panic-path";
/// Rule D5: direct `f64` equality in load/capacity comparisons.
pub const FLOAT_EQ: &str = "float-eq";
/// Rule D6: silently discarded `Result`s in fault-handling code.
pub const SWALLOWED_RESULT: &str = "swallowed-result";
/// Rule D7: raw `std::thread` spawning outside the `ert-par` pool.
pub const RAW_THREAD: &str = "raw-thread";
/// Rule D8: unbounded sample accumulation (`Samples`/`Vec<f64>`) in
/// streaming-capable hot loops.
pub const UNBOUNDED_COLLECTOR: &str = "unbounded-collector";
/// Rule D9: a panic reachable from a hot-path root through the call
/// graph. Detection lives in [`crate::callgraph`]; this module owns the
/// name and the waiver plumbing.
pub const TRANSITIVE_PANIC: &str = "transitive-panic";
/// Rule D10: shared mutable state (`static mut`, locks, atomics,
/// interior mutability) in the crates the shared-nothing sharded core
/// will split. The sharded refactor is only safe if these crates hold
/// no cross-shard state today.
pub const SHARED_STATE: &str = "shared-state";
/// Rule D11: an `ert-lint: allow` that waives nothing. A stale waiver
/// is a hole in the ledger — the next real violation on that line would
/// be silently absorbed.
pub const STALE_ALLOW: &str = "stale-allow";
/// Meta-rule: a malformed `ert-lint:` suppression comment.
pub const SUPPRESSION: &str = "suppression";

/// All suppressible rule names, with their catalog codes.
pub const CATALOG: &[(&str, &str)] = &[
    ("D1", WALL_CLOCK),
    ("D2", AMBIENT_RNG),
    ("D3", HASH_CONTAINER),
    ("D4", PANIC_PATH),
    ("D5", FLOAT_EQ),
    ("D6", SWALLOWED_RESULT),
    ("D7", RAW_THREAD),
    ("D8", UNBOUNDED_COLLECTOR),
    ("D9", TRANSITIVE_PANIC),
    ("D10", SHARED_STATE),
];

/// Rules that report but can never be waived: the suppression machinery
/// must not be able to silence itself. Listed here (with codes) so the
/// SARIF writer can describe them alongside [`CATALOG`].
pub const META_CATALOG: &[(&str, &str)] = &[("D11", STALE_ALLOW), ("S1", SUPPRESSION)];

/// Crates where hash-ordered iteration breaks run reproducibility
/// (rule D3): anything on the seed → trace path.
const D3_CRATES: &[&str] = &["ert-sim", "ert-network", "ert-core", "ert-overlay"];

/// Hot-path modules where a panic would tear down the whole simulated
/// network mid-run (rule D4). These same files are the roots of the D9
/// reachability walk.
pub(crate) const D4_FILES: &[&str] = &[
    "crates/core/src/forward.rs",
    "crates/core/src/adapt.rs",
    "crates/sim/src/engine.rs",
    "crates/network/src/lookup.rs",
    // The wire codec parses untrusted bytes: a panic here is a remote
    // crash vector, so it gets the same panic-path walk as the sim
    // hot paths.
    "crates/node/src/codec.rs",
];

/// Fault-handling code where a silently discarded outcome hides a
/// recovery bug (rule D6): the fault-injection surface and the network
/// modules that interpret fault schedules.
const D6_FILES: &[&str] = &[
    "crates/network/src/network.rs",
    "crates/network/src/topology.rs",
];

/// D6 also covers the whole fault-injection crate.
const D6_CRATES: &[&str] = &["ert-faults"];

/// Hot-loop modules where per-event sample accumulation grows without
/// bound over a run (rule D8): the sim engine and the network event
/// handlers. A `--stream-stats` run must hold O(1) memory per metric,
/// so these files collect through a [`Digest`](../../obs/src/digest.rs)
/// (`Collector`/`StreamSummary`); uses that are bounded by construction
/// carry a justified suppression naming the bound.
const D8_FILES: &[&str] = &["crates/sim/src/engine.rs", "crates/network/src/network.rs"];

/// Crates the shared-nothing sharded core (ROADMAP item 1) will split
/// into per-shard instances (rule D10). Any shared mutable state here
/// is a blocker for that refactor, so it must be absent or carry a
/// justification that names its single-threaded invariant.
const D10_CRATES: &[&str] = &["ert-sim", "ert-network", "ert-core"];

/// Type names whose appearance in a D10 crate means cross-thread or
/// interior-mutable shared state.
const D10_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "OnceLock",
    "OnceCell",
    "LazyLock",
    "Condvar",
    "Barrier",
    "RefCell",
    "Cell",
    "UnsafeCell",
];

/// Where a source file sits in the workspace; decides rule scope.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Cargo package name the file belongs to (e.g. `ert-core`).
    pub crate_name: String,
    /// True for `src/bin/*`, `src/main.rs`, benches, and examples —
    /// leaf targets where wall-clock time is legitimate.
    pub is_binary: bool,
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (one of the `pub const` rule names in this module).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of what fired.
    pub message: String,
}

/// A violation that an inline `ert-lint: allow` comment waived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The waived violation.
    pub violation: Violation,
    /// The justification text from the suppression comment.
    pub justification: String,
}

/// Outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations that stand (fail the build).
    pub violations: Vec<Violation>,
    /// Violations waived by a justified suppression.
    pub suppressed: Vec<Suppressed>,
}

/// An `ert-lint: allow` comment, parsed.
struct Allow {
    line: u32,
    rules: Vec<String>,
    justification: String,
}

/// A file lexed and rule-checked, with suppression matching still
/// pending. The workspace pass parks every file in this state, computes
/// the cross-file D9 findings from the pooled token streams, and only
/// then lets [`resolve_file`] decide what stands, what is waived, and
/// which waivers are stale.
pub struct FileAnalysis {
    /// The file's location/scope context.
    pub ctx: FileContext,
    /// The token stream — reused by the item parser and the call-graph
    /// builder so every file is lexed exactly once per run.
    pub lexed: Lexed,
    raw: Vec<Violation>,
    malformed: Vec<Violation>,
    allows: Vec<Allow>,
}

/// Rules a single-file pass cannot evaluate: their waivers are only
/// checked for staleness (D11) when the workspace pass supplies the
/// cross-file findings.
const WORKSPACE_RULES: &[&str] = &[TRANSITIVE_PANIC];

/// Lexes `src` and runs every file-local rule, deferring waiver
/// resolution to [`resolve_file`].
pub fn analyze_file(src: &str, ctx: &FileContext) -> FileAnalysis {
    let lexed = lex(src);
    let (allows, malformed) = parse_allows(&lexed.comments, ctx);
    let raw = run_rules(&lexed.tokens, ctx);
    FileAnalysis {
        ctx: ctx.clone(),
        lexed,
        raw,
        malformed,
        allows,
    }
}

/// Matches violations (file-local plus the `extra` cross-file ones)
/// against the file's suppressions and flags stale waivers (D11).
///
/// `workspace_pass` says whether `extra` reflects a full workspace
/// analysis: only then can an `allow(transitive-panic)` that waived
/// nothing be called stale.
pub fn resolve_file(
    analysis: FileAnalysis,
    extra: &[Violation],
    workspace_pass: bool,
) -> FileOutcome {
    let FileAnalysis {
        ctx,
        raw,
        malformed,
        allows,
        ..
    } = analysis;
    let mut out = FileOutcome {
        violations: malformed,
        ..FileOutcome::default()
    };
    // Which rule names each allow actually waived, for D11.
    let mut waived: Vec<BTreeSet<&'static str>> = vec![BTreeSet::new(); allows.len()];
    let mut all = raw;
    all.extend(extra.iter().cloned());
    for v in all {
        // A suppression covers its own line and the next one, so it can
        // trail the offending expression or sit on the line above it.
        let waiver = allows.iter().position(|a| {
            (a.line == v.line || a.line + 1 == v.line) && a.rules.iter().any(|r| r == v.rule)
        });
        match waiver {
            Some(ai) => {
                waived[ai].insert(v.rule);
                out.suppressed.push(Suppressed {
                    violation: v,
                    justification: allows[ai].justification.clone(),
                });
            }
            None => out.violations.push(v),
        }
    }
    // D11: every rule an allow names must have earned its keep.
    for (ai, a) in allows.iter().enumerate() {
        for r in &a.rules {
            if !workspace_pass && WORKSPACE_RULES.contains(&r.as_str()) {
                continue;
            }
            if !waived[ai].contains(r.as_str()) {
                out.violations.push(Violation {
                    rule: STALE_ALLOW,
                    file: ctx.rel_path.clone(),
                    line: a.line,
                    message: format!(
                        "`allow({r})` waives nothing; the violation it masked is gone — \
                         delete the suppression (a stale waiver would silently absorb the \
                         next real `{r}` finding on this line)"
                    ),
                });
            }
        }
    }
    out
}

/// Lints `src` as the file described by `ctx`, single-file mode.
pub fn check_file(src: &str, ctx: &FileContext) -> FileOutcome {
    resolve_file(analyze_file(src, ctx), &[], false)
}

fn run_rules(tokens: &[Token], ctx: &FileContext) -> Vec<Violation> {
    let mut vs = Vec::new();
    let test_spans = test_item_spans(tokens);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx <= b);

    let d1 = ctx.crate_name != "ert-bench" && !ctx.is_binary;
    let d3 = D3_CRATES.contains(&ctx.crate_name.as_str());
    let d4 = D4_FILES.contains(&ctx.rel_path.as_str());
    let d6 =
        D6_FILES.contains(&ctx.rel_path.as_str()) || D6_CRATES.contains(&ctx.crate_name.as_str());
    // All fan-out goes through the ert-par pool so results keep their
    // canonical order; the pool itself, benches, and leaf binaries may
    // spawn. Deliberately no test exemption: a test that spawns raw
    // threads can still scramble shared-sink ordering.
    let d7 = ctx.crate_name != "ert-par" && ctx.crate_name != "ert-bench" && !ctx.is_binary;
    let d8 = D8_FILES.contains(&ctx.rel_path.as_str());
    let d10 = D10_CRATES.contains(&ctx.crate_name.as_str());

    let ident = |i: usize| match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize| match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(*p),
        _ => None,
    };
    let mut push = |rule, line, message: String| {
        vs.push(Violation {
            rule,
            file: ctx.rel_path.clone(),
            line,
            message,
        })
    };

    for i in 0..tokens.len() {
        let line = tokens[i].line;
        match ident(i) {
            Some("Instant") if d1 && punct(i + 1) == Some("::") && ident(i + 2) == Some("now") => {
                push(
                    WALL_CLOCK,
                    line,
                    "wall-clock read `Instant::now()`; sims must be pure functions of the seed \
                     (use the event clock)"
                        .into(),
                );
            }
            Some("SystemTime") if d1 => {
                push(
                    WALL_CLOCK,
                    line,
                    "wall-clock type `SystemTime`; sims must be pure functions of the seed".into(),
                );
            }
            Some(r @ ("thread_rng" | "from_entropy" | "OsRng")) => {
                push(
                    AMBIENT_RNG,
                    line,
                    format!("ambient randomness `{r}`; derive all RNG state from the run seed"),
                );
            }
            Some(h @ ("HashMap" | "HashSet")) if d3 => {
                push(
                    HASH_CONTAINER,
                    line,
                    format!(
                        "`{h}` in determinism-critical crate `{}`; iteration order is \
                         randomized — use BTreeMap/BTreeSet",
                        ctx.crate_name
                    ),
                );
            }
            Some(m @ ("unwrap" | "expect"))
                if d4
                    && !in_test(i)
                    && matches!(punct(i.wrapping_sub(1)), Some(".") | Some("::"))
                    && punct(i + 1) == Some("(") =>
            {
                push(
                    PANIC_PATH,
                    line,
                    format!(
                        "`.{m}()` in hot path; propagate with `?`/`Result` or add a justified \
                         `ert-lint: allow(panic-path)`"
                    ),
                );
            }
            Some(m @ ("panic" | "unreachable" | "todo" | "unimplemented"))
                if d4 && !in_test(i) && punct(i + 1) == Some("!") =>
            {
                push(
                    PANIC_PATH,
                    line,
                    format!("`{m}!` in hot path; return an error value instead"),
                );
            }
            // `let _ = ...` (with or without a type ascription the
            // lexer would split after `_`) discards an outcome.
            Some("let")
                if d6
                    && !in_test(i)
                    && ident(i + 1) == Some("_")
                    && matches!(punct(i + 2), Some("=") | Some(":")) =>
            {
                push(
                    SWALLOWED_RESULT,
                    line,
                    "`let _ =` discards a result in fault-handling code; handle the \
                     outcome or bind it to a named `_reason` with a comment"
                        .into(),
                );
            }
            Some(m @ ("spawn" | "scope"))
                if d7
                    && punct(i.wrapping_sub(1)) == Some("::")
                    && ident(i.wrapping_sub(2)) == Some("thread") =>
            {
                push(
                    RAW_THREAD,
                    line,
                    format!(
                        "raw `thread::{m}` outside `ert-par`; fan out through the \
                         deterministic pool (`ert_par::run_labeled`) so results keep \
                         canonical order"
                    ),
                );
            }
            Some("Samples") if d8 && !in_test(i) => {
                push(
                    UNBOUNDED_COLLECTOR,
                    line,
                    "`Samples` accumulates every observation in a hot loop; collect \
                     through a `Digest` (`Collector`/`StreamSummary`) or justify the \
                     bound with `ert-lint: allow(unbounded-collector)`"
                        .into(),
                );
            }
            Some("Vec")
                if d8
                    && !in_test(i)
                    && punct(i + 1) == Some("<")
                    && ident(i + 2) == Some("f64")
                    && punct(i + 3) == Some(">") =>
            {
                push(
                    UNBOUNDED_COLLECTOR,
                    line,
                    "`Vec<f64>` push-accumulation in a hot loop grows with run length; \
                     use an O(1) `Digest` sketch or justify the bound"
                        .into(),
                );
            }
            Some("ok")
                if d6
                    && !in_test(i)
                    && punct(i.wrapping_sub(1)) == Some(".")
                    && punct(i + 1) == Some("(")
                    && punct(i + 2) == Some(")")
                    && punct(i + 3) == Some(";") =>
            {
                push(
                    SWALLOWED_RESULT,
                    line,
                    "`.ok();` swallows a Result in fault-handling code; propagate the \
                     error or record why it is safe to drop"
                        .into(),
                );
            }
            Some(t) if d10 && !in_test(i) && D10_TYPES.contains(&t) => {
                push(
                    SHARED_STATE,
                    line,
                    format!(
                        "`{t}` is shared/interior-mutable state in `{}`; the shared-nothing \
                         sharded core requires these crates to hold none — restructure, or \
                         justify with `ert-lint: allow(shared-state)` naming the \
                         single-threaded invariant",
                        ctx.crate_name
                    ),
                );
            }
            Some(t)
                if d10 && !in_test(i) && t.starts_with("Atomic") && t.len() > "Atomic".len() =>
            {
                push(
                    SHARED_STATE,
                    line,
                    format!(
                        "atomic `{t}` in `{}`; cross-thread state is a blocker for the \
                         shared-nothing sharded core",
                        ctx.crate_name
                    ),
                );
            }
            Some("static") if d10 && !in_test(i) && ident(i + 1) == Some("mut") => {
                push(
                    SHARED_STATE,
                    line,
                    "`static mut` is process-global mutable state; thread it through \
                     explicit parameters instead"
                        .into(),
                );
            }
            Some("thread_local") if d10 && !in_test(i) && punct(i + 1) == Some("!") => {
                push(
                    SHARED_STATE,
                    line,
                    "`thread_local!` hides per-thread state from the shard boundary; \
                     pass state explicitly"
                        .into(),
                );
            }
            _ => {}
        }

        if matches!(punct(i), Some("==") | Some("!=")) {
            let float_operand = [i.wrapping_sub(1), i + 1]
                .iter()
                .any(|&j| matches!(tokens.get(j).map(|t| &t.kind), Some(TokenKind::Float)));
            let loady = |j: usize| {
                ident(j).is_some_and(|s| {
                    let s = s.to_ascii_lowercase();
                    s.contains("load") || s.contains("capacity") || s.contains("congestion")
                })
            };
            if float_operand || (loady(i.wrapping_sub(1)) && loady(i + 1)) {
                push(
                    FLOAT_EQ,
                    tokens[i].line,
                    "direct float equality; compare with an epsilon, `total_cmp`, or integer \
                     units"
                        .into(),
                );
            }
        }
    }
    vs
}

/// Parses `ert-lint: allow(...)` comments; malformed ones (unknown
/// rule, missing justification) come back as violations in their own
/// right so a suppression can never silently rot.
fn parse_allows(comments: &[LineComment], ctx: &FileContext) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    let known: Vec<&str> = CATALOG.iter().map(|&(_, name)| name).collect();
    for c in comments {
        if c.doc {
            continue; // Rustdoc may *describe* the syntax; only plain
                      // `//` comments carry live suppressions.
        }
        let Some(pos) = c.text.find("ert-lint:") else {
            continue;
        };
        let mut fail = |msg: String| {
            bad.push(Violation {
                rule: SUPPRESSION,
                file: ctx.rel_path.clone(),
                line: c.line,
                message: msg,
            })
        };
        let rest = c.text[pos + "ert-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            fail("malformed suppression: expected `ert-lint: allow(<rule>) — <why>`".into());
            continue;
        };
        let Some(close) = args.find(')') else {
            fail("malformed suppression: unclosed `allow(`".into());
            continue;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            fail("suppression names no rule".into());
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| !known.contains(&r.as_str())) {
            fail(format!(
                "suppression names unknown rule `{unknown}` (known: {})",
                known.join(", ")
            ));
            continue;
        }
        let justification = args[close + 1..]
            .trim_start_matches(|ch: char| {
                ch.is_whitespace() || matches!(ch, '-' | '—' | '–' | ':')
            })
            .trim()
            .to_string();
        if justification.is_empty() {
            fail("suppression has no justification; say why the rule is safe to waive here".into());
            continue;
        }
        allows.push(Allow {
            line: c.line,
            rules,
            justification,
        });
    }
    (allows, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(rel: &str, krate: &str) -> FileContext {
        FileContext {
            rel_path: rel.into(),
            crate_name: krate.into(),
            is_binary: false,
        }
    }

    fn rules_fired(src: &str, c: &FileContext) -> Vec<&'static str> {
        check_file(src, c)
            .violations
            .iter()
            .map(|v| v.rule)
            .collect()
    }

    // ---- D1 wall-clock: fires / doesn't fire / suppressed ----

    #[test]
    fn d1_fires_in_library_code() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(
            rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![WALL_CLOCK]
        );
        let src2 = "use std::time::SystemTime;";
        assert_eq!(
            rules_fired(src2, &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![WALL_CLOCK]
        );
    }

    #[test]
    fn d1_exempts_bench_and_binaries() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(rules_fired(src, &ctx("crates/bench/src/lib.rs", "ert-bench")).is_empty());
        let mut bin = ctx("crates/x/src/bin/tool.rs", "ert-x");
        bin.is_binary = true;
        assert!(rules_fired(src, &bin).is_empty());
        // `Instant` without `::now` (e.g. a type in a signature that a
        // binary passes in) is not flagged either.
        assert!(
            rules_fired("fn g(t: Instant) {}", &ctx("crates/x/src/lib.rs", "ert-x")).is_empty()
        );
    }

    #[test]
    fn d1_suppressed_with_justification() {
        let src = "// ert-lint: allow(wall-clock) — progress logging only, not sim state\n\
                   fn f() { let t = Instant::now(); }";
        let out = check_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
        assert!(out.suppressed[0].justification.contains("progress logging"));
    }

    // ---- D2 ambient-rng ----

    #[test]
    fn d2_fires_everywhere_even_bench() {
        let src = "fn f() { let mut r = thread_rng(); }";
        assert_eq!(
            rules_fired(src, &ctx("crates/bench/src/lib.rs", "ert-bench")),
            vec![AMBIENT_RNG]
        );
        let src2 = "let r = SmallRng::from_entropy();";
        assert_eq!(
            rules_fired(src2, &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![AMBIENT_RNG]
        );
    }

    #[test]
    fn d2_ignores_seeded_rng_and_strings() {
        let src = "let r = ChaCha8Rng::seed_from_u64(42); let s = \"thread_rng\";";
        assert!(rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x")).is_empty());
    }

    #[test]
    fn d2_suppressed() {
        let src = "let r = thread_rng(); // ert-lint: allow(ambient-rng) - test shim\n";
        let out = check_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D3 hash-container ----

    #[test]
    fn d3_fires_in_scoped_crates_only() {
        let src = "use std::collections::HashMap;";
        for k in ["ert-sim", "ert-network", "ert-core", "ert-overlay"] {
            assert_eq!(
                rules_fired(src, &ctx("crates/k/src/lib.rs", k)),
                vec![HASH_CONTAINER]
            );
        }
        assert!(rules_fired(
            src,
            &ctx("crates/experiments/src/lib.rs", "ert-experiments")
        )
        .is_empty());
    }

    #[test]
    fn d3_suppressed_on_previous_line() {
        let src = "// ert-lint: allow(hash-container) — drained through a sorted Vec below\n\
                   use std::collections::HashSet;";
        let out = check_file(src, &ctx("crates/core/src/x.rs", "ert-core"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D4 panic-path ----

    #[test]
    fn d4_fires_only_in_hot_path_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(
            rules_fired(src, &ctx("crates/core/src/forward.rs", "ert-core")),
            vec![PANIC_PATH]
        );
        assert!(rules_fired(src, &ctx("crates/core/src/table.rs", "ert-core")).is_empty());
        let src2 = "fn g() { panic!(\"boom\"); }";
        assert_eq!(
            rules_fired(src2, &ctx("crates/sim/src/engine.rs", "ert-sim")),
            vec![PANIC_PATH]
        );
    }

    #[test]
    fn d4_ignores_tests_and_expect_named_fields() {
        let src = "fn f() -> u32 { 1 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { Some(1).unwrap(); Option::<u32>::None.expect(\"x\"); }\n\
                   }\n";
        assert!(rules_fired(src, &ctx("crates/core/src/forward.rs", "ert-core")).is_empty());
        // A struct field named `expect` is not a call.
        let src2 = "struct S { expect: u32 } fn f(s: S) -> u32 { s.expect }";
        assert!(rules_fired(src2, &ctx("crates/core/src/forward.rs", "ert-core")).is_empty());
    }

    #[test]
    fn d4_suppressed_with_invariant_note() {
        let src = "fn f(v: &[u32]) -> u32 {\n\
                   // ert-lint: allow(panic-path) — v is non-empty: callers check is_empty first\n\
                   *v.first().unwrap()\n\
                   }";
        let out = check_file(src, &ctx("crates/core/src/adapt.rs", "ert-core"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D5 float-eq ----

    #[test]
    fn d5_fires_on_float_literal_equality() {
        assert_eq!(
            rules_fired("if x == 0.5 {}", &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![FLOAT_EQ]
        );
        assert_eq!(
            rules_fired(
                "if load != capacity {}",
                &ctx("crates/x/src/lib.rs", "ert-x")
            ),
            vec![FLOAT_EQ]
        );
    }

    #[test]
    fn d5_ignores_integer_equality() {
        assert!(rules_fired(
            "if self.capacity == 0 {}",
            &ctx("crates/x/src/lib.rs", "ert-x")
        )
        .is_empty());
        assert!(rules_fired("if n == 17 {}", &ctx("crates/x/src/lib.rs", "ert-x")).is_empty());
    }

    #[test]
    fn d5_suppressed() {
        let src = "if g == 1.0 { return 1.0; } // ert-lint: allow(float-eq) — exact sentinel\n";
        let out = check_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D6 swallowed-result ----

    #[test]
    fn d6_fires_in_fault_handling_scope_only() {
        let src = "fn f() { let _ = send(); }";
        assert_eq!(
            rules_fired(src, &ctx("crates/network/src/network.rs", "ert-network")),
            vec![SWALLOWED_RESULT]
        );
        assert_eq!(
            rules_fired(src, &ctx("crates/faults/src/plan.rs", "ert-faults")),
            vec![SWALLOWED_RESULT]
        );
        // Out of scope: same pattern elsewhere is fine.
        assert!(rules_fired(src, &ctx("crates/core/src/table.rs", "ert-core")).is_empty());
    }

    #[test]
    fn d6_fires_on_trailing_ok() {
        let src = "fn f() { send().ok(); }";
        assert_eq!(
            rules_fired(src, &ctx("crates/network/src/topology.rs", "ert-network")),
            vec![SWALLOWED_RESULT]
        );
        // `.ok()` feeding into something is a conversion, not a swallow.
        let src2 = "fn f() -> Option<u32> { send().ok() }";
        assert!(
            rules_fired(src2, &ctx("crates/network/src/topology.rs", "ert-network")).is_empty()
        );
    }

    #[test]
    fn d6_ignores_named_bindings_and_tests() {
        // A named placeholder keeps the discard visible and greppable.
        let src = "fn f() { let _ignored = send(); }";
        assert!(rules_fired(src, &ctx("crates/faults/src/plan.rs", "ert-faults")).is_empty());
        let src2 = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() { let _ = send(); send().ok(); }\n}";
        assert!(rules_fired(src2, &ctx("crates/network/src/network.rs", "ert-network")).is_empty());
    }

    #[test]
    fn d6_suppressed_with_justification() {
        let src = "// ert-lint: allow(swallowed-result) — best-effort telemetry flush, failure is benign\n\
                   fn f() { flush().ok(); }";
        let out = check_file(src, &ctx("crates/faults/src/chaos.rs", "ert-faults"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D7 raw-thread ----

    #[test]
    fn d7_fires_on_spawn_and_scope_in_library_code() {
        let c = ctx("crates/network/src/network.rs", "ert-network");
        assert!(rules_fired("fn f() { std::thread::spawn(|| {}); }", &c).contains(&RAW_THREAD));
        assert!(rules_fired("fn f() { thread::scope(|s| {}); }", &c).contains(&RAW_THREAD));
    }

    #[test]
    fn d7_exempts_the_pool_benches_and_binaries() {
        let src = "fn f() { std::thread::scope(|s| {}); }";
        assert!(rules_fired(src, &ctx("crates/par/src/lib.rs", "ert-par")).is_empty());
        assert!(rules_fired(src, &ctx("crates/bench/src/lib.rs", "ert-bench")).is_empty());
        let mut bin = ctx("crates/experiments/src/bin/fig4.rs", "ert-experiments");
        bin.is_binary = true;
        assert!(rules_fired(src, &bin).is_empty());
    }

    #[test]
    fn d7_has_no_test_exemption_and_ignores_other_scopes() {
        // Unlike D4/D6, a `#[cfg(test)]` block does not waive D7.
        let src = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() { std::thread::spawn(|| {}); }\n}";
        assert_eq!(
            rules_fired(src, &ctx("crates/sim/src/engine.rs", "ert-sim")),
            vec![RAW_THREAD]
        );
        // `scope`/`spawn` not qualified by `thread::` are other APIs.
        let src2 = "fn f(s: &Scope) { s.spawn(|| {}); tracing::scope(); }";
        assert!(rules_fired(src2, &ctx("crates/sim/src/engine.rs", "ert-sim")).is_empty());
    }

    #[test]
    fn d7_suppressed_with_justification() {
        let src = "// ert-lint: allow(raw-thread) — watchdog thread, no sim results cross it\n\
                   fn f() { std::thread::spawn(|| {}); }";
        let out = check_file(src, &ctx("crates/faults/src/chaos.rs", "ert-faults"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D8 unbounded-collector ----

    #[test]
    fn d8_fires_in_hot_loop_files_only() {
        let src = "fn f() { let mut s = Samples::new(); }";
        assert_eq!(
            rules_fired(src, &ctx("crates/sim/src/engine.rs", "ert-sim")),
            vec![UNBOUNDED_COLLECTOR]
        );
        let src2 = "struct S { lat: Vec<f64> }";
        assert_eq!(
            rules_fired(src2, &ctx("crates/network/src/network.rs", "ert-network")),
            vec![UNBOUNDED_COLLECTOR]
        );
        // Out of scope: aggregation/reporting code may hold full
        // sample sets — `Samples` itself lives in ert-sim's stats.
        assert!(rules_fired(src, &ctx("crates/sim/src/stats.rs", "ert-sim")).is_empty());
        assert!(rules_fired(src2, &ctx("crates/network/src/metrics.rs", "ert-network")).is_empty());
    }

    #[test]
    fn d8_ignores_tests_and_other_element_types() {
        let src = "#[cfg(test)]\nmod tests {\n#[test]\n\
                   fn t() { let s = Samples::new(); let v: Vec<f64> = vec![]; }\n}";
        assert!(rules_fired(src, &ctx("crates/sim/src/engine.rs", "ert-sim")).is_empty());
        // Integer vectors are bounded by what they index, not by run
        // length in observations; D8 only names the sample buffers.
        let src2 = "fn f() { let v: Vec<u64> = Vec::new(); }";
        assert!(rules_fired(src2, &ctx("crates/network/src/network.rs", "ert-network")).is_empty());
    }

    #[test]
    fn d8_suppressed_with_bound_note() {
        let src =
            "// ert-lint: allow(unbounded-collector) — fresh per tick, bounded by host count\n\
             fn f() { let mut c = Samples::new(); }";
        let out = check_file(src, &ctx("crates/network/src/network.rs", "ert-network"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
        assert!(out.suppressed[0].justification.contains("bounded"));
    }

    // ---- suppression hygiene ----

    #[test]
    fn suppression_without_justification_is_a_violation() {
        let src = "let r = thread_rng(); // ert-lint: allow(ambient-rng)\n";
        let fired = rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(fired.contains(&SUPPRESSION));
        assert!(fired.contains(&AMBIENT_RNG)); // Broken waiver does not waive.
    }

    #[test]
    fn suppression_with_unknown_rule_is_a_violation() {
        let src = "// ert-lint: allow(no-such-rule) — whatever\nfn f() {}";
        assert_eq!(
            rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![SUPPRESSION]
        );
    }

    #[test]
    fn suppression_only_reaches_adjacent_line() {
        let src = "// ert-lint: allow(ambient-rng) — shim\n\nlet r = thread_rng();\n";
        let fired = rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        // Two lines away: not covered — the violation stands, and the
        // waiver that reached nothing is itself stale (D11).
        assert_eq!(fired, vec![AMBIENT_RNG, STALE_ALLOW]);
    }

    #[test]
    fn doc_comments_describing_the_syntax_are_inert() {
        let src = "/// Waive with `ert-lint: allow(<rule>) — <why>`.\nfn f() {}";
        assert!(rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x")).is_empty());
        // ...and a doc comment cannot waive a real violation either.
        let src2 = "/// ert-lint: allow(ambient-rng) — nope\nfn f() { thread_rng(); }";
        assert_eq!(
            rules_fired(src2, &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![AMBIENT_RNG]
        );
    }

    #[test]
    fn one_comment_can_waive_multiple_rules() {
        let src = "// ert-lint: allow(ambient-rng, wall-clock) — fixture exercising both\n\
                   fn f() { thread_rng(); Instant::now(); }";
        let out = check_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 2);
    }

    // ---- D10 shared-state ----

    #[test]
    fn d10_fires_on_locks_and_interior_mutability_in_scoped_crates() {
        for src in [
            "use std::sync::Mutex;",
            "struct S { inner: RwLock<u32> }",
            "static INIT: OnceLock<u32> = OnceLock::new();",
            "use std::cell::RefCell;",
            "fn f(c: &Cell<u32>) {}",
        ] {
            for k in ["ert-sim", "ert-network", "ert-core"] {
                assert!(
                    rules_fired(src, &ctx("crates/k/src/lib.rs", k)).contains(&SHARED_STATE),
                    "{src} should fire in {k}"
                );
            }
        }
        // Out of scope: the telemetry sink and the ert-par pool share
        // state on purpose.
        assert!(rules_fired(
            "use std::sync::Mutex;",
            &ctx("crates/telemetry/src/sink.rs", "ert-telemetry")
        )
        .is_empty());
    }

    #[test]
    fn d10_fires_on_static_mut_atomics_and_thread_local() {
        let c = ctx("crates/sim/src/engine.rs", "ert-sim");
        assert!(rules_fired("static mut COUNTER: u64 = 0;", &c).contains(&SHARED_STATE));
        assert!(rules_fired("use std::sync::atomic::AtomicUsize;", &c).contains(&SHARED_STATE));
        assert!(rules_fired("thread_local! { static TLS: u32 = 0; }", &c).contains(&SHARED_STATE));
        // Immutable statics and non-atomic idents stay quiet.
        assert!(rules_fired("static LIMIT: u64 = 8;", &c).is_empty());
        assert!(rules_fired("fn atomic_step() {}", &c).is_empty());
    }

    #[test]
    fn d10_exempts_tests_and_takes_suppressions() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}";
        assert!(rules_fired(src, &ctx("crates/sim/src/x.rs", "ert-sim")).is_empty());
        let src2 = "// ert-lint: allow(shared-state) — single-threaded by construction\n\
                    use std::cell::RefCell;";
        let out = check_file(src2, &ctx("crates/sim/src/stats.rs", "ert-sim"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D11 stale-allow ----

    #[test]
    fn d11_flags_an_allow_that_waives_nothing() {
        let src = "// ert-lint: allow(wall-clock) — leftover from a removed Instant\nfn f() {}";
        let out = check_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].rule, STALE_ALLOW);
        assert_eq!(out.violations[0].line, 1);
    }

    #[test]
    fn d11_staleness_is_per_rule_within_one_comment() {
        let src = "// ert-lint: allow(ambient-rng, wall-clock) — only one still real\n\
                   fn f() { thread_rng(); }";
        let out = check_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert_eq!(
            out.violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
            vec![STALE_ALLOW],
            "the wall-clock half is stale"
        );
        assert_eq!(out.suppressed.len(), 1, "the ambient-rng half still waives");
    }

    #[test]
    fn d11_defers_transitive_panic_allows_to_the_workspace_pass() {
        // A file-local pass cannot see the call graph, so it must not
        // call a transitive-panic waiver stale...
        let src = "// ert-lint: allow(transitive-panic) — len checked by caller\nfn f() {}";
        let out = check_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(out.violations.is_empty());
        // ...but the workspace pass, given no matching finding, does.
        let analysis = analyze_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        let out2 = resolve_file(analysis, &[], true);
        assert_eq!(
            out2.violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
            vec![STALE_ALLOW]
        );
    }

    #[test]
    fn d11_itself_cannot_be_waived() {
        // `allow(stale-allow)` names a meta-rule outside the catalog:
        // the ledger-keeper cannot be silenced.
        let src = "// ert-lint: allow(stale-allow) — nice try\nfn f() {}";
        let fired = rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert_eq!(fired, vec![SUPPRESSION]);
    }

    #[test]
    fn workspace_extras_are_waivable_and_counted_for_staleness() {
        let src = "fn helper(x: Option<u32>) -> u32 {\n\
                   // ert-lint: allow(transitive-panic) — caller guarantees Some\n\
                   x.unwrap()\n\
                   }";
        let c = ctx("crates/x/src/helper.rs", "ert-x");
        let extra = vec![Violation {
            rule: TRANSITIVE_PANIC,
            file: c.rel_path.clone(),
            line: 3,
            message: "reachable panic".into(),
        }];
        let out = resolve_file(analyze_file(src, &c), &extra, true);
        assert!(out.violations.is_empty(), "waiver covers the injected D9");
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].violation.rule, TRANSITIVE_PANIC);
    }
}
