//! The D1–D8 rule catalog and the engine that applies it to one file.
//!
//! Every rule is purely token-based (see [`crate::lexer`]); scope is
//! decided from the [`FileContext`] the workspace walker supplies.
//! Suppressions are inline comments of the form
//! `// ert-lint: allow(<rule>) — <justification>` and cover the line
//! they sit on plus the following line; the justification is mandatory.

use crate::lexer::{lex, LineComment, Token, TokenKind};

/// Rule D1: wall-clock reads outside `ert-bench`/binaries.
pub const WALL_CLOCK: &str = "wall-clock";
/// Rule D2: ambient (non-seeded) randomness anywhere.
pub const AMBIENT_RNG: &str = "ambient-rng";
/// Rule D3: hash-ordered containers in determinism-critical crates.
pub const HASH_CONTAINER: &str = "hash-container";
/// Rule D4: `unwrap`/`expect`/`panic!` in library hot paths.
pub const PANIC_PATH: &str = "panic-path";
/// Rule D5: direct `f64` equality in load/capacity comparisons.
pub const FLOAT_EQ: &str = "float-eq";
/// Rule D6: silently discarded `Result`s in fault-handling code.
pub const SWALLOWED_RESULT: &str = "swallowed-result";
/// Rule D7: raw `std::thread` spawning outside the `ert-par` pool.
pub const RAW_THREAD: &str = "raw-thread";
/// Rule D8: unbounded sample accumulation (`Samples`/`Vec<f64>`) in
/// streaming-capable hot loops.
pub const UNBOUNDED_COLLECTOR: &str = "unbounded-collector";
/// Meta-rule: a malformed `ert-lint:` suppression comment.
pub const SUPPRESSION: &str = "suppression";

/// All suppressible rule names, with their catalog codes.
pub const CATALOG: &[(&str, &str)] = &[
    ("D1", WALL_CLOCK),
    ("D2", AMBIENT_RNG),
    ("D3", HASH_CONTAINER),
    ("D4", PANIC_PATH),
    ("D5", FLOAT_EQ),
    ("D6", SWALLOWED_RESULT),
    ("D7", RAW_THREAD),
    ("D8", UNBOUNDED_COLLECTOR),
];

/// Crates where hash-ordered iteration breaks run reproducibility
/// (rule D3): anything on the seed → trace path.
const D3_CRATES: &[&str] = &["ert-sim", "ert-network", "ert-core", "ert-overlay"];

/// Hot-path modules where a panic would tear down the whole simulated
/// network mid-run (rule D4).
const D4_FILES: &[&str] = &[
    "crates/core/src/forward.rs",
    "crates/core/src/adapt.rs",
    "crates/sim/src/engine.rs",
    "crates/network/src/lookup.rs",
];

/// Fault-handling code where a silently discarded outcome hides a
/// recovery bug (rule D6): the fault-injection surface and the network
/// modules that interpret fault schedules.
const D6_FILES: &[&str] = &[
    "crates/network/src/network.rs",
    "crates/network/src/topology.rs",
];

/// D6 also covers the whole fault-injection crate.
const D6_CRATES: &[&str] = &["ert-faults"];

/// Hot-loop modules where per-event sample accumulation grows without
/// bound over a run (rule D8): the sim engine and the network event
/// handlers. A `--stream-stats` run must hold O(1) memory per metric,
/// so these files collect through a [`Digest`](../../obs/src/digest.rs)
/// (`Collector`/`StreamSummary`); uses that are bounded by construction
/// carry a justified suppression naming the bound.
const D8_FILES: &[&str] = &["crates/sim/src/engine.rs", "crates/network/src/network.rs"];

/// Where a source file sits in the workspace; decides rule scope.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Cargo package name the file belongs to (e.g. `ert-core`).
    pub crate_name: String,
    /// True for `src/bin/*`, `src/main.rs`, benches, and examples —
    /// leaf targets where wall-clock time is legitimate.
    pub is_binary: bool,
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (one of the `pub const` rule names in this module).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of what fired.
    pub message: String,
}

/// A violation that an inline `ert-lint: allow` comment waived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The waived violation.
    pub violation: Violation,
    /// The justification text from the suppression comment.
    pub justification: String,
}

/// Outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations that stand (fail the build).
    pub violations: Vec<Violation>,
    /// Violations waived by a justified suppression.
    pub suppressed: Vec<Suppressed>,
}

/// An `ert-lint: allow` comment, parsed.
struct Allow {
    line: u32,
    rules: Vec<String>,
    justification: String,
}

/// Lints `src` as the file described by `ctx`.
pub fn check_file(src: &str, ctx: &FileContext) -> FileOutcome {
    let lexed = lex(src);
    let mut out = FileOutcome::default();
    let (allows, mut malformed) = parse_allows(&lexed.comments, ctx);
    out.violations.append(&mut malformed);

    let raw = run_rules(&lexed.tokens, ctx);
    for v in raw {
        // A suppression covers its own line and the next one, so it can
        // trail the offending expression or sit on the line above it.
        let waiver = allows.iter().find(|a| {
            (a.line == v.line || a.line + 1 == v.line) && a.rules.iter().any(|r| r == v.rule)
        });
        match waiver {
            Some(a) => out.suppressed.push(Suppressed {
                violation: v,
                justification: a.justification.clone(),
            }),
            None => out.violations.push(v),
        }
    }
    out
}

fn run_rules(tokens: &[Token], ctx: &FileContext) -> Vec<Violation> {
    let mut vs = Vec::new();
    let test_spans = test_item_spans(tokens);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx <= b);

    let d1 = ctx.crate_name != "ert-bench" && !ctx.is_binary;
    let d3 = D3_CRATES.contains(&ctx.crate_name.as_str());
    let d4 = D4_FILES.contains(&ctx.rel_path.as_str());
    let d6 =
        D6_FILES.contains(&ctx.rel_path.as_str()) || D6_CRATES.contains(&ctx.crate_name.as_str());
    // All fan-out goes through the ert-par pool so results keep their
    // canonical order; the pool itself, benches, and leaf binaries may
    // spawn. Deliberately no test exemption: a test that spawns raw
    // threads can still scramble shared-sink ordering.
    let d7 = ctx.crate_name != "ert-par" && ctx.crate_name != "ert-bench" && !ctx.is_binary;
    let d8 = D8_FILES.contains(&ctx.rel_path.as_str());

    let ident = |i: usize| match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize| match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(*p),
        _ => None,
    };
    let mut push = |rule, line, message: String| {
        vs.push(Violation {
            rule,
            file: ctx.rel_path.clone(),
            line,
            message,
        })
    };

    for i in 0..tokens.len() {
        let line = tokens[i].line;
        match ident(i) {
            Some("Instant") if d1 && punct(i + 1) == Some("::") && ident(i + 2) == Some("now") => {
                push(
                    WALL_CLOCK,
                    line,
                    "wall-clock read `Instant::now()`; sims must be pure functions of the seed \
                     (use the event clock)"
                        .into(),
                );
            }
            Some("SystemTime") if d1 => {
                push(
                    WALL_CLOCK,
                    line,
                    "wall-clock type `SystemTime`; sims must be pure functions of the seed".into(),
                );
            }
            Some(r @ ("thread_rng" | "from_entropy" | "OsRng")) => {
                push(
                    AMBIENT_RNG,
                    line,
                    format!("ambient randomness `{r}`; derive all RNG state from the run seed"),
                );
            }
            Some(h @ ("HashMap" | "HashSet")) if d3 => {
                push(
                    HASH_CONTAINER,
                    line,
                    format!(
                        "`{h}` in determinism-critical crate `{}`; iteration order is \
                         randomized — use BTreeMap/BTreeSet",
                        ctx.crate_name
                    ),
                );
            }
            Some(m @ ("unwrap" | "expect"))
                if d4
                    && !in_test(i)
                    && matches!(punct(i.wrapping_sub(1)), Some(".") | Some("::"))
                    && punct(i + 1) == Some("(") =>
            {
                push(
                    PANIC_PATH,
                    line,
                    format!(
                        "`.{m}()` in hot path; propagate with `?`/`Result` or add a justified \
                         `ert-lint: allow(panic-path)`"
                    ),
                );
            }
            Some(m @ ("panic" | "unreachable" | "todo" | "unimplemented"))
                if d4 && !in_test(i) && punct(i + 1) == Some("!") =>
            {
                push(
                    PANIC_PATH,
                    line,
                    format!("`{m}!` in hot path; return an error value instead"),
                );
            }
            // `let _ = ...` (with or without a type ascription the
            // lexer would split after `_`) discards an outcome.
            Some("let")
                if d6
                    && !in_test(i)
                    && ident(i + 1) == Some("_")
                    && matches!(punct(i + 2), Some("=") | Some(":")) =>
            {
                push(
                    SWALLOWED_RESULT,
                    line,
                    "`let _ =` discards a result in fault-handling code; handle the \
                     outcome or bind it to a named `_reason` with a comment"
                        .into(),
                );
            }
            Some(m @ ("spawn" | "scope"))
                if d7
                    && punct(i.wrapping_sub(1)) == Some("::")
                    && ident(i.wrapping_sub(2)) == Some("thread") =>
            {
                push(
                    RAW_THREAD,
                    line,
                    format!(
                        "raw `thread::{m}` outside `ert-par`; fan out through the \
                         deterministic pool (`ert_par::run_labeled`) so results keep \
                         canonical order"
                    ),
                );
            }
            Some("Samples") if d8 && !in_test(i) => {
                push(
                    UNBOUNDED_COLLECTOR,
                    line,
                    "`Samples` accumulates every observation in a hot loop; collect \
                     through a `Digest` (`Collector`/`StreamSummary`) or justify the \
                     bound with `ert-lint: allow(unbounded-collector)`"
                        .into(),
                );
            }
            Some("Vec")
                if d8
                    && !in_test(i)
                    && punct(i + 1) == Some("<")
                    && ident(i + 2) == Some("f64")
                    && punct(i + 3) == Some(">") =>
            {
                push(
                    UNBOUNDED_COLLECTOR,
                    line,
                    "`Vec<f64>` push-accumulation in a hot loop grows with run length; \
                     use an O(1) `Digest` sketch or justify the bound"
                        .into(),
                );
            }
            Some("ok")
                if d6
                    && !in_test(i)
                    && punct(i.wrapping_sub(1)) == Some(".")
                    && punct(i + 1) == Some("(")
                    && punct(i + 2) == Some(")")
                    && punct(i + 3) == Some(";") =>
            {
                push(
                    SWALLOWED_RESULT,
                    line,
                    "`.ok();` swallows a Result in fault-handling code; propagate the \
                     error or record why it is safe to drop"
                        .into(),
                );
            }
            _ => {}
        }

        if matches!(punct(i), Some("==") | Some("!=")) {
            let float_operand = [i.wrapping_sub(1), i + 1]
                .iter()
                .any(|&j| matches!(tokens.get(j).map(|t| &t.kind), Some(TokenKind::Float)));
            let loady = |j: usize| {
                ident(j).is_some_and(|s| {
                    let s = s.to_ascii_lowercase();
                    s.contains("load") || s.contains("capacity") || s.contains("congestion")
                })
            };
            if float_operand || (loady(i.wrapping_sub(1)) && loady(i + 1)) {
                push(
                    FLOAT_EQ,
                    tokens[i].line,
                    "direct float equality; compare with an epsilon, `total_cmp`, or integer \
                     units"
                        .into(),
                );
            }
        }
    }
    vs
}

/// Token-index spans (inclusive) of items annotated `#[test]` or
/// `#[cfg(test)]` — typically the trailing `mod tests { .. }` block.
/// D4 ignores these: tests may unwrap freely.
fn test_item_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let punct = |i: usize| match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(*p),
        _ => None,
    };
    let mut i = 0usize;
    while i < tokens.len() {
        if punct(i) == Some("#") && punct(i + 1) == Some("[") {
            let start = i;
            // Collect the attribute's identifiers up to the closing `]`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut idents: Vec<&str> = Vec::new();
            while j < tokens.len() && depth > 0 {
                match &tokens[j].kind {
                    TokenKind::Punct("[") => depth += 1,
                    TokenKind::Punct("]") => depth -= 1,
                    TokenKind::Ident(s) => idents.push(s.as_str()),
                    _ => {}
                }
                j += 1;
            }
            let is_test_attr = idents.first().is_some_and(|&f| f == "test")
                || (idents.first() == Some(&"cfg") && idents.contains(&"test"));
            if is_test_attr {
                // Skip any stacked attributes, then span the item: up to
                // a top-level `;`, or through a matched `{ .. }` body.
                while punct(j) == Some("#") && punct(j + 1) == Some("[") {
                    let mut d = 1i32;
                    j += 2;
                    while j < tokens.len() && d > 0 {
                        match punct(j) {
                            Some("[") => d += 1,
                            Some("]") => d -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                while j < tokens.len() {
                    match punct(j) {
                        Some(";") => break,
                        Some("{") => {
                            let mut d = 1i32;
                            j += 1;
                            while j < tokens.len() && d > 0 {
                                match punct(j) {
                                    Some("{") => d += 1,
                                    Some("}") => d -= 1,
                                    _ => {}
                                }
                                j += 1;
                            }
                            j -= 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                spans.push((start, j.min(tokens.len().saturating_sub(1))));
                i = j + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// Parses `ert-lint: allow(...)` comments; malformed ones (unknown
/// rule, missing justification) come back as violations in their own
/// right so a suppression can never silently rot.
fn parse_allows(comments: &[LineComment], ctx: &FileContext) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    let known: Vec<&str> = CATALOG.iter().map(|&(_, name)| name).collect();
    for c in comments {
        if c.doc {
            continue; // Rustdoc may *describe* the syntax; only plain
                      // `//` comments carry live suppressions.
        }
        let Some(pos) = c.text.find("ert-lint:") else {
            continue;
        };
        let mut fail = |msg: String| {
            bad.push(Violation {
                rule: SUPPRESSION,
                file: ctx.rel_path.clone(),
                line: c.line,
                message: msg,
            })
        };
        let rest = c.text[pos + "ert-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            fail("malformed suppression: expected `ert-lint: allow(<rule>) — <why>`".into());
            continue;
        };
        let Some(close) = args.find(')') else {
            fail("malformed suppression: unclosed `allow(`".into());
            continue;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            fail("suppression names no rule".into());
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| !known.contains(&r.as_str())) {
            fail(format!(
                "suppression names unknown rule `{unknown}` (known: {})",
                known.join(", ")
            ));
            continue;
        }
        let justification = args[close + 1..]
            .trim_start_matches(|ch: char| {
                ch.is_whitespace() || matches!(ch, '-' | '—' | '–' | ':')
            })
            .trim()
            .to_string();
        if justification.is_empty() {
            fail("suppression has no justification; say why the rule is safe to waive here".into());
            continue;
        }
        allows.push(Allow {
            line: c.line,
            rules,
            justification,
        });
    }
    (allows, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(rel: &str, krate: &str) -> FileContext {
        FileContext {
            rel_path: rel.into(),
            crate_name: krate.into(),
            is_binary: false,
        }
    }

    fn rules_fired(src: &str, c: &FileContext) -> Vec<&'static str> {
        check_file(src, c)
            .violations
            .iter()
            .map(|v| v.rule)
            .collect()
    }

    // ---- D1 wall-clock: fires / doesn't fire / suppressed ----

    #[test]
    fn d1_fires_in_library_code() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(
            rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![WALL_CLOCK]
        );
        let src2 = "use std::time::SystemTime;";
        assert_eq!(
            rules_fired(src2, &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![WALL_CLOCK]
        );
    }

    #[test]
    fn d1_exempts_bench_and_binaries() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(rules_fired(src, &ctx("crates/bench/src/lib.rs", "ert-bench")).is_empty());
        let mut bin = ctx("crates/x/src/bin/tool.rs", "ert-x");
        bin.is_binary = true;
        assert!(rules_fired(src, &bin).is_empty());
        // `Instant` without `::now` (e.g. a type in a signature that a
        // binary passes in) is not flagged either.
        assert!(
            rules_fired("fn g(t: Instant) {}", &ctx("crates/x/src/lib.rs", "ert-x")).is_empty()
        );
    }

    #[test]
    fn d1_suppressed_with_justification() {
        let src = "// ert-lint: allow(wall-clock) — progress logging only, not sim state\n\
                   fn f() { let t = Instant::now(); }";
        let out = check_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
        assert!(out.suppressed[0].justification.contains("progress logging"));
    }

    // ---- D2 ambient-rng ----

    #[test]
    fn d2_fires_everywhere_even_bench() {
        let src = "fn f() { let mut r = thread_rng(); }";
        assert_eq!(
            rules_fired(src, &ctx("crates/bench/src/lib.rs", "ert-bench")),
            vec![AMBIENT_RNG]
        );
        let src2 = "let r = SmallRng::from_entropy();";
        assert_eq!(
            rules_fired(src2, &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![AMBIENT_RNG]
        );
    }

    #[test]
    fn d2_ignores_seeded_rng_and_strings() {
        let src = "let r = ChaCha8Rng::seed_from_u64(42); let s = \"thread_rng\";";
        assert!(rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x")).is_empty());
    }

    #[test]
    fn d2_suppressed() {
        let src = "let r = thread_rng(); // ert-lint: allow(ambient-rng) - test shim\n";
        let out = check_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D3 hash-container ----

    #[test]
    fn d3_fires_in_scoped_crates_only() {
        let src = "use std::collections::HashMap;";
        for k in ["ert-sim", "ert-network", "ert-core", "ert-overlay"] {
            assert_eq!(
                rules_fired(src, &ctx("crates/k/src/lib.rs", k)),
                vec![HASH_CONTAINER]
            );
        }
        assert!(rules_fired(
            src,
            &ctx("crates/experiments/src/lib.rs", "ert-experiments")
        )
        .is_empty());
    }

    #[test]
    fn d3_suppressed_on_previous_line() {
        let src = "// ert-lint: allow(hash-container) — drained through a sorted Vec below\n\
                   use std::collections::HashSet;";
        let out = check_file(src, &ctx("crates/core/src/x.rs", "ert-core"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D4 panic-path ----

    #[test]
    fn d4_fires_only_in_hot_path_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(
            rules_fired(src, &ctx("crates/core/src/forward.rs", "ert-core")),
            vec![PANIC_PATH]
        );
        assert!(rules_fired(src, &ctx("crates/core/src/table.rs", "ert-core")).is_empty());
        let src2 = "fn g() { panic!(\"boom\"); }";
        assert_eq!(
            rules_fired(src2, &ctx("crates/sim/src/engine.rs", "ert-sim")),
            vec![PANIC_PATH]
        );
    }

    #[test]
    fn d4_ignores_tests_and_expect_named_fields() {
        let src = "fn f() -> u32 { 1 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { Some(1).unwrap(); Option::<u32>::None.expect(\"x\"); }\n\
                   }\n";
        assert!(rules_fired(src, &ctx("crates/core/src/forward.rs", "ert-core")).is_empty());
        // A struct field named `expect` is not a call.
        let src2 = "struct S { expect: u32 } fn f(s: S) -> u32 { s.expect }";
        assert!(rules_fired(src2, &ctx("crates/core/src/forward.rs", "ert-core")).is_empty());
    }

    #[test]
    fn d4_suppressed_with_invariant_note() {
        let src = "fn f(v: &[u32]) -> u32 {\n\
                   // ert-lint: allow(panic-path) — v is non-empty: callers check is_empty first\n\
                   *v.first().unwrap()\n\
                   }";
        let out = check_file(src, &ctx("crates/core/src/adapt.rs", "ert-core"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D5 float-eq ----

    #[test]
    fn d5_fires_on_float_literal_equality() {
        assert_eq!(
            rules_fired("if x == 0.5 {}", &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![FLOAT_EQ]
        );
        assert_eq!(
            rules_fired(
                "if load != capacity {}",
                &ctx("crates/x/src/lib.rs", "ert-x")
            ),
            vec![FLOAT_EQ]
        );
    }

    #[test]
    fn d5_ignores_integer_equality() {
        assert!(rules_fired(
            "if self.capacity == 0 {}",
            &ctx("crates/x/src/lib.rs", "ert-x")
        )
        .is_empty());
        assert!(rules_fired("if n == 17 {}", &ctx("crates/x/src/lib.rs", "ert-x")).is_empty());
    }

    #[test]
    fn d5_suppressed() {
        let src = "if g == 1.0 { return 1.0; } // ert-lint: allow(float-eq) — exact sentinel\n";
        let out = check_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D6 swallowed-result ----

    #[test]
    fn d6_fires_in_fault_handling_scope_only() {
        let src = "fn f() { let _ = send(); }";
        assert_eq!(
            rules_fired(src, &ctx("crates/network/src/network.rs", "ert-network")),
            vec![SWALLOWED_RESULT]
        );
        assert_eq!(
            rules_fired(src, &ctx("crates/faults/src/plan.rs", "ert-faults")),
            vec![SWALLOWED_RESULT]
        );
        // Out of scope: same pattern elsewhere is fine.
        assert!(rules_fired(src, &ctx("crates/core/src/table.rs", "ert-core")).is_empty());
    }

    #[test]
    fn d6_fires_on_trailing_ok() {
        let src = "fn f() { send().ok(); }";
        assert_eq!(
            rules_fired(src, &ctx("crates/network/src/topology.rs", "ert-network")),
            vec![SWALLOWED_RESULT]
        );
        // `.ok()` feeding into something is a conversion, not a swallow.
        let src2 = "fn f() -> Option<u32> { send().ok() }";
        assert!(
            rules_fired(src2, &ctx("crates/network/src/topology.rs", "ert-network")).is_empty()
        );
    }

    #[test]
    fn d6_ignores_named_bindings_and_tests() {
        // A named placeholder keeps the discard visible and greppable.
        let src = "fn f() { let _ignored = send(); }";
        assert!(rules_fired(src, &ctx("crates/faults/src/plan.rs", "ert-faults")).is_empty());
        let src2 = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() { let _ = send(); send().ok(); }\n}";
        assert!(rules_fired(src2, &ctx("crates/network/src/network.rs", "ert-network")).is_empty());
    }

    #[test]
    fn d6_suppressed_with_justification() {
        let src = "// ert-lint: allow(swallowed-result) — best-effort telemetry flush, failure is benign\n\
                   fn f() { flush().ok(); }";
        let out = check_file(src, &ctx("crates/faults/src/chaos.rs", "ert-faults"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D7 raw-thread ----

    #[test]
    fn d7_fires_on_spawn_and_scope_in_library_code() {
        let c = ctx("crates/network/src/network.rs", "ert-network");
        assert!(rules_fired("fn f() { std::thread::spawn(|| {}); }", &c).contains(&RAW_THREAD));
        assert!(rules_fired("fn f() { thread::scope(|s| {}); }", &c).contains(&RAW_THREAD));
    }

    #[test]
    fn d7_exempts_the_pool_benches_and_binaries() {
        let src = "fn f() { std::thread::scope(|s| {}); }";
        assert!(rules_fired(src, &ctx("crates/par/src/lib.rs", "ert-par")).is_empty());
        assert!(rules_fired(src, &ctx("crates/bench/src/lib.rs", "ert-bench")).is_empty());
        let mut bin = ctx("crates/experiments/src/bin/fig4.rs", "ert-experiments");
        bin.is_binary = true;
        assert!(rules_fired(src, &bin).is_empty());
    }

    #[test]
    fn d7_has_no_test_exemption_and_ignores_other_scopes() {
        // Unlike D4/D6, a `#[cfg(test)]` block does not waive D7.
        let src = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() { std::thread::spawn(|| {}); }\n}";
        assert_eq!(
            rules_fired(src, &ctx("crates/sim/src/engine.rs", "ert-sim")),
            vec![RAW_THREAD]
        );
        // `scope`/`spawn` not qualified by `thread::` are other APIs.
        let src2 = "fn f(s: &Scope) { s.spawn(|| {}); tracing::scope(); }";
        assert!(rules_fired(src2, &ctx("crates/sim/src/engine.rs", "ert-sim")).is_empty());
    }

    #[test]
    fn d7_suppressed_with_justification() {
        let src = "// ert-lint: allow(raw-thread) — watchdog thread, no sim results cross it\n\
                   fn f() { std::thread::spawn(|| {}); }";
        let out = check_file(src, &ctx("crates/faults/src/chaos.rs", "ert-faults"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    // ---- D8 unbounded-collector ----

    #[test]
    fn d8_fires_in_hot_loop_files_only() {
        let src = "fn f() { let mut s = Samples::new(); }";
        assert_eq!(
            rules_fired(src, &ctx("crates/sim/src/engine.rs", "ert-sim")),
            vec![UNBOUNDED_COLLECTOR]
        );
        let src2 = "struct S { lat: Vec<f64> }";
        assert_eq!(
            rules_fired(src2, &ctx("crates/network/src/network.rs", "ert-network")),
            vec![UNBOUNDED_COLLECTOR]
        );
        // Out of scope: aggregation/reporting code may hold full
        // sample sets — `Samples` itself lives in ert-sim's stats.
        assert!(rules_fired(src, &ctx("crates/sim/src/stats.rs", "ert-sim")).is_empty());
        assert!(rules_fired(src2, &ctx("crates/network/src/metrics.rs", "ert-network")).is_empty());
    }

    #[test]
    fn d8_ignores_tests_and_other_element_types() {
        let src = "#[cfg(test)]\nmod tests {\n#[test]\n\
                   fn t() { let s = Samples::new(); let v: Vec<f64> = vec![]; }\n}";
        assert!(rules_fired(src, &ctx("crates/sim/src/engine.rs", "ert-sim")).is_empty());
        // Integer vectors are bounded by what they index, not by run
        // length in observations; D8 only names the sample buffers.
        let src2 = "fn f() { let v: Vec<u64> = Vec::new(); }";
        assert!(rules_fired(src2, &ctx("crates/network/src/network.rs", "ert-network")).is_empty());
    }

    #[test]
    fn d8_suppressed_with_bound_note() {
        let src =
            "// ert-lint: allow(unbounded-collector) — fresh per tick, bounded by host count\n\
             fn f() { let mut c = Samples::new(); }";
        let out = check_file(src, &ctx("crates/network/src/network.rs", "ert-network"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 1);
        assert!(out.suppressed[0].justification.contains("bounded"));
    }

    // ---- suppression hygiene ----

    #[test]
    fn suppression_without_justification_is_a_violation() {
        let src = "let r = thread_rng(); // ert-lint: allow(ambient-rng)\n";
        let fired = rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(fired.contains(&SUPPRESSION));
        assert!(fired.contains(&AMBIENT_RNG)); // Broken waiver does not waive.
    }

    #[test]
    fn suppression_with_unknown_rule_is_a_violation() {
        let src = "// ert-lint: allow(no-such-rule) — whatever\nfn f() {}";
        assert_eq!(
            rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![SUPPRESSION]
        );
    }

    #[test]
    fn suppression_only_reaches_adjacent_line() {
        let src = "// ert-lint: allow(ambient-rng) — shim\n\nlet r = thread_rng();\n";
        let fired = rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert_eq!(fired, vec![AMBIENT_RNG]); // Two lines away: not covered.
    }

    #[test]
    fn doc_comments_describing_the_syntax_are_inert() {
        let src = "/// Waive with `ert-lint: allow(<rule>) — <why>`.\nfn f() {}";
        assert!(rules_fired(src, &ctx("crates/x/src/lib.rs", "ert-x")).is_empty());
        // ...and a doc comment cannot waive a real violation either.
        let src2 = "/// ert-lint: allow(ambient-rng) — nope\nfn f() { thread_rng(); }";
        assert_eq!(
            rules_fired(src2, &ctx("crates/x/src/lib.rs", "ert-x")),
            vec![AMBIENT_RNG]
        );
    }

    #[test]
    fn one_comment_can_waive_multiple_rules() {
        let src = "// ert-lint: allow(ambient-rng, wall-clock) — fixture exercising both\n\
                   fn f() { thread_rng(); Instant::now(); }";
        let out = check_file(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(out.violations.is_empty());
        assert_eq!(out.suppressed.len(), 2);
    }
}
