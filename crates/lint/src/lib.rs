//! `ert-lint`: workspace determinism & panic-safety analysis.
//!
//! The paper's provable bounds (Theorems 3.1–3.3, 4.1) are only
//! reproducible if every simulation run is a pure function of its seed
//! and never tears down mid-run. This crate enforces that property
//! mechanically — no dependencies — with a hand-rolled Rust lexer, a
//! lightweight item parser, a workspace symbol table, and a
//! conservative call graph feeding an eleven-rule catalog:
//!
//! | rule | name | what it bans | where |
//! |------|------|--------------|-------|
//! | D1 | `wall-clock` | `Instant::now`, `SystemTime` | everywhere except `ert-bench` and binary/bench/example targets |
//! | D2 | `ambient-rng` | `thread_rng`, `from_entropy`, `OsRng` | everywhere |
//! | D3 | `hash-container` | `HashMap`/`HashSet` | `ert-sim`, `ert-network`, `ert-core`, `ert-overlay` |
//! | D4 | `panic-path` | `.unwrap()`, `.expect()`, `panic!` family | `core::forward`, `core::adapt`, `sim::engine`, `network::lookup` (tests exempt) |
//! | D5 | `float-eq` | `==`/`!=` against float literals or load/capacity pairs | everywhere |
//! | D6 | `swallowed-result` | `let _ =` and trailing `.ok();` discards | `network::network`, `network::topology`, all of `ert-faults` (tests exempt) |
//! | D7 | `raw-thread` | `thread::spawn` / `thread::scope` | everywhere except `ert-par`, `ert-bench`, and binaries (no test exemption) |
//! | D8 | `unbounded-collector` | `Samples` / `Vec<f64>` accumulation | `sim::engine`, `network::network` hot loops (tests exempt) |
//! | D9 | `transitive-panic` | panics *reachable through the call graph* from the D4 hot-path roots | whole workspace (tests exempt) |
//! | D10 | `shared-state` | `static mut`, locks, atomics, interior mutability | `ert-sim`, `ert-network`, `ert-core` (tests exempt) |
//! | D11 | `stale-allow` | an `allow` comment that waives nothing | everywhere (not itself waivable) |
//!
//! A violation can be waived inline with
//! `// ert-lint: allow(<rule>) — <justification>` on the same or the
//! preceding line; the justification is mandatory and malformed
//! suppressions are themselves violations. D11 keeps that ledger
//! honest: a waiver that stops matching a finding becomes a finding.
//!
//! Run it as `cargo run -p ert-lint --` (nonzero exit on violations),
//! `-- --json` for the machine-readable report, `-- --sarif out.sarif`
//! for SARIF 2.1.0, or `-- --baseline lint-baseline.json` to diff
//! against the committed baseline (exit 1 = new findings, exit 3 =
//! stale baseline entries). The runtime counterpart — the `sanitize`
//! feature of `ert-network` — asserts the theorem bounds dynamically
//! while this crate keeps nondeterminism out statically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod symbols;
pub mod workspace;

use std::fs;
use std::path::Path;

pub use report::Report;
pub use rules::{check_file, FileContext, Suppressed, Violation};
pub use workspace::{find_workspace_root, workspace_files};

use parse::{parse_items, ParsedFile};
use rules::{analyze_file, resolve_file, FileAnalysis};
use symbols::SymbolTable;

/// Lints every workspace source file under `root` — the file-local
/// rules plus the cross-file call-graph pass — and returns the
/// aggregated, sorted report. Unreadable files are skipped (the walk
/// already filtered to regular `.rs` files).
pub fn lint_workspace(root: &Path) -> Report {
    // Pass 1: lex + file-local rules, holding resolution open.
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    for file in workspace_files(root) {
        let Ok(src) = fs::read_to_string(&file.path) else {
            continue;
        };
        analyses.push(analyze_file(&src, &file.ctx));
    }

    // Pass 2: parse items, build the symbol table and call graph, and
    // compute the D9 transitive-panic findings.
    let parsed: Vec<ParsedFile> = analyses
        .iter()
        .map(|a| parse_items(&a.lexed, &a.ctx))
        .collect();
    let table = {
        let refs: Vec<(&ParsedFile, &FileContext)> = parsed
            .iter()
            .zip(analyses.iter())
            .map(|(p, a)| (p, &a.ctx))
            .collect();
        SymbolTable::build(&refs)
    };
    let graph = {
        let lexeds: Vec<&lexer::Lexed> = analyses.iter().map(|a| &a.lexed).collect();
        callgraph::build_graph(&table, &lexeds)
    };
    let d9 = callgraph::transitive_panic_violations(&table, &graph);

    // Pass 3: resolve waivers per file with the cross-file findings in
    // hand, so D9 can be suppressed in place and D11 sees true usage.
    let mut report = Report::default();
    for analysis in analyses {
        report.files_scanned += 1;
        let extra: Vec<Violation> = d9
            .iter()
            .filter(|v| v.file == analysis.ctx.rel_path)
            .cloned()
            .collect();
        let mut outcome = resolve_file(analysis, &extra, true);
        report.violations.append(&mut outcome.violations);
        report.suppressed.append(&mut outcome.suppressed);
    }
    report.sort();
    report
}
