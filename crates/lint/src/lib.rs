//! `ert-lint`: workspace determinism & panic-safety analysis.
//!
//! The paper's provable bounds (Theorems 3.1–3.3, 4.1) are only
//! reproducible if every simulation run is a pure function of its seed
//! and never tears down mid-run. This crate enforces that property
//! mechanically with a small hand-rolled Rust lexer (no dependencies)
//! and an eight-rule catalog:
//!
//! | rule | name | what it bans | where |
//! |------|------|--------------|-------|
//! | D1 | `wall-clock` | `Instant::now`, `SystemTime` | everywhere except `ert-bench` and binary/bench/example targets |
//! | D2 | `ambient-rng` | `thread_rng`, `from_entropy`, `OsRng` | everywhere |
//! | D3 | `hash-container` | `HashMap`/`HashSet` | `ert-sim`, `ert-network`, `ert-core`, `ert-overlay` |
//! | D4 | `panic-path` | `.unwrap()`, `.expect()`, `panic!` family | `core::forward`, `core::adapt`, `sim::engine`, `network::lookup` (tests exempt) |
//! | D5 | `float-eq` | `==`/`!=` against float literals or load/capacity pairs | everywhere |
//! | D6 | `swallowed-result` | `let _ =` and trailing `.ok();` discards | `network::network`, `network::topology`, all of `ert-faults` (tests exempt) |
//! | D7 | `raw-thread` | `thread::spawn` / `thread::scope` | everywhere except `ert-par`, `ert-bench`, and binaries (no test exemption) |
//! | D8 | `unbounded-collector` | `Samples` / `Vec<f64>` accumulation | `sim::engine`, `network::network` hot loops (tests exempt) |
//!
//! A violation can be waived inline with
//! `// ert-lint: allow(<rule>) — <justification>` on the same or the
//! preceding line; the justification is mandatory and malformed
//! suppressions are themselves violations.
//!
//! Run it as `cargo run -p ert-lint --` (nonzero exit on violations)
//! or `cargo run -p ert-lint -- --json` for the machine-readable
//! report. The runtime counterpart — the `sanitize` feature of
//! `ert-network` — asserts the theorem bounds dynamically while this
//! crate keeps nondeterminism out statically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

use std::fs;
use std::path::Path;

pub use report::Report;
pub use rules::{check_file, FileContext, Suppressed, Violation};
pub use workspace::{find_workspace_root, workspace_files};

/// Lints every workspace source file under `root` and returns the
/// aggregated, sorted report. Unreadable files are skipped (the walk
/// already filtered to regular `.rs` files).
pub fn lint_workspace(root: &Path) -> Report {
    let mut report = Report::default();
    for file in workspace_files(root) {
        let Ok(src) = fs::read_to_string(&file.path) else {
            continue;
        };
        report.files_scanned += 1;
        let mut outcome = check_file(&src, &file.ctx);
        report.violations.append(&mut outcome.violations);
        report.suppressed.append(&mut outcome.suppressed);
    }
    report.sort();
    report
}
