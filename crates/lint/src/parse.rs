//! Item-level parsing on top of the lexer: function, impl, and module
//! extraction with workspace-relative module paths.
//!
//! The lexer guarantees token classification and line numbers; this
//! layer adds just enough item structure for cross-file analysis — which
//! functions exist, what module path and `impl` type each belongs to,
//! where its body's token span sits, and whether it is test code. It is
//! deliberately NOT a full Rust parser: unrecognized constructs are
//! skipped, and the consumers ([`crate::symbols`], [`crate::callgraph`])
//! are designed so that a missed item can only make the analysis *less*
//! complete, never wrong about what it does report.

use crate::lexer::{Lexed, Token, TokenKind};
use crate::rules::FileContext;

/// One `fn` item (free function, inherent method, or trait method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name (`choose_next`).
    pub name: String,
    /// Module path from the crate root (`core::forward`), derived from
    /// the file location plus any inline `mod` blocks.
    pub module: String,
    /// The `impl` target type when this is a method (`Samples`), with
    /// generics stripped to the last path segment.
    pub self_type: Option<String>,
    /// The trait being implemented, for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index span `[start, end)` of the body including its braces,
    /// or `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// True for functions inside `#[cfg(test)]`/`#[test]` spans or in
    /// integration-test files — excluded from the call graph entirely.
    pub is_test: bool,
}

impl FnItem {
    /// Fully qualified display name: `module::Type::name` for methods,
    /// `module::name` for free functions.
    pub fn qual(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{}::{}::{}", self.module, t, self.name),
            None => format!("{}::{}", self.module, self.name),
        }
    }
}

/// The parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item found, in source order.
    pub fns: Vec<FnItem>,
}

/// Derives the module path of a file from its workspace-relative
/// location: `crates/core/src/forward.rs` → `core::forward`,
/// `crates/sim/src/lib.rs` → `sim`, `tests/chaos.rs` → `repro::tests::chaos`.
/// The `ert-` crate-name prefix is stripped so paths read like the
/// `use ert_core::...` statements with the boilerplate removed.
pub fn module_path(ctx: &FileContext) -> String {
    let krate = ctx
        .crate_name
        .strip_prefix("ert-")
        .unwrap_or(&ctx.crate_name);
    let mut segs: Vec<String> = vec![krate.to_string()];
    let parts: Vec<&str> = ctx.rel_path.split('/').collect();
    let mark = parts
        .iter()
        .position(|p| matches!(*p, "src" | "tests" | "benches" | "examples"));
    if let Some(m) = mark {
        if parts[m] != "src" {
            segs.push(parts[m].to_string());
        }
        for p in &parts[m + 1..] {
            let stem = p.strip_suffix(".rs").unwrap_or(p);
            if matches!(stem, "lib" | "main" | "mod") {
                continue;
            }
            segs.push(stem.to_string());
        }
    }
    segs.join("::")
}

/// Scopes the parser tracks while walking the token stream.
enum Scope {
    /// An inline `mod name { ... }` block entered at `depth`.
    Mod { name: String, depth: u32 },
    /// An `impl` block entered at `depth`.
    Impl {
        self_type: String,
        trait_name: Option<String>,
        depth: u32,
    },
}

impl Scope {
    fn depth(&self) -> u32 {
        match self {
            Scope::Mod { depth, .. } | Scope::Impl { depth, .. } => *depth,
        }
    }
}

/// Extracts every `fn` item from a lexed file.
pub fn parse_items(lexed: &Lexed, ctx: &FileContext) -> ParsedFile {
    let tokens = &lexed.tokens;
    let test_spans = test_item_spans(tokens);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx <= b);
    // Integration tests, benches, and examples are leaf targets; their
    // functions never sit on a hot path and may panic freely.
    let file_is_test = {
        let p = &ctx.rel_path;
        p.starts_with("tests/")
            || p.contains("/tests/")
            || p.contains("/benches/")
            || p.contains("/examples/")
    };
    let base = module_path(ctx);

    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth: u32 = 0;
    let ident = |i: usize| match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize| match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(*p),
        _ => None,
    };

    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct("{") => {
                depth += 1;
                i += 1;
            }
            TokenKind::Punct("}") => {
                depth = depth.saturating_sub(1);
                while scopes.last().is_some_and(|s| s.depth() >= depth) {
                    scopes.pop();
                }
                i += 1;
            }
            TokenKind::Ident(w) if w == "mod" => {
                if let (Some(name), Some("{")) = (ident(i + 1), punct(i + 2)) {
                    scopes.push(Scope::Mod {
                        name: name.to_string(),
                        depth,
                    });
                    depth += 1;
                    i += 3;
                } else {
                    i += 1; // `mod name;` — out-of-line, nothing to scope.
                }
            }
            TokenKind::Ident(w) if w == "impl" => {
                // Header: `impl<G> TraitPath for TypePath where ... {`.
                // Collect path idents at angle-depth 0, split on `for`,
                // stop at `where`; the self type is the last segment.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut before_for: Vec<String> = Vec::new();
                let mut after_for: Vec<String> = Vec::new();
                let mut saw_for = false;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokenKind::Punct("<") => angle += 1,
                        TokenKind::Punct(">") => angle -= 1,
                        TokenKind::Punct("{") if angle <= 0 => break,
                        TokenKind::Punct(";") if angle <= 0 => break,
                        TokenKind::Ident(s) if angle <= 0 => {
                            if s == "where" {
                                // Everything after is bounds, not the type.
                                while j < tokens.len()
                                    && punct(j) != Some("{")
                                    && punct(j) != Some(";")
                                {
                                    j += 1;
                                }
                                break;
                            } else if s == "for" {
                                saw_for = true;
                            } else if saw_for {
                                after_for.push(s.clone());
                            } else {
                                before_for.push(s.clone());
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if punct(j) == Some("{") {
                    let (self_type, trait_name) = if saw_for {
                        (after_for.last().cloned(), before_for.last().cloned())
                    } else {
                        (before_for.last().cloned(), None)
                    };
                    if let Some(self_type) = self_type {
                        scopes.push(Scope::Impl {
                            self_type,
                            trait_name,
                            depth,
                        });
                        depth += 1;
                        i = j + 1;
                        continue;
                    }
                }
                i = j;
            }
            TokenKind::Ident(w) if w == "fn" => {
                let Some(name) = ident(i + 1) else {
                    i += 1; // `fn(..)` pointer type, not an item.
                    continue;
                };
                let line = tokens[i].line;
                // Scan the signature for the body `{` or a terminating
                // `;` (trait declaration). `;` only terminates at zero
                // paren/bracket depth — `[u8; 4]` in an argument type
                // must not read as end-of-item.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut body: Option<(usize, usize)> = None;
                while j < tokens.len() {
                    match punct(j) {
                        Some("(") => paren += 1,
                        Some(")") => paren -= 1,
                        Some("[") => bracket += 1,
                        Some("]") => bracket -= 1,
                        Some(";") if paren == 0 && bracket == 0 => break,
                        Some("{") if paren == 0 && bracket == 0 => {
                            let start = j;
                            let mut d = 1i32;
                            let mut k = j + 1;
                            while k < tokens.len() && d > 0 {
                                match punct(k) {
                                    Some("{") => d += 1,
                                    Some("}") => d -= 1,
                                    _ => {}
                                }
                                k += 1;
                            }
                            body = Some((start, k));
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let mut module_segs = vec![base.clone()];
                let mut self_type = None;
                let mut trait_name = None;
                for s in &scopes {
                    match s {
                        Scope::Mod { name, .. } => module_segs.push(name.clone()),
                        Scope::Impl {
                            self_type: t,
                            trait_name: tr,
                            ..
                        } => {
                            self_type = Some(t.clone());
                            trait_name = tr.clone();
                        }
                    }
                }
                out.fns.push(FnItem {
                    name: name.to_string(),
                    module: module_segs.join("::"),
                    self_type,
                    trait_name,
                    line,
                    body,
                    is_test: file_is_test || in_test(i),
                });
                // Do NOT skip the body: nested items inside it must be
                // found too, and the `{`/`}` arms keep depth honest.
                i += 2;
            }
            _ => i += 1,
        }
    }
    out
}

/// Token-index spans (inclusive) of items annotated `#[test]` or
/// `#[cfg(test)]` — typically the trailing `mod tests { .. }` block.
/// Rules with a test exemption (D4/D6/D8) and the call-graph builder
/// ignore tokens inside these spans.
pub(crate) fn test_item_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let punct = |i: usize| match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(p)) => Some(*p),
        _ => None,
    };
    let mut i = 0usize;
    while i < tokens.len() {
        if punct(i) == Some("#") && punct(i + 1) == Some("[") {
            let start = i;
            // Collect the attribute's identifiers up to the closing `]`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut idents: Vec<&str> = Vec::new();
            while j < tokens.len() && depth > 0 {
                match &tokens[j].kind {
                    TokenKind::Punct("[") => depth += 1,
                    TokenKind::Punct("]") => depth -= 1,
                    TokenKind::Ident(s) => idents.push(s.as_str()),
                    _ => {}
                }
                j += 1;
            }
            let is_test_attr = idents.first().is_some_and(|&f| f == "test")
                || (idents.first() == Some(&"cfg") && idents.contains(&"test"));
            if is_test_attr {
                // Skip any stacked attributes, then span the item: up to
                // a top-level `;`, or through a matched `{ .. }` body.
                while punct(j) == Some("#") && punct(j + 1) == Some("[") {
                    let mut d = 1i32;
                    j += 2;
                    while j < tokens.len() && d > 0 {
                        match punct(j) {
                            Some("[") => d += 1,
                            Some("]") => d -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                while j < tokens.len() {
                    match punct(j) {
                        Some(";") => break,
                        Some("{") => {
                            let mut d = 1i32;
                            j += 1;
                            while j < tokens.len() && d > 0 {
                                match punct(j) {
                                    Some("{") => d += 1,
                                    Some("}") => d -= 1,
                                    _ => {}
                                }
                                j += 1;
                            }
                            j -= 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                spans.push((start, j.min(tokens.len().saturating_sub(1))));
                i = j + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(rel: &str, krate: &str) -> FileContext {
        FileContext {
            rel_path: rel.into(),
            crate_name: krate.into(),
            is_binary: false,
        }
    }

    fn parse(src: &str, c: &FileContext) -> ParsedFile {
        parse_items(&lex(src), c)
    }

    #[test]
    fn module_paths_from_file_locations() {
        assert_eq!(
            module_path(&ctx("crates/core/src/forward.rs", "ert-core")),
            "core::forward"
        );
        assert_eq!(module_path(&ctx("crates/sim/src/lib.rs", "ert-sim")), "sim");
        assert_eq!(
            module_path(&ctx("tests/chaos.rs", "ert-repro")),
            "repro::tests::chaos"
        );
        assert_eq!(
            module_path(&ctx("crates/x/src/bin/tool.rs", "ert-x")),
            "x::bin::tool"
        );
    }

    #[test]
    fn free_functions_and_nested_mods() {
        let src = "fn top() {}\nmod inner {\n    pub fn deep(x: u32) -> u32 { x }\n}\n";
        let p = parse(src, &ctx("crates/core/src/forward.rs", "ert-core"));
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qual(), "core::forward::top");
        assert_eq!(p.fns[1].qual(), "core::forward::inner::deep");
        assert!(p.fns.iter().all(|f| f.body.is_some()));
        assert!(p.fns.iter().all(|f| !f.is_test));
    }

    #[test]
    fn inherent_and_trait_impl_methods() {
        let src = "struct S;\n\
                   impl S {\n    fn make() -> S { S }\n}\n\
                   impl std::fmt::Display for S {\n    fn fmt(&self) -> bool { true }\n}\n\
                   impl<T: Clone> Runner for Pool<T> where T: Send {\n    fn run(&self) {}\n}\n";
        let p = parse(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        let names: Vec<(String, Option<String>, Option<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_type.clone(), f.trait_name.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("make".into(), Some("S".into()), None),
                ("fmt".into(), Some("S".into()), Some("Display".into())),
                ("run".into(), Some("Pool".into()), Some("Runner".into())),
            ]
        );
        assert_eq!(p.fns[0].qual(), "x::S::make");
    }

    #[test]
    fn impl_scope_ends_at_its_closing_brace() {
        let src = "impl S { fn a(&self) {} }\nfn free() {}\n";
        let p = parse(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert_eq!(p.fns[0].self_type.as_deref(), Some("S"));
        assert_eq!(p.fns[1].self_type, None, "free fn must leave impl scope");
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let src = "trait T {\n    fn sig(&self, xs: [u8; 4]);\n    fn with_default(&self) -> u32 { 1 }\n}\n";
        let p = parse(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].body.is_none(), "`[u8; 4]` must not end the item");
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn test_functions_are_marked() {
        let src = "fn lib_code() {}\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { lib_code(); }\n}\n";
        let p = parse(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
        // Everything in an integration-test file is test code.
        let p2 = parse("fn helper() {}", &ctx("tests/chaos.rs", "ert-repro"));
        assert!(p2.fns[0].is_test);
    }

    #[test]
    fn nested_fns_inside_bodies_are_found() {
        let src = "fn outer() {\n    fn inner() -> u32 { 7 }\n    inner();\n}\n";
        let p = parse(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real(cb: fn(u32) -> u32) -> u32 { cb(1) }";
        let p = parse(src, &ctx("crates/x/src/lib.rs", "ert-x"));
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn body_spans_cover_the_braces() {
        let lexed = lex("fn f() { g(); }");
        let p = parse_items(&lexed, &ctx("crates/x/src/lib.rs", "ert-x"));
        let (a, b) = p.fns[0].body.expect("body");
        assert_eq!(lexed.tokens[a].kind, TokenKind::Punct("{"));
        assert_eq!(lexed.tokens[b - 1].kind, TokenKind::Punct("}"));
    }
}
