//! The committed-findings baseline: load, diff, and write.
//!
//! A baseline is a JSON file listing accepted findings as
//! `(rule, file, line)` triples. `--baseline <path>` partitions the
//! current run into *new* findings (fail the build), *baselined* ones
//! (reported but tolerated), and *stale* baseline entries (recorded
//! findings that no longer occur — the baseline must be regenerated so
//! it cannot mask future regressions at those sites). Matching is
//! multiset-style: two identical findings need two baseline entries.
//!
//! The parser below is a deliberately tiny JSON reader — enough for the
//! baseline's own shape — so the crate stays dependency-free at
//! runtime.

use std::fmt::Write as _;

use crate::rules::Violation;

/// One accepted finding in the baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule name (`wall-clock`, `transitive-panic`, ...).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
}

/// A parsed baseline file.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// Accepted findings, in file order.
    pub entries: Vec<Entry>,
}

/// The outcome of diffing a run against a baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// Findings with no baseline entry: these fail the build.
    pub new: Vec<Violation>,
    /// Findings matched by a baseline entry: reported, tolerated.
    pub baselined: Vec<Violation>,
    /// Baseline entries that matched nothing: the baseline is stale.
    pub stale: Vec<Entry>,
}

impl Baseline {
    /// Parses the baseline JSON. Errors name the first malformed spot.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            i: 0,
        };
        let root = p.value()?;
        p.skip_ws();
        if p.i < p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        let Value::Obj(fields) = root else {
            return Err("baseline root must be an object".into());
        };
        let version = fields
            .iter()
            .find(|(k, _)| k == "version")
            .ok_or("baseline missing `version`")?;
        match version.1 {
            Value::Num(1.0) => {}
            _ => return Err("unsupported baseline `version` (expected 1)".into()),
        }
        let entries_val = fields
            .iter()
            .find(|(k, _)| k == "entries")
            .ok_or("baseline missing `entries`")?;
        let Value::Arr(items) = &entries_val.1 else {
            return Err("baseline `entries` must be an array".into());
        };
        let mut entries = Vec::new();
        for (idx, item) in items.iter().enumerate() {
            let Value::Obj(e) = item else {
                return Err(format!("entries[{idx}] must be an object"));
            };
            let get_str = |key: &str| -> Result<String, String> {
                match e.iter().find(|(k, _)| k == key) {
                    Some((_, Value::Str(s))) => Ok(s.clone()),
                    _ => Err(format!("entries[{idx}] missing string `{key}`")),
                }
            };
            let line = match e.iter().find(|(k, _)| k == "line") {
                // ert-lint: allow(float-eq) — fract()==0.0 is the exact integrality test
                Some((_, Value::Num(n))) if *n >= 1.0 && n.fract() == 0.0 => *n as u32,
                _ => return Err(format!("entries[{idx}] missing positive integer `line`")),
            };
            entries.push(Entry {
                rule: get_str("rule")?,
                file: get_str("file")?,
                line,
            });
        }
        Ok(Baseline { entries })
    }

    /// Serializes findings as a fresh baseline (`--write-baseline`).
    /// Input order is preserved — callers pass the sorted report.
    pub fn render(violations: &[Violation]) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, v) in violations.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    {{ \"rule\": {}, \"file\": {}, \"line\": {} }}",
                json_str(v.rule),
                json_str(&v.file),
                v.line
            );
        }
        if violations.is_empty() {
            s.push_str("]\n}\n");
        } else {
            s.push_str("\n  ]\n}\n");
        }
        s
    }

    /// Partitions `violations` against this baseline (multiset match on
    /// `(rule, file, line)`).
    pub fn diff(&self, violations: &[Violation]) -> Diff {
        let mut unused: Vec<bool> = vec![true; self.entries.len()];
        let mut out = Diff::default();
        for v in violations {
            let slot = self.entries.iter().enumerate().position(|(i, e)| {
                unused[i] && e.rule == v.rule && e.file == v.file && e.line == v.line
            });
            match slot {
                Some(i) => {
                    unused[i] = false;
                    out.baselined.push(v.clone());
                }
                None => out.new.push(v.clone()),
            }
        }
        out.stale = self
            .entries
            .iter()
            .zip(&unused)
            .filter(|(_, &u)| u)
            .map(|(e, _)| e.clone())
            .collect();
        out
    }
}

/// JSON string escape (shared with the SARIF writer).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The minimal JSON value tree the baseline needs. Booleans and nulls
/// are parsed (so foreign-but-valid JSON is tolerated) but carry no
/// payload — nothing in the baseline shape reads them.
enum Value {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.i)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.bytes.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool),
            Some(b'f') => self.literal("false", Value::Bool),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while self
            .bytes
            .get(self.i)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.bytes.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy the whole UTF-8 scalar, not just this byte.
                    let rest = &self.bytes[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let ch = s.chars().next().unwrap_or('\u{FFFD}');
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.i += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.i += 1; // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.i) != Some(&b'"') {
                return Err(format!("expected object key at byte {}", self.i));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.i) != Some(&b':') {
                return Err(format!("expected `:` at byte {}", self.i));
            }
            self.i += 1;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            file: file.into(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let vs = [
            v("wall-clock", "crates/a/src/lib.rs", 3),
            v("shared-state", "crates/b/src/x.rs", 14),
        ];
        let json = Baseline::render(&vs);
        let parsed = Baseline::parse(&json).expect("round trip");
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.entries[0].rule, "wall-clock");
        assert_eq!(parsed.entries[1].line, 14);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let json = Baseline::render(&[]);
        let parsed = Baseline::parse(&json).expect("empty");
        assert!(parsed.entries.is_empty());
    }

    #[test]
    fn diff_partitions_new_baselined_and_stale() {
        let base = Baseline::parse(
            r#"{ "version": 1, "entries": [
                { "rule": "wall-clock", "file": "a.rs", "line": 3 },
                { "rule": "float-eq", "file": "gone.rs", "line": 9 }
            ] }"#,
        )
        .unwrap();
        let now = [v("wall-clock", "a.rs", 3), v("ambient-rng", "b.rs", 1)];
        let d = base.diff(&now);
        assert_eq!(d.baselined.len(), 1);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].rule, "ambient-rng");
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].file, "gone.rs");
    }

    #[test]
    fn matching_is_multiset_not_set() {
        // One entry cannot absolve two identical findings.
        let base = Baseline::parse(
            r#"{ "version": 1, "entries": [
                { "rule": "float-eq", "file": "a.rs", "line": 5 }
            ] }"#,
        )
        .unwrap();
        let now = [v("float-eq", "a.rs", 5), v("float-eq", "a.rs", 5)];
        let d = base.diff(&now);
        assert_eq!(d.baselined.len(), 1);
        assert_eq!(d.new.len(), 1);
    }

    #[test]
    fn malformed_baselines_are_rejected_with_context() {
        for bad in [
            "[]",
            "{ \"entries\": [] }",
            "{ \"version\": 2, \"entries\": [] }",
            "{ \"version\": 1, \"entries\": [ { \"rule\": \"x\" } ] }",
            "{ \"version\": 1, \"entries\": [] } trailing",
        ] {
            assert!(Baseline::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn string_escapes_survive_the_round_trip() {
        let vs = [v("wall-clock", "crates/a/src/we\"ird\\path.rs", 1)];
        let parsed = Baseline::parse(&Baseline::render(&vs)).unwrap();
        assert_eq!(parsed.entries[0].file, "crates/a/src/we\"ird\\path.rs");
    }
}
