//! Adversary schedules: who attacks, how, and when.

use ert_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The largest flood window the sort-key packing can carry:
/// [`AdversaryKind::param_bits`] packs the window's microseconds into
/// 32 bits next to the query count, so windows are capped at ~4295 s —
/// far beyond any simulated horizon.
pub const MAX_FLOOD_WINDOW_MICROS: u64 = (1 << 32) - 1;

/// One kind of adversarial behavior.
///
/// Each actor class attacks a specific assumption of the paper's
/// provable congestion bounds:
///
/// * [`AdversaryKind::CapacityLiar`] misreports the capacity estimate
///   ĉ, stressing the estimation-error factor γ_c that Theorems 3.1
///   and 3.2 bound indegree by;
/// * [`AdversaryKind::SybilSwarm`] joins coordinated identities packed
///   into one ring region, concentrating indegree (and therefore
///   forwarded load) on the victims there;
/// * [`AdversaryKind::QueryFlood`] layers a flash crowd on a single
///   key over the base workload;
/// * [`AdversaryKind::RoutingDefector`] inverts Algorithm 4's
///   two-choice rule: defecting nodes forward to the **most**-loaded
///   reachable candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// Clears every reversible adversary effect: capacity liars revert
    /// to their true estimates and defectors resume honest forwarding.
    /// (Sybil identities stay — joining is a membership event, not an
    /// episode — and flood queries already injected keep flowing.)
    Restore,
    /// A `fraction` of live hosts (drawn from the adversary stream)
    /// misreport their capacity estimate ĉ by the multiplicative
    /// `error`: `error > 1` inflates (attracting more inlinks than the
    /// host can serve), `error < 1` deflates. Applying a second liar
    /// event to an already-lying host compounds the error; `Restore`
    /// reverts to the original truth in one step.
    CapacityLiar {
        /// Fraction of live hosts turned liars, in `(0, 1]`.
        fraction: f64,
        /// Multiplicative misreport factor (finite, > 0).
        error: f64,
    },
    /// `count` coordinated identities join, packed into the vacant ID
    /// slots nearest ring fraction `region` — the victim neighborhood
    /// whose indegree the swarm concentrates.
    SybilSwarm {
        /// Number of Sybil identities to join (≥ 1).
        count: u32,
        /// Victim ring position as a fraction of the ID space, in
        /// `[0, 1)`.
        region: f64,
    },
    /// A flash crowd: `queries` extra lookups on the single key at ring
    /// fraction `key`, injected evenly over `window` starting at the
    /// event time, layered onto the base workload. Pair large floods
    /// with streaming-statistics mode (`NetworkConfig::stream_stats`,
    /// the `ert-obs` P² sketches) so 10⁶-query floods keep the metric
    /// collectors O(1) in memory.
    QueryFlood {
        /// Flooded key as a ring fraction, in `[0, 1)`.
        key: f64,
        /// Number of flood lookups (≥ 1).
        queries: u32,
        /// Injection window (positive, at most
        /// [`MAX_FLOOD_WINDOW_MICROS`] µs).
        window: SimDuration,
    },
    /// A `fraction` of live hosts defect: their forwards invert the
    /// two-choice rule and pick the most-loaded reachable candidate.
    RoutingDefector {
        /// Fraction of live hosts turned defectors, in `(0, 1]`.
        fraction: f64,
    },
}

impl AdversaryKind {
    /// Taxonomy rank used to tie-break equal-timestamp events:
    /// `Restore < CapacityLiar < SybilSwarm < QueryFlood <
    /// RoutingDefector`. Restoring first means a schedule that restores
    /// and re-attacks at the same instant nets out to the re-attack,
    /// mirroring `FaultKind`'s heal-first convention.
    fn rank(self) -> u8 {
        match self {
            AdversaryKind::Restore => 0,
            AdversaryKind::CapacityLiar { .. } => 1,
            AdversaryKind::SybilSwarm { .. } => 2,
            AdversaryKind::QueryFlood { .. } => 3,
            AdversaryKind::RoutingDefector { .. } => 4,
        }
    }

    /// Parameter bits for the final tie-break level, so even two events
    /// of the same kind at the same instant order deterministically.
    /// Injective per kind (the flood window cap makes the packed pair
    /// unambiguous), so equal keys mean equal events and stable sorting
    /// cannot leak input order into a run.
    fn param_bits(self) -> (u64, u64) {
        match self {
            AdversaryKind::Restore => (0, 0),
            AdversaryKind::CapacityLiar { fraction, error } => {
                (fraction.to_bits(), error.to_bits())
            }
            AdversaryKind::SybilSwarm { count, region } => (u64::from(count), region.to_bits()),
            AdversaryKind::QueryFlood {
                key,
                queries,
                window,
            } => (
                key.to_bits(),
                (u64::from(queries) << 32) | (window.as_micros() & MAX_FLOOD_WINDOW_MICROS),
            ),
            AdversaryKind::RoutingDefector { fraction } => (fraction.to_bits(), 0),
        }
    }

    /// The kind's stable tag, matching the serialized variant name —
    /// handy for telemetry and log filtering.
    pub fn tag(&self) -> &'static str {
        match self {
            AdversaryKind::Restore => "Restore",
            AdversaryKind::CapacityLiar { .. } => "CapacityLiar",
            AdversaryKind::SybilSwarm { .. } => "SybilSwarm",
            AdversaryKind::QueryFlood { .. } => "QueryFlood",
            AdversaryKind::RoutingDefector { .. } => "RoutingDefector",
        }
    }

    /// Validates the kind's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let fraction_ok = |fraction: f64, who: &str| {
            if fraction.is_finite() && fraction > 0.0 && fraction <= 1.0 {
                Ok(())
            } else {
                Err(format!("{who} fraction must be in (0, 1], got {fraction}"))
            }
        };
        match *self {
            AdversaryKind::Restore => Ok(()),
            AdversaryKind::CapacityLiar { fraction, error } => {
                fraction_ok(fraction, "liar")?;
                if error.is_finite() && error > 0.0 {
                    Ok(())
                } else {
                    Err(format!("liar error must be finite and > 0, got {error}"))
                }
            }
            AdversaryKind::SybilSwarm { count, region } => {
                if count == 0 {
                    return Err("sybil swarm needs >= 1 identity".into());
                }
                if region.is_finite() && (0.0..1.0).contains(&region) {
                    Ok(())
                } else {
                    Err(format!("sybil region must be in [0, 1), got {region}"))
                }
            }
            AdversaryKind::QueryFlood {
                key,
                queries,
                window,
            } => {
                if !(key.is_finite() && (0.0..1.0).contains(&key)) {
                    return Err(format!("flood key must be in [0, 1), got {key}"));
                }
                if queries == 0 {
                    return Err("flood needs >= 1 query".into());
                }
                if window == SimDuration::ZERO {
                    return Err("flood window must be positive".into());
                }
                if window.as_micros() > MAX_FLOOD_WINDOW_MICROS {
                    return Err(format!(
                        "flood window must be at most {MAX_FLOOD_WINDOW_MICROS} us, got {}",
                        window.as_micros()
                    ));
                }
                Ok(())
            }
            AdversaryKind::RoutingDefector { fraction } => fraction_ok(fraction, "defector"),
        }
    }
}

/// One scheduled adversarial action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryEvent {
    /// When the actor activates.
    pub at: SimTime,
    /// What it does.
    pub kind: AdversaryKind,
}

impl AdversaryEvent {
    /// The total ordering key: time first, then taxonomy rank, then
    /// parameter bits — the same shape as `FaultEvent::sort_key`, so
    /// the applied order is a pure function of the plan's *contents*
    /// and permuting an event list never changes a run.
    pub fn sort_key(&self) -> (SimTime, u8, u64, u64) {
        let (a, b) = self.kind.param_bits();
        (self.at, self.kind.rank(), a, b)
    }
}

/// A seeded, serializable adversary schedule.
///
/// The `seed` names the interpretation stream: the network draws every
/// adversary-time random choice (which hosts lie or defect, where
/// Sybils estimate from) out of a generator forked off this seed,
/// independent of the topology / forwarding / workload / fault streams.
/// An empty plan draws nothing, so a run with an empty plan is
/// byte-identical to one that never heard of adversaries.
///
/// ```
/// use ert_adversary::{AdversaryEvent, AdversaryKind, AdversaryPlan};
/// use ert_sim::SimTime;
/// let mut plan = AdversaryPlan::new(7);
/// plan.events.push(AdversaryEvent {
///     at: SimTime::from_micros(50_000),
///     kind: AdversaryKind::RoutingDefector { fraction: 0.1 },
/// });
/// plan.validate().unwrap();
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// Seed of the adversary-interpretation RNG stream.
    pub seed: u64,
    /// The scheduled actions (any order; interpretation sorts by
    /// [`AdversaryEvent::sort_key`]).
    pub events: Vec<AdversaryEvent>,
}

impl AdversaryPlan {
    /// An empty plan with the given interpretation seed.
    pub fn new(seed: u64) -> Self {
        AdversaryPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Whether the plan schedules no adversarial actions at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in canonical applied order (see
    /// [`AdversaryEvent::sort_key`]).
    pub fn sorted_events(&self) -> Vec<AdversaryEvent> {
        let mut out = self.events.clone();
        out.sort_by_key(AdversaryEvent::sort_key);
        out
    }

    /// Whether any event's kind satisfies `pred` — how the network
    /// decides which theorem envelopes the plan deliberately violates.
    pub fn any_kind(&self, pred: impl Fn(&AdversaryKind) -> bool) -> bool {
        self.events.iter().any(|e| pred(&e.kind))
    }

    /// Validates every event's parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint, prefixed with the
    /// offending event's index.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            e.kind
                .validate()
                .map_err(|msg| format!("adversary event {i}: {msg}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    #[test]
    fn empty_plan_is_default() {
        let p = AdversaryPlan::default();
        assert!(p.is_empty());
        p.validate().unwrap();
        assert_eq!(p, AdversaryPlan::new(0));
    }

    #[test]
    fn sorted_events_tie_break_by_taxonomy_then_params() {
        let t = at(500);
        let plan = AdversaryPlan {
            seed: 1,
            events: vec![
                AdversaryEvent {
                    at: t,
                    kind: AdversaryKind::RoutingDefector { fraction: 0.2 },
                },
                AdversaryEvent {
                    at: t,
                    kind: AdversaryKind::CapacityLiar {
                        fraction: 0.3,
                        error: 4.0,
                    },
                },
                AdversaryEvent {
                    at: t,
                    kind: AdversaryKind::Restore,
                },
                AdversaryEvent {
                    at: t,
                    kind: AdversaryKind::CapacityLiar {
                        fraction: 0.1,
                        error: 4.0,
                    },
                },
                AdversaryEvent {
                    at: at(100),
                    kind: AdversaryKind::SybilSwarm {
                        count: 4,
                        region: 0.5,
                    },
                },
            ],
        };
        let sorted = plan.sorted_events();
        assert!(matches!(sorted[0].kind, AdversaryKind::SybilSwarm { .. })); // earlier time wins
        assert_eq!(sorted[1].kind, AdversaryKind::Restore);
        assert_eq!(
            sorted[2].kind,
            AdversaryKind::CapacityLiar {
                fraction: 0.1,
                error: 4.0
            }
        );
        assert_eq!(
            sorted[3].kind,
            AdversaryKind::CapacityLiar {
                fraction: 0.3,
                error: 4.0
            }
        );
        assert!(matches!(
            sorted[4].kind,
            AdversaryKind::RoutingDefector { .. }
        ));
    }

    #[test]
    fn permuting_a_plan_does_not_change_its_canonical_order() {
        let events = vec![
            AdversaryEvent {
                at: at(9),
                kind: AdversaryKind::RoutingDefector { fraction: 0.1 },
            },
            AdversaryEvent {
                at: at(9),
                kind: AdversaryKind::Restore,
            },
            AdversaryEvent {
                at: at(9),
                kind: AdversaryKind::QueryFlood {
                    key: 0.25,
                    queries: 40,
                    window: SimDuration::from_secs_f64(0.5),
                },
            },
        ];
        let mut reversed = events.clone();
        reversed.reverse();
        let a = AdversaryPlan { seed: 3, events };
        let b = AdversaryPlan {
            seed: 3,
            events: reversed,
        };
        assert_eq!(a.sorted_events(), b.sorted_events());
    }

    #[test]
    fn flood_param_bits_distinguish_query_count_and_window() {
        let t = at(7);
        let mk = |queries, secs: f64| AdversaryEvent {
            at: t,
            kind: AdversaryKind::QueryFlood {
                key: 0.5,
                queries,
                window: SimDuration::from_secs_f64(secs),
            },
        };
        let keys: std::collections::BTreeSet<_> = [mk(1, 1.0), mk(2, 1.0), mk(1, 2.0)]
            .iter()
            .map(AdversaryEvent::sort_key)
            .collect();
        assert_eq!(keys.len(), 3, "packed params must stay injective");
    }

    #[test]
    fn rejects_bad_parameters() {
        for kind in [
            AdversaryKind::CapacityLiar {
                fraction: 0.0,
                error: 2.0,
            },
            AdversaryKind::CapacityLiar {
                fraction: 1.5,
                error: 2.0,
            },
            AdversaryKind::CapacityLiar {
                fraction: 0.2,
                error: 0.0,
            },
            AdversaryKind::CapacityLiar {
                fraction: 0.2,
                error: f64::NAN,
            },
            AdversaryKind::SybilSwarm {
                count: 0,
                region: 0.5,
            },
            AdversaryKind::SybilSwarm {
                count: 4,
                region: 1.0,
            },
            AdversaryKind::QueryFlood {
                key: 1.0,
                queries: 10,
                window: SimDuration::from_secs_f64(1.0),
            },
            AdversaryKind::QueryFlood {
                key: 0.5,
                queries: 0,
                window: SimDuration::from_secs_f64(1.0),
            },
            AdversaryKind::QueryFlood {
                key: 0.5,
                queries: 10,
                window: SimDuration::ZERO,
            },
            AdversaryKind::RoutingDefector { fraction: -0.1 },
            AdversaryKind::RoutingDefector {
                fraction: f64::INFINITY,
            },
        ] {
            assert!(kind.validate().is_err(), "{kind:?} should be rejected");
            let plan = AdversaryPlan {
                seed: 0,
                events: vec![AdversaryEvent { at: at(1), kind }],
            };
            let err = plan.validate().unwrap_err();
            assert!(err.starts_with("adversary event 0:"), "{err}");
        }
        AdversaryKind::Restore.validate().unwrap();
    }

    #[test]
    fn any_kind_finds_actor_classes() {
        let plan = AdversaryPlan {
            seed: 4,
            events: vec![AdversaryEvent {
                at: at(5),
                kind: AdversaryKind::CapacityLiar {
                    fraction: 0.2,
                    error: 4.0,
                },
            }],
        };
        assert!(plan.any_kind(|k| matches!(k, AdversaryKind::CapacityLiar { .. })));
        assert!(!plan.any_kind(|k| matches!(k, AdversaryKind::SybilSwarm { .. })));
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = AdversaryPlan {
            seed: 11,
            events: vec![
                AdversaryEvent {
                    at: at(250_000),
                    kind: AdversaryKind::SybilSwarm {
                        count: 8,
                        region: 0.75,
                    },
                },
                AdversaryEvent {
                    at: at(750_000),
                    kind: AdversaryKind::Restore,
                },
            ],
        };
        let json = serde::json::to_string(&plan);
        assert!(json.contains("\"seed\":11"), "{json}");
        assert!(json.contains("SybilSwarm"), "{json}");
    }
}
