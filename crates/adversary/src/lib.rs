//! Adversarial & byzantine scenarios for the ERT reproduction.
//!
//! The paper's congestion guarantees are *conditional*: Theorems 3.1
//! and 3.2 bound indegree (and therefore congestion) only when nodes
//! report their capacity honestly within the estimation-error factor
//! γ_c, and Theorem 3.3's outdegree bound assumes nodes adapt indegree
//! faithfully. `ert-faults` attacks the *environment* (crashes, loss,
//! partitions); this crate attacks the *assumptions*, with four actor
//! classes:
//!
//! * **capacity liars** ([`AdversaryKind::CapacityLiar`]) — misreport
//!   ĉ by a configurable multiplicative error, stressing γ_c;
//! * **Sybil swarms** ([`AdversaryKind::SybilSwarm`]) — coordinated
//!   identities packed into one ring region, concentrating indegree on
//!   the victims there;
//! * **query-flood hotspots** ([`AdversaryKind::QueryFlood`]) — flash
//!   crowds on a single key layered onto the base workload;
//! * **routing defectors** ([`AdversaryKind::RoutingDefector`]) —
//!   nodes that invert Algorithm 4's two-choice rule and forward to
//!   the *most*-loaded reachable candidate.
//!
//! Everything is a pure function of its seed: [`AdversaryPlan`] is a
//! seeded, serializable schedule with the same canonical sort-key
//! ordering discipline as `ert_faults::FaultPlan` (permuting a plan's
//! event list never changes a run), [`AdversaryScript`] expands
//! parametrized attack shapes for the experiment sweeps, and
//! [`AdversaryCampaign`] samples randomized-but-reproducible mixed
//! campaigns for the byzantine harness. Interpretation lives in
//! `ert-network` beside the fault interpreter; an empty plan leaves a
//! run byte-identical to one that never heard of adversaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod plan;
mod script;

pub use campaign::AdversaryCampaign;
pub use plan::{AdversaryEvent, AdversaryKind, AdversaryPlan, MAX_FLOOD_WINDOW_MICROS};
pub use script::AdversaryScript;
