//! Parametrized attack scripts: the shapes the adversarial experiment
//! sweeps run, expressed as a serializable recipe that expands into an
//! [`AdversaryPlan`] once the run's seed and horizon are known.

use ert_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::campaign::AdversaryCampaign;
use crate::plan::{AdversaryEvent, AdversaryKind, AdversaryPlan};

/// When scripted actors activate: shortly after t = 0, so the first
/// adaptation rounds already run under attack but topology construction
/// (which happens before the clock starts) is untouched.
const ATTACK_START_SECS: f64 = 0.05;

/// A named attack shape with free parameters — the unit the
/// experiments' `Scenario` carries and sweeps. Expansion via
/// [`AdversaryScript::plan`] is deterministic in `(script, seed,
/// horizon)`, so sweep cells stay isolated reproducible worlds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversaryScript {
    /// A single [`AdversaryKind::CapacityLiar`] wave at attack start.
    Liars {
        /// Fraction of live hosts turned liars, in `(0, 1]`.
        fraction: f64,
        /// Multiplicative capacity misreport factor.
        error: f64,
    },
    /// A single [`AdversaryKind::RoutingDefector`] wave at attack
    /// start.
    Defectors {
        /// Fraction of live hosts turned defectors, in `(0, 1]`.
        fraction: f64,
    },
    /// The pinned byzantine mix the CI acceptance gate runs: liars and
    /// defectors activated together at attack start.
    Mix {
        /// Fraction of live hosts turned liars, in `(0, 1]`.
        liar_fraction: f64,
        /// Liars' multiplicative misreport factor.
        liar_error: f64,
        /// Fraction of live hosts turned defectors, in `(0, 1]`.
        defector_fraction: f64,
    },
    /// A [`AdversaryKind::QueryFlood`] flash crowd in the middle of the
    /// run, leaving headroom on both sides to measure the pre-flood
    /// level and the post-flood recovery.
    Flood {
        /// Flooded key as a ring fraction, in `[0, 1)`.
        key: f64,
        /// Number of flood lookups.
        queries: u32,
        /// Flood start, seconds into the run.
        start_secs: f64,
        /// Injection window length in seconds.
        window_secs: f64,
    },
    /// A [`AdversaryKind::SybilSwarm`] joining at attack start.
    Sybils {
        /// Number of Sybil identities.
        count: u32,
        /// Victim ring position as a fraction of the ID space.
        region: f64,
    },
    /// A randomized-but-reproducible mixed campaign over the whole
    /// horizon (see [`AdversaryCampaign`]).
    Campaign {
        /// Campaign intensity in `[0, 1]`.
        intensity: f64,
    },
}

impl AdversaryScript {
    /// Expands the script into a concrete plan for one run.
    ///
    /// The returned plan always carries `seed` as its interpretation
    /// seed; scripted events land at fixed offsets, campaign events are
    /// sampled over `[0, horizon)`.
    pub fn plan(&self, seed: u64, horizon: SimTime) -> AdversaryPlan {
        let start = SimTime::ZERO + SimDuration::from_secs_f64(ATTACK_START_SECS);
        let mut plan = AdversaryPlan::new(seed);
        match *self {
            AdversaryScript::Liars { fraction, error } => {
                plan.events.push(AdversaryEvent {
                    at: start,
                    kind: AdversaryKind::CapacityLiar { fraction, error },
                });
            }
            AdversaryScript::Defectors { fraction } => {
                plan.events.push(AdversaryEvent {
                    at: start,
                    kind: AdversaryKind::RoutingDefector { fraction },
                });
            }
            AdversaryScript::Mix {
                liar_fraction,
                liar_error,
                defector_fraction,
            } => {
                plan.events.push(AdversaryEvent {
                    at: start,
                    kind: AdversaryKind::CapacityLiar {
                        fraction: liar_fraction,
                        error: liar_error,
                    },
                });
                plan.events.push(AdversaryEvent {
                    at: start,
                    kind: AdversaryKind::RoutingDefector {
                        fraction: defector_fraction,
                    },
                });
            }
            AdversaryScript::Flood {
                key,
                queries,
                start_secs,
                window_secs,
            } => {
                plan.events.push(AdversaryEvent {
                    at: SimTime::ZERO + SimDuration::from_secs_f64(start_secs),
                    kind: AdversaryKind::QueryFlood {
                        key,
                        queries,
                        window: SimDuration::from_secs_f64(window_secs),
                    },
                });
            }
            AdversaryScript::Sybils { count, region } => {
                plan.events.push(AdversaryEvent {
                    at: start,
                    kind: AdversaryKind::SybilSwarm { count, region },
                });
            }
            AdversaryScript::Campaign { intensity } => {
                return AdversaryCampaign::generate_over(seed, intensity, horizon);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(10.0)
    }

    #[test]
    fn scripts_expand_deterministically() {
        for script in [
            AdversaryScript::Liars {
                fraction: 0.2,
                error: 4.0,
            },
            AdversaryScript::Defectors { fraction: 0.1 },
            AdversaryScript::Mix {
                liar_fraction: 0.2,
                liar_error: 4.0,
                defector_fraction: 0.1,
            },
            AdversaryScript::Flood {
                key: 0.37,
                queries: 200,
                start_secs: 3.0,
                window_secs: 2.0,
            },
            AdversaryScript::Sybils {
                count: 12,
                region: 0.37,
            },
            AdversaryScript::Campaign { intensity: 0.6 },
        ] {
            let a = script.plan(17, horizon());
            let b = script.plan(17, horizon());
            assert_eq!(a, b, "{script:?}");
            assert!(!a.is_empty(), "{script:?}");
            a.validate().unwrap_or_else(|e| panic!("{script:?}: {e}"));
            assert_eq!(a.seed, 17);
        }
    }

    #[test]
    fn mix_carries_both_actor_classes() {
        let plan = AdversaryScript::Mix {
            liar_fraction: 0.2,
            liar_error: 4.0,
            defector_fraction: 0.1,
        }
        .plan(3, horizon());
        assert!(plan.any_kind(|k| matches!(k, AdversaryKind::CapacityLiar { .. })));
        assert!(plan.any_kind(|k| matches!(k, AdversaryKind::RoutingDefector { .. })));
        assert_eq!(plan.events.len(), 2);
    }

    #[test]
    fn scripts_round_trip_through_json() {
        let script = AdversaryScript::Flood {
            key: 0.37,
            queries: 500,
            start_secs: 2.0,
            window_secs: 1.5,
        };
        let json = serde::json::to_string(&script);
        assert!(json.contains("Flood"), "{json}");
    }
}
