//! Randomized-but-reproducible adversary schedules for the byzantine
//! harness — the attack-side twin of `ert_faults::ChaosPlan`.

use ert_sim::{SimDuration, SimRng, SimTime};
use rand::Rng;

use crate::plan::{AdversaryEvent, AdversaryKind, AdversaryPlan};

/// Generator of byzantine campaigns: an [`AdversaryPlan`] sampled from
/// a seed and an intensity knob.
///
/// `intensity` in `[0, 1]` scales both the activation rate and the
/// severity of each actor class (liar error factors and fractions,
/// defector fractions, flood sizes, swarm sizes). Intensity 0 yields an
/// empty plan; intensity 1 is a hostile environment that still leaves
/// the overlay routable — defectors route *badly*, not *nowhere*, and
/// liar fractions stay below half the population.
///
/// The same `(seed, intensity, horizon)` triple always yields the same
/// plan, so byzantine findings reproduce from their logged parameters.
///
/// ```
/// use ert_adversary::AdversaryCampaign;
/// let a = AdversaryCampaign::generate(42, 0.5);
/// let b = AdversaryCampaign::generate(42, 0.5);
/// assert_eq!(a, b);
/// assert!(!a.is_empty());
/// assert_eq!(AdversaryCampaign::generate(42, 0.0).events.len(), 0);
/// ```
pub struct AdversaryCampaign;

/// Default schedule horizon: matches the ~10 sim-seconds a quick
/// scenario's injection phase covers.
const DEFAULT_HORIZON_SECS: f64 = 10.0;

impl AdversaryCampaign {
    /// Generates a campaign over the default 10 s horizon.
    pub fn generate(seed: u64, intensity: f64) -> AdversaryPlan {
        Self::generate_over(
            seed,
            intensity,
            SimTime::ZERO + SimDuration::from_secs_f64(DEFAULT_HORIZON_SECS),
        )
    }

    /// Generates a campaign over `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics when `intensity` is not finite.
    pub fn generate_over(seed: u64, intensity: f64, horizon: SimTime) -> AdversaryPlan {
        assert!(intensity.is_finite(), "intensity must be finite");
        let intensity = intensity.clamp(0.0, 1.0);
        let mut plan = AdversaryPlan::new(seed);
        if intensity <= 0.0 || horizon == SimTime::ZERO {
            return plan;
        }
        // The stream constant differs from ChaosPlan's (0x000c_4a05
        // rotated 17) so a fault schedule and a campaign built from the
        // same seed stay decorrelated.
        let mut rng = SimRng::seed_from(seed ^ 0x00ad_0b0e_u64.rotate_left(23));
        let horizon_secs = horizon.as_micros() as f64 / 1e6;
        // Up to ~1.5 activations per sim-second at full intensity —
        // attacks are episodic, not a second workload.
        let rate = (1.5 * intensity).max(0.05);
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_secs_f64(rng.exp_secs(rate));
            if t >= horizon {
                break;
            }
            let kind = Self::sample_kind(&mut rng, intensity, horizon_secs);
            plan.events.push(AdversaryEvent { at: t, kind });
        }
        debug_assert!(plan.validate().is_ok());
        plan
    }

    /// Draws one actor class with intensity-scaled severity. Weights:
    /// capacity liars 30%, routing defectors 25%, query floods 20%,
    /// Sybil swarms 15%, restore 10%.
    fn sample_kind(rng: &mut SimRng, intensity: f64, horizon_secs: f64) -> AdversaryKind {
        let fraction = |rng: &mut SimRng| (0.05 + 0.4 * intensity * rng.gen::<f64>()).min(0.45);
        let roll: f64 = rng.gen();
        if roll < 0.30 {
            AdversaryKind::CapacityLiar {
                fraction: fraction(rng),
                error: 1.5 + 6.5 * intensity * rng.gen::<f64>(),
            }
        } else if roll < 0.55 {
            AdversaryKind::RoutingDefector {
                fraction: fraction(rng),
            }
        } else if roll < 0.75 {
            // Floods last 5–20% of the horizon, stretched by intensity.
            let frac = 0.05 + 0.15 * intensity * rng.gen::<f64>();
            AdversaryKind::QueryFlood {
                key: rng.gen::<f64>().rem_euclid(1.0).min(0.999_999),
                queries: 20 + (180.0 * intensity * rng.gen::<f64>()) as u32,
                window: SimDuration::from_secs_f64((frac * horizon_secs).max(1e-6)),
            }
        } else if roll < 0.90 {
            AdversaryKind::SybilSwarm {
                count: 2 + (14.0 * intensity * rng.gen::<f64>()) as u32,
                region: rng.gen::<f64>().rem_euclid(1.0).min(0.999_999),
            }
        } else {
            AdversaryKind::Restore
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = AdversaryCampaign::generate(7, 0.8);
        let b = AdversaryCampaign::generate(7, 0.8);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = AdversaryCampaign::generate(1, 0.8);
        let b = AdversaryCampaign::generate(2, 0.8);
        assert_ne!(a, b);
    }

    #[test]
    fn generated_plans_always_validate() {
        for seed in 0..32 {
            for &i in &[0.1, 0.5, 1.0] {
                let plan = AdversaryCampaign::generate(seed, i);
                plan.validate()
                    .unwrap_or_else(|e| panic!("seed {seed} intensity {i}: {e}"));
                assert!(plan
                    .events
                    .iter()
                    .all(|e| e.at < SimTime::ZERO + SimDuration::from_secs_f64(10.0)));
            }
        }
    }

    #[test]
    fn zero_intensity_is_empty() {
        assert!(AdversaryCampaign::generate(3, 0.0).is_empty());
    }

    #[test]
    fn out_of_range_intensity_is_clamped() {
        let hot = AdversaryCampaign::generate(5, 7.5);
        let one = AdversaryCampaign::generate(5, 1.0);
        assert_eq!(hot, one);
        assert!(AdversaryCampaign::generate(5, -3.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "intensity must be finite")]
    fn nan_intensity_panics() {
        AdversaryCampaign::generate(1, f64::NAN);
    }

    #[test]
    fn intensity_scales_event_count() {
        let mild: usize = (0..16)
            .map(|s| AdversaryCampaign::generate(s, 0.1).events.len())
            .sum();
        let hot: usize = (0..16)
            .map(|s| AdversaryCampaign::generate(s, 1.0).events.len())
            .sum();
        assert!(hot > 2 * mild, "mild {mild} vs hot {hot}");
    }

    #[test]
    fn horizon_bounds_event_times() {
        let horizon = SimTime::ZERO + SimDuration::from_secs_f64(3.0);
        let plan = AdversaryCampaign::generate_over(9, 1.0, horizon);
        assert!(plan.events.iter().all(|e| e.at < horizon));
        assert!(AdversaryCampaign::generate_over(9, 1.0, SimTime::ZERO).is_empty());
    }

    #[test]
    fn campaigns_decorrelate_from_chaos_constant() {
        // Same seed, different stream constants: the first activation
        // time should not coincide with ChaosPlan's first fault time
        // for typical seeds (spot check a few).
        let mut distinct = 0;
        for seed in 0..8 {
            let camp = AdversaryCampaign::generate(seed, 0.8);
            if let Some(first) = camp.events.first() {
                if first.at != SimTime::from_micros(0) {
                    distinct += 1;
                }
            }
        }
        assert!(distinct > 0);
    }
}
