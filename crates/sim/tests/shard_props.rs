//! Property tests for the shared-nothing sharded event core: the
//! key→shard partition is total and balanced, and the cross-shard
//! merge order is invariant under every drain permutation the bounded
//! mailboxes can produce.

use proptest::prelude::*;

use ert_sim::{Engine, ShardMap, ShardedEngine, SimTime};

fn t(micros: u64) -> SimTime {
    SimTime::from_micros(micros)
}

proptest! {
    /// `shard_of` is total: every ring position — and every stale
    /// position past the ring — maps to a valid shard, for any shard
    /// count and any ring size (Cycloid rings are not powers of two).
    #[test]
    fn shard_of_is_total(shards in 1usize..64, ring in 1u64..1_000_000, lin in 0u64..2_000_000) {
        let m = ShardMap::new(shards);
        prop_assert!(m.shard_of(lin, ring) < shards);
    }

    /// The non-power-of-two remap covers all `2^k` prefix buckets:
    /// every bucket has a valid owner, owners are monotone over the
    /// bucket index (shards own *consecutive* bucket runs), every
    /// shard owns at least one bucket, and no shard owns more than
    /// twice the buckets of any other — the max/min shard-population
    /// ratio bound for uniform keys.
    #[test]
    fn remap_covers_all_buckets_with_bounded_ratio(shards in 1usize..512) {
        let m = ShardMap::new(shards);
        prop_assert!(m.buckets() >= shards);
        prop_assert!(m.buckets() < 2 * shards.max(1));
        let mut owned = vec![0usize; shards];
        let mut last = 0usize;
        for b in 0..m.buckets() {
            let s = m.shard_of_bucket(b);
            prop_assert!(s < shards, "bucket {b} maps to ghost shard {s}");
            prop_assert!(s >= last, "remap not monotone at bucket {b}");
            last = s;
            owned[s] += 1;
        }
        let max = *owned.iter().max().unwrap();
        let min = *owned.iter().min().unwrap();
        prop_assert!(min >= 1, "some shard owns no bucket: {owned:?}");
        prop_assert!(max <= 2 * min, "population ratio above 2: {owned:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The merge order is invariant under queue-drain permutation: an
    /// arbitrary schedule with heavy timestamp ties, an arbitrary
    /// routing of each event to a shard, an arbitrary mailbox capacity
    /// (deciding *when* overflow flushes move messages), and arbitrary
    /// extra barrier drains interleaved between pops all produce the
    /// exact pop sequence of the single-queue engine.
    #[test]
    fn merge_order_invariant_under_drain_permutation(
        shards in 1usize..9,
        capacity in 1usize..17,
        schedule in prop::collection::vec((0u64..23, 0u64..u64::MAX, proptest::bool::ANY), 1..300),
        drain_mask in 0u64..u64::MAX,
    ) {
        let mut eng: Engine<usize> = Engine::new();
        let mut sh: ShardedEngine<usize> = ShardedEngine::with_mailbox_capacity(shards, capacity);
        for (i, &(time, route, _)) in schedule.iter().enumerate() {
            eng.schedule_at(t(time), i);
            sh.schedule_at(t(time), (route % shards as u64) as usize, i);
        }
        let mut pops = 0u32;
        loop {
            if drain_mask >> (pops % 64) & 1 == 1 {
                sh.drain_cross_shard(); // extra barrier at an arbitrary point
            }
            let a = eng.pop();
            let b = sh.pop();
            prop_assert_eq!(a, b, "diverged after {} pops", pops);
            pops += 1;
            let Some((now, ev)) = a else { break };
            // Mid-run schedules from the popped handler: exercises the
            // current-shard fast path against the mailbox path.
            if let Some(&(dt, route, cross)) = schedule.get(ev.wrapping_mul(7) % schedule.len()) {
                if ev % 3 == 0 && pops < 400 {
                    let target = if cross {
                        (route % shards as u64) as usize
                    } else {
                        sh.current_shard()
                    };
                    eng.schedule_at(now + ert_sim::SimDuration::from_micros(dt), 10_000 + ev);
                    sh.schedule_at(now + ert_sim::SimDuration::from_micros(dt), target, 10_000 + ev);
                }
            }
        }
        prop_assert_eq!(eng.events_processed(), sh.events_processed());
        prop_assert_eq!(eng.now(), sh.now());
        prop_assert_eq!(sh.pending(), 0);
    }
}
