//! The time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of events ordered by simulated time.
///
/// Events scheduled at the same instant are delivered in the order they
/// were scheduled (FIFO), which keeps simulations deterministic.
///
/// ```
/// use ert_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(5), "late");
/// q.schedule(SimTime::from_micros(1), "early");
/// q.schedule(SimTime::from_micros(1), "early-2");
/// assert_eq!(q.pop(), Some((SimTime::from_micros(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(1), "early-2")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we pop the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            q.schedule(SimTime::from_micros(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let drained: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(drained, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
