//! Simulated time types.
//!
//! Simulated time is measured in integer microseconds from the start of
//! the simulation. Using integers (rather than `f64` seconds) keeps event
//! ordering exact and hashable, which matters for reproducibility.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant in simulated time, in microseconds since the simulation
/// epoch.
///
/// ```
/// use ert_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// ```
/// use ert_sim::SimDuration;
/// assert_eq!(SimDuration::from_secs_f64(0.2).as_micros(), 200_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from (possibly fractional) seconds since the
    /// epoch, rounding to the nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span from (possibly fractional) seconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Whole microseconds in this span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_through_seconds() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_micros(), 1_250_000);
        assert_eq!(t.as_secs_f64(), 1.25);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs_f64(0.2);
        let b = SimDuration::from_secs_f64(0.3);
        assert_eq!((a + b).as_secs_f64(), 0.5);
        let t = SimTime::ZERO + a + b;
        assert_eq!(t - (SimTime::ZERO + a), b);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_micros(), 10);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::MAX > SimTime::from_secs_f64(1e9));
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_secs_f64(0.5).to_string(), "0.500000s");
        assert_eq!(SimDuration::from_micros(1).to_string(), "0.000001s");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
