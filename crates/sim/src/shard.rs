//! Shared-nothing sharded event core.
//!
//! [`ShardedEngine`] splits the event population across `S` shard
//! reactors, each owning a private priority queue. Cross-shard
//! schedules travel through bounded explicit mailboxes (one per
//! ordered shard pair) that are drained at deterministic barriers
//! before every pop. Events are merged under the canonical
//! `(time, seq)` sort key — the same total order the single-queue
//! [`Engine`](crate::Engine) uses — so a sharded run pops the exact
//! event sequence of the sequential engine for *any* shard count and
//! *any* routing function. Shard-count invariance is a theorem of the
//! construction, not a tuning outcome:
//!
//! * `seq` is a single global counter assigned in schedule order, so
//!   two engines fed the same schedule calls assign identical keys;
//! * the pop barrier drains every mailbox into its target heap first,
//!   so the merge minimum ranges over the full pending set;
//! * the merge minimum over disjoint heaps of a set equals the
//!   minimum of the one heap holding the whole set.
//!
//! [`ShardMap`] is the companion key→shard partition: the top
//! `ceil(log2 S)` bits of ring position select one of `2^k` prefix
//! buckets, and a static remap table folds buckets onto shards when
//! `S` is not a power of two (each shard owns 1 or 2 buckets, so the
//! max/min shard-population ratio is bounded by 2 for uniform keys).

use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Default bound on each cross-shard mailbox. Overflow is not an
/// error: the full mailbox is flushed straight into the target heap
/// (a deterministic early barrier), trading barrier batching for
/// memory.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1024;

/// Static key→shard partition by ID-space prefix.
///
/// `k = ceil(log2 S)` top bits of the ring position select a prefix
/// bucket; `remap[bucket] = bucket * S / 2^k` folds the `2^k` buckets
/// onto the `S` shards. For power-of-two `S` the remap is the
/// identity; otherwise every shard receives 1 or 2 consecutive
/// buckets, bounding the max/min shard-population ratio by 2 under
/// uniform keys.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    buckets: usize,
    remap: Vec<usize>,
}

impl ShardMap {
    /// Builds the partition for `shards >= 1` reactors.
    ///
    /// # Panics
    /// Panics when `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded core needs at least one shard");
        let k = usize::BITS - (shards - 1).leading_zeros(); // ceil(log2 S)
        let buckets = 1usize << k;
        let remap = (0..buckets).map(|b| b * shards / buckets).collect();
        ShardMap {
            shards,
            buckets,
            remap,
        }
    }

    /// Number of shard reactors.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of prefix buckets (`2^ceil(log2 S)`).
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Shard owning a prefix bucket.
    ///
    /// # Panics
    /// Panics when `bucket >= self.buckets()`.
    pub fn shard_of_bucket(&self, bucket: usize) -> usize {
        self.remap[bucket]
    }

    /// Shard owning linear ring position `lin` on a ring of `ring`
    /// total positions. Total for every `lin < ring` (positions past
    /// the ring clamp into the last bucket rather than panicking, so
    /// the map stays total even for callers with a stale ring size).
    pub fn shard_of(&self, lin: u64, ring: u64) -> usize {
        debug_assert!(ring > 0, "empty ring has no shards");
        let bucket = if ring == 0 {
            0
        } else {
            // Scale in u128 so `lin * buckets` cannot overflow; the
            // ring is not necessarily a power of two (Cycloid ring).
            ((u128::from(lin) * self.buckets as u128) / u128::from(ring)) as usize
        };
        self.remap[bucket.min(self.buckets - 1)]
    }
}

/// Heap entry: same `(time, seq)` key and reversed ordering as the
/// single-queue engine's internal entry, so a min-heap pops earliest
/// time first with FIFO tie-breaks on the *global* schedule order.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min key.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Counters describing cross-shard traffic, exposed for telemetry and
/// the bench trajectory. Not part of any run report — reports stay
/// byte-identical across shard counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events that crossed a shard boundary through a mailbox.
    pub cross_shard_messages: u64,
    /// Mailboxes flushed early because they hit the capacity bound.
    pub mailbox_overflow_flushes: u64,
    /// Barrier drains performed (one before every pop attempt).
    pub barrier_drains: u64,
}

/// A discrete-event core split into `S` shared-nothing shard reactors.
///
/// Mirrors the [`Engine`](crate::Engine) surface — `schedule_at` /
/// `schedule_in` / `pop` / `now` / `events_processed` / `pending` —
/// with one addition: every schedule names the target shard. The
/// event sequence popped is byte-identical to the single-queue engine
/// fed the same schedule calls, for any shard count, routing function,
/// and mailbox capacity (see the module docs for why).
#[derive(Debug)]
pub struct ShardedEngine<E> {
    /// One private event heap per shard reactor.
    heaps: Vec<BinaryHeap<Entry<E>>>,
    /// Bounded mailboxes, `from * S + to` flattened. Only cross-shard
    /// schedules pass through a mailbox.
    mailboxes: Vec<Vec<Entry<E>>>,
    mailbox_capacity: usize,
    /// Global schedule counter: the FIFO tie-break shared by every
    /// shard, and the reason the merge order matches the sequential
    /// engine exactly.
    seq: u64,
    now: SimTime,
    processed: u64,
    /// Shard of the most recently popped event — the reactor whose
    /// handler is currently scheduling. Its own schedules go straight
    /// to its heap; everything else is a cross-shard message.
    current_shard: usize,
    stats: ShardStats,
}

impl<E> ShardedEngine<E> {
    /// Creates an empty sharded core at time zero with the
    /// [`DEFAULT_MAILBOX_CAPACITY`].
    ///
    /// # Panics
    /// Panics when `shards` is zero.
    pub fn new(shards: usize) -> Self {
        Self::with_mailbox_capacity(shards, DEFAULT_MAILBOX_CAPACITY)
    }

    /// Creates an empty sharded core with an explicit mailbox bound
    /// (≥ 1). Exposed so the drain-permutation property tests can
    /// force overflow flushes at arbitrary points.
    ///
    /// # Panics
    /// Panics when `shards` or `capacity` is zero.
    pub fn with_mailbox_capacity(shards: usize, capacity: usize) -> Self {
        assert!(shards >= 1, "a sharded core needs at least one shard");
        assert!(capacity >= 1, "mailboxes must hold at least one event");
        ShardedEngine {
            heaps: (0..shards).map(|_| BinaryHeap::new()).collect(),
            mailboxes: (0..shards * shards).map(|_| Vec::new()).collect(),
            mailbox_capacity: capacity,
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
            current_shard: 0,
            stats: ShardStats::default(),
        }
    }

    /// Number of shard reactors.
    pub fn shards(&self) -> usize {
        self.heaps.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Events still pending across every heap and mailbox.
    pub fn pending(&self) -> usize {
        self.heaps.iter().map(BinaryHeap::len).sum::<usize>()
            + self.mailboxes.iter().map(Vec::len).sum::<usize>()
    }

    /// Shard of the most recently popped event.
    pub fn current_shard(&self) -> usize {
        self.current_shard
    }

    /// Cross-shard traffic counters.
    pub fn shard_stats(&self) -> ShardStats {
        self.stats
    }

    /// Schedules `event` on `shard` at absolute time `time`.
    ///
    /// A schedule targeting the currently running shard goes straight
    /// to its heap; any other target is a cross-shard message routed
    /// through the bounded `current → target` mailbox (flushed early
    /// if full, drained at the next barrier otherwise).
    ///
    /// # Panics
    /// Panics if `time` is before the current simulation time or
    /// `shard` is out of range.
    pub fn schedule_at(&mut self, time: SimTime, shard: usize, event: E) {
        assert!(
            time >= self.now,
            "scheduling into the past: {time} < {}",
            self.now
        );
        assert!(shard < self.heaps.len(), "shard {shard} out of range");
        let entry = Entry {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        if shard == self.current_shard {
            self.heaps[shard].push(entry);
            return;
        }
        self.stats.cross_shard_messages += 1;
        let slot = self.current_shard * self.heaps.len() + shard;
        self.mailboxes[slot].push(entry);
        if self.mailboxes[slot].len() >= self.mailbox_capacity {
            // Backpressure: flush the full mailbox straight into the
            // target heap. Deterministic — triggered by a capacity
            // count, not by timing.
            self.stats.mailbox_overflow_flushes += 1;
            let drained = std::mem::take(&mut self.mailboxes[slot]);
            self.heaps[shard].extend(drained);
        }
    }

    /// Schedules `event` on `shard` after `delay` from now.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, shard: usize, event: E) {
        let time = self.now + delay;
        assert!(shard < self.heaps.len(), "shard {shard} out of range");
        let entry = Entry {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        if shard == self.current_shard {
            self.heaps[shard].push(entry);
            return;
        }
        self.stats.cross_shard_messages += 1;
        let slot = self.current_shard * self.heaps.len() + shard;
        self.mailboxes[slot].push(entry);
        if self.mailboxes[slot].len() >= self.mailbox_capacity {
            self.stats.mailbox_overflow_flushes += 1;
            let drained = std::mem::take(&mut self.mailboxes[slot]);
            self.heaps[shard].extend(drained);
        }
    }

    /// The deterministic barrier: drains every cross-shard mailbox
    /// into its target heap. Called internally before every pop; safe
    /// to call at any extra point (heap order is by `(time, seq)`, so
    /// *when* a message lands in the heap never changes the merge).
    pub fn drain_cross_shard(&mut self) {
        self.stats.barrier_drains += 1;
        let shards = self.heaps.len();
        for from in 0..shards {
            for to in 0..shards {
                let slot = from * shards + to;
                if !self.mailboxes[slot].is_empty() {
                    let drained = std::mem::take(&mut self.mailboxes[slot]);
                    self.heaps[to].extend(drained);
                }
            }
        }
    }

    /// Pops the globally next event: barrier-drains the mailboxes,
    /// then takes the minimum `(time, seq)` across the shard heads.
    /// Advances time and hands control to the owning shard.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.drain_cross_shard();
        let winner = self
            .heaps
            .iter()
            .enumerate()
            .filter_map(|(s, h)| h.peek().map(|e| ((e.time, e.seq), s)))
            .min()
            .map(|(_, s)| s)?;
        // The winner was just peeked non-empty; `?` (never taken) keeps
        // the path panic-free for the D9 gate.
        let entry = self.heaps[winner].pop()?;
        debug_assert!(entry.time >= self.now, "time went backwards");
        self.now = entry.time;
        self.processed += 1;
        self.current_shard = winner;
        Some((entry.time, entry.event))
    }

    /// Earliest pending event time, if any (mailboxes included).
    pub fn peek_time(&self) -> Option<SimTime> {
        let heap_min = self
            .heaps
            .iter()
            .filter_map(|h| h.peek().map(|e| e.time))
            .min();
        let mail_min = self
            .mailboxes
            .iter()
            .flat_map(|m| m.iter().map(|e| e.time))
            .min();
        match (heap_min, mail_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::time::SimDuration;

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    #[test]
    fn shard_map_identity_for_power_of_two() {
        let m = ShardMap::new(8);
        assert_eq!(m.shards(), 8);
        assert_eq!(m.buckets(), 8);
        for b in 0..8 {
            assert_eq!(m.shard_of_bucket(b), b);
        }
    }

    #[test]
    fn shard_map_folds_non_power_of_two() {
        let m = ShardMap::new(3);
        assert_eq!(m.buckets(), 4);
        let owners: Vec<usize> = (0..4).map(|b| m.shard_of_bucket(b)).collect();
        assert_eq!(owners, vec![0, 0, 1, 2]);
        // Every shard owns at least one bucket.
        for s in 0..3 {
            assert!(owners.contains(&s), "shard {s} owns no bucket");
        }
    }

    #[test]
    fn shard_of_is_total_and_monotone() {
        let m = ShardMap::new(5);
        let ring = 97; // not a power of two, like a Cycloid ring
        let mut last = 0;
        for lin in 0..ring {
            let s = m.shard_of(lin, ring);
            assert!(s < 5);
            assert!(s >= last, "shard map not monotone over the ring");
            last = s;
        }
        // Stale callers past the ring clamp into the last shard.
        assert_eq!(m.shard_of(ring + 10, ring), 4);
    }

    #[test]
    fn single_shard_matches_engine_exactly() {
        let mut eng: Engine<u32> = Engine::new();
        let mut sh: ShardedEngine<u32> = ShardedEngine::new(1);
        for (time, ev) in [(5, 1), (3, 2), (5, 3), (0, 4), (3, 5)] {
            eng.schedule_at(t(time), ev);
            sh.schedule_at(t(time), 0, ev);
        }
        loop {
            let a = eng.pop();
            let b = sh.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(eng.events_processed(), sh.events_processed());
        assert_eq!(eng.now(), sh.now());
    }

    /// The load-bearing property: for an arbitrary deterministic
    /// routing function the sharded pop sequence equals the
    /// single-queue pop sequence, including FIFO order among equal
    /// timestamps.
    #[test]
    fn sharded_pop_sequence_matches_engine_under_routing() {
        for shards in [1usize, 2, 3, 4, 8] {
            let mut eng: Engine<u64> = Engine::new();
            let mut sh: ShardedEngine<u64> = ShardedEngine::new(shards);
            // Deterministic pseudo-random schedule with many ties.
            let mut x = 0x9e37_79b9_u64;
            for i in 0..500u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let time = t(x % 17);
                let shard = (x >> 32) as usize % shards;
                eng.schedule_at(time, i);
                sh.schedule_at(time, shard, i);
            }
            // Interleave pops with fresh schedules, exercising the
            // current-shard fast path and cross-shard mailboxes.
            let mut reschedule = 0u64;
            loop {
                let a = eng.pop();
                let b = sh.pop();
                assert_eq!(a, b, "diverged at {shards} shards");
                let Some((now, ev)) = a else { break };
                if ev < 500 && reschedule < 300 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let delay = SimDuration::from_micros(x % 5);
                    let shard = (x >> 40) as usize % shards;
                    eng.schedule_at(now + delay, 1000 + reschedule);
                    sh.schedule_at(now + delay, shard, 1000 + reschedule);
                    reschedule += 1;
                }
            }
            assert_eq!(eng.events_processed(), sh.events_processed());
        }
    }

    /// Mailbox capacity (overflow-flush timing) never changes the pop
    /// sequence — the drain permutation invariance in unit form.
    #[test]
    fn mailbox_capacity_is_invisible() {
        let run = |cap: usize| -> Vec<(SimTime, u64)> {
            let mut sh: ShardedEngine<u64> = ShardedEngine::with_mailbox_capacity(4, cap);
            let mut x = 7u64;
            for i in 0..200u64 {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                sh.schedule_at(t(x % 11), (x >> 16) as usize % 4, i);
            }
            let mut out = Vec::new();
            while let Some(p) = sh.pop() {
                out.push(p);
            }
            out
        };
        let baseline = run(1);
        for cap in [2, 3, 7, 64, 1024] {
            assert_eq!(baseline, run(cap), "capacity {cap} changed the merge");
        }
    }

    /// Extra barrier drains at arbitrary points are harmless.
    #[test]
    fn extra_barriers_do_not_change_order() {
        let mut a: ShardedEngine<u32> = ShardedEngine::new(3);
        let mut b: ShardedEngine<u32> = ShardedEngine::new(3);
        for (time, shard, ev) in [(4, 1, 1), (4, 2, 2), (2, 0, 3), (4, 1, 4)] {
            a.schedule_at(t(time), shard, ev);
            b.schedule_at(t(time), shard, ev);
            b.drain_cross_shard(); // eager barrier after every schedule
        }
        loop {
            let x = a.pop();
            b.drain_cross_shard();
            let y = b.pop();
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn cross_shard_traffic_is_counted() {
        let mut sh: ShardedEngine<u32> = ShardedEngine::with_mailbox_capacity(2, 2);
        sh.schedule_at(t(1), 0, 1); // current shard (0): direct
        sh.schedule_at(t(1), 1, 2); // cross: mailbox 0→1
        sh.schedule_at(t(2), 1, 3); // cross: hits capacity 2 → flush
        let s = sh.shard_stats();
        assert_eq!(s.cross_shard_messages, 2);
        assert_eq!(s.mailbox_overflow_flushes, 1);
        assert_eq!(sh.pending(), 3);
        while sh.pop().is_some() {}
        assert!(sh.shard_stats().barrier_drains >= 4);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics_like_engine() {
        let mut sh: ShardedEngine<u32> = ShardedEngine::new(2);
        sh.schedule_at(t(5), 0, 1);
        sh.pop();
        sh.schedule_at(t(1), 0, 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::<u32>::new(0);
    }
}
