//! Statistics toolkit for reporting simulation metrics.
//!
//! The paper reports almost everything as a *99th percentile across
//! nodes* (congestion, share) or as *average / 1st / 99th percentiles*
//! (lookup time, degrees). [`Samples`] collects raw observations and
//! answers those queries; [`Collector`] switches between `Samples` and
//! the O(1)-memory [`StreamSummary`] sketch (the `--stream-stats`
//! backend); [`OnlineStats`] tracks moments without storing samples;
//! [`Histogram`] counts integer-valued observations (used for the
//! Fig. 6 indegree census).
//!
//! The shared query interface is [`ert_obs::Digest`], which `Samples`,
//! `Histogram`, [`StreamSummary`], and [`Summary`] all implement;
//! [`Summary`] itself lives in `ert-obs` and is re-exported here.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

pub use ert_obs::{Digest, Record, StreamSummary, Summary};

/// A collector of `f64` observations supporting percentile queries.
///
/// Percentile queries are non-mutating and stateless: each query sorts
/// a scratch copy of the observations (O(n log n)). Callers needing
/// several quantiles at once should use [`Samples::summary`], which
/// sorts once and reads every rank from the same scratch copy. Plain
/// data with no interior mutability — `Samples` values live inside
/// per-shard state in the sharded core, so the type must stay free of
/// shared-state cells (lint discipline D10).
///
/// ```
/// use ert_sim::stats::Samples;
/// let mut s = Samples::new();
/// for v in 1..=100 {
///     s.push(v as f64);
/// }
/// assert_eq!(s.percentile(0.50), 50.0);
/// assert_eq!(s.percentile(0.99), 99.0);
/// assert_eq!(s.mean(), 50.5);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN observation would poison every
    /// percentile query.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation");
        self.values.push(value);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Largest observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    /// The observations sorted ascending (push order untouched).
    fn sorted_copy(&self) -> Vec<f64> {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        sorted
    }

    /// Nearest-rank index for quantile `p` over `len` observations.
    fn rank(p: f64, len: usize) -> usize {
        ((p * len as f64).ceil() as usize).max(1) - 1
    }

    /// The `p`-quantile (`0.0 ..= 1.0`) using the nearest-rank method,
    /// or 0.0 when empty. Non-mutating; sorts a scratch copy, so each
    /// query is O(n log n) — batch quantile reads through
    /// [`Samples::summary`] when more than one is needed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile out of range: {p}");
        if self.values.is_empty() {
            return 0.0;
        }
        self.sorted_copy()[Self::rank(p, self.values.len())]
    }

    /// Mean / 1st / 50th / 99th percentile digest. Sorts once and
    /// reads every rank from the same scratch copy.
    pub fn summary(&self) -> Summary {
        if self.values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                p01: 0.0,
                p50: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let sorted = self.sorted_copy();
        let len = sorted.len();
        Summary {
            count: len,
            mean: self.mean(),
            p01: sorted[Self::rank(0.01, len)],
            p50: sorted[Self::rank(0.50, len)],
            p99: sorted[Self::rank(0.99, len)],
            max: self.max(),
        }
    }

    /// Iterates over the raw observations in push order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }
}

impl Digest for Samples {
    fn count(&self) -> u64 {
        self.values.len() as u64
    }

    fn mean(&self) -> f64 {
        Samples::mean(self)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.percentile(p)
    }

    fn max(&self) -> f64 {
        Samples::max(self)
    }

    fn summarize(&self) -> Summary {
        self.summary()
    }
}

impl Record for Samples {
    fn observe(&mut self, value: f64) {
        self.push(value);
    }
}

/// A metric collector that is either exact ([`Samples`], retains every
/// observation) or streaming ([`StreamSummary`], O(1) memory per
/// metric) — the switch behind the `--stream-stats` CLI flag.
///
/// Both arms answer the same queries through [`Digest`]; in exact mode
/// the answers are bit-identical to the pre-`Collector` code, which is
/// what keeps the pinned reports in `tests/parallel_determinism.rs`
/// byte-stable.
///
/// ```
/// use ert_sim::stats::Collector;
/// let mut c = Collector::for_mode(true); // streaming
/// for v in 1..=1000 {
///     c.push(v as f64);
/// }
/// assert_eq!(c.len(), 1000);
/// assert_eq!(c.mean(), 500.5);
/// ```
// The sketch variant is ~440 bytes inline vs the exact arm's ~56, but
// a `Collector` lives in two long-lived metric slots per network — not
// in per-item arrays — and the sketch's whole point is a fixed
// heap-free footprint; boxing it would buy nothing and put a pointer
// chase on every hot-loop observe.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Collector {
    /// Retains every observation; exact nearest-rank percentiles.
    Exact(Samples),
    /// Fixed-size P² sketch; approximate p01/p50/p99, exact
    /// count/mean/max.
    Stream(StreamSummary),
}

impl Default for Collector {
    fn default() -> Self {
        Collector::Exact(Samples::new())
    }
}

impl Collector {
    /// An exact collector (the default).
    pub fn exact() -> Collector {
        Collector::default()
    }

    /// A streaming collector.
    pub fn stream() -> Collector {
        Collector::Stream(StreamSummary::new())
    }

    /// Streaming when `stream_stats` is set, exact otherwise.
    pub fn for_mode(stream_stats: bool) -> Collector {
        if stream_stats {
            Collector::stream()
        } else {
            Collector::exact()
        }
    }

    /// Whether this collector streams (O(1) memory).
    pub fn is_streaming(&self) -> bool {
        matches!(self, Collector::Stream(_))
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn push(&mut self, value: f64) {
        match self {
            Collector::Exact(s) => s.push(value),
            Collector::Stream(s) => s.observe(value),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        match self {
            Collector::Exact(s) => s.len(),
            Collector::Stream(s) => s.len(),
        }
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arithmetic mean, or 0.0 when empty (exact in both modes).
    pub fn mean(&self) -> f64 {
        self.digest().mean()
    }

    /// Largest observation clamped to ≥ 0.0 (exact in both modes).
    pub fn max(&self) -> f64 {
        self.digest().max()
    }

    /// The `p`-quantile: exact nearest-rank in [`Collector::Exact`]
    /// mode, sketch estimate in [`Collector::Stream`] mode.
    pub fn percentile(&self, p: f64) -> f64 {
        self.digest().quantile(p)
    }

    /// Mean / percentiles / max digest.
    pub fn summary(&self) -> Summary {
        self.digest().summarize()
    }

    /// The query interface common to both arms.
    pub fn digest(&self) -> &dyn Digest {
        match self {
            Collector::Exact(s) => s,
            Collector::Stream(s) => s,
        }
    }
}

impl Record for Collector {
    fn observe(&mut self, value: f64) {
        self.push(value);
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

/// Streaming mean/variance/extrema via Welford's algorithm.
///
/// ```
/// use ert_sim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Smallest observation, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A time-weighted gauge: tracks a piecewise-constant quantity (queue
/// length, degree, utilization) and yields its time-weighted average.
///
/// ```
/// use ert_sim::stats::TimeWeighted;
/// use ert_sim::SimTime;
/// let mut g = TimeWeighted::new();
/// g.set(SimTime::from_secs_f64(0.0), 2.0);
/// g.set(SimTime::from_secs_f64(1.0), 4.0); // value was 2 for 1 s
/// let avg = g.mean_until(SimTime::from_secs_f64(3.0)); // then 4 for 2 s
/// assert!((avg - (2.0 + 8.0) / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TimeWeighted {
    started: Option<crate::SimTime>,
    last_change: crate::SimTime,
    current: f64,
    weighted_sum: f64,
    max: f64,
}

impl TimeWeighted {
    /// Creates an empty gauge.
    pub fn new() -> Self {
        TimeWeighted::default()
    }

    /// Records that the tracked quantity becomes `value` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous change or `value` is NaN.
    pub fn set(&mut self, now: crate::SimTime, value: f64) {
        assert!(!value.is_nan(), "NaN observation");
        match self.started {
            None => {
                self.started = Some(now);
            }
            Some(_) => {
                assert!(now >= self.last_change, "time went backwards");
                let span = (now - self.last_change).as_secs_f64();
                self.weighted_sum += self.current * span;
            }
        }
        self.last_change = now;
        self.current = value;
        self.max = self.max.max(value);
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The largest value ever set.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The instant of the most recent change (the epoch before any).
    pub fn last_change_time(&self) -> crate::SimTime {
        self.last_change
    }

    /// Time-weighted mean from the first change until `until` (0.0 when
    /// nothing was recorded or no time elapsed).
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the last change.
    pub fn mean_until(&self, until: crate::SimTime) -> f64 {
        let Some(started) = self.started else {
            return 0.0;
        };
        assert!(until >= self.last_change, "time went backwards");
        let total = (until - started).as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        let tail = (until - self.last_change).as_secs_f64();
        (self.weighted_sum + self.current * tail) / total
    }
}

/// A histogram over integer-valued observations.
///
/// ```
/// use ert_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(5);
/// h.record(5);
/// h.record(14);
/// assert_eq!(h.count(5), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of observations equal to `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.buckets.get(&value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterates `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&v, &c)| (v, c))
    }

    /// Fraction of observations with `value >= threshold`.
    pub fn fraction_at_least(&self, threshold: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n: u64 = self.buckets.range(threshold..).map(|(_, &c)| c).sum();
        n as f64 / self.total as f64
    }
}

impl Digest for Histogram {
    fn count(&self) -> u64 {
        self.total
    }

    fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .map(|(&v, &c)| v as f64 * c as f64)
            .sum();
        sum / self.total as f64
    }

    /// Nearest-rank quantile over the bucketed counts.
    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile out of range: {p}");
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((p * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (&value, &count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return value as f64;
            }
        }
        // Unreachable: counts sum to `total` ≥ rank.
        *self.buckets.keys().next_back().expect("nonempty") as f64
    }

    fn max(&self) -> f64 {
        match self.buckets.keys().next_back() {
            Some(&v) => v as f64,
            None => 0.0,
        }
    }
}

impl Record for Histogram {
    /// Records an integer-valued observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not integral — the histogram
    /// buckets exact integer observations (degree censuses), and a
    /// silent round would hide a caller bug.
    fn observe(&mut self, value: f64) {
        assert!(
            // ert-lint: allow(float-eq) — fract() is exactly 0.0 for integral values
            value >= 0.0 && value.fract() == 0.0,
            "histogram observation must be a non-negative integer: {value}"
        );
        self.record(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let s: Samples = (1..=10).map(|v| v as f64).collect();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(0.1), 1.0);
        assert_eq!(s.percentile(0.11), 2.0);
        assert_eq!(s.percentile(1.0), 10.0);
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = Samples::new();
        assert_eq!(s.percentile(0.99), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.is_empty());
        let d = s.summary();
        assert_eq!(d.count, 0);
    }

    #[test]
    fn summary_fields_consistent() {
        let s: Samples = (1..=100).map(|v| v as f64).collect();
        let d = s.summary();
        assert_eq!(d.count, 100);
        assert_eq!(d.p01, 1.0);
        assert_eq!(d.p99, 99.0);
        assert_eq!(d.max, 100.0);
        assert!(d.to_string().contains("n=100"));
    }

    #[test]
    fn push_after_percentile_stays_correct() {
        let mut s = Samples::new();
        s.push(5.0);
        assert_eq!(s.percentile(0.5), 5.0);
        s.push(1.0);
        assert_eq!(s.percentile(0.5), 1.0);
    }

    #[test]
    fn percentile_queries_do_not_reorder_observations() {
        // Queries sort a *scratch copy*, never the raw values: push
        // order is observable through `iter` and must survive a
        // percentile call.
        let mut s = Samples::new();
        for v in [3.0, 1.0, 2.0] {
            s.push(v);
        }
        assert_eq!(s.percentile(0.5), 2.0);
        assert_eq!(s.percentile(0.5), 2.0); // repeat query, same answer
        let order: Vec<f64> = s.iter().collect();
        assert_eq!(order, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn summary_matches_individual_percentile_queries() {
        // `summary` sorts once and reads three ranks; the answers must
        // equal the one-at-a-time queries exactly.
        let mut s = Samples::new();
        let mut x = 11u64;
        for _ in 0..257 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.push((x % 1000) as f64 / 7.0);
        }
        let d = s.summary();
        assert_eq!(d.p01, s.percentile(0.01));
        assert_eq!(d.p50, s.percentile(0.50));
        assert_eq!(d.p99, s.percentile(0.99));
        assert_eq!(d.mean, s.mean());
        assert_eq!(d.max, s.max());
    }

    #[test]
    fn collector_modes_agree_on_exact_fields() {
        let mut exact = Collector::exact();
        let mut stream = Collector::stream();
        assert!(!exact.is_streaming());
        assert!(stream.is_streaming());
        for v in (1..=500).map(|v| (v % 37) as f64) {
            exact.push(v);
            stream.push(v);
        }
        assert_eq!(exact.len(), stream.len());
        assert_eq!(exact.mean(), stream.mean());
        assert_eq!(exact.max(), stream.max());
        let (se, ss) = (exact.summary(), stream.summary());
        assert_eq!(se.count, ss.count);
        assert_eq!(se.mean, ss.mean);
        assert_eq!(se.max, ss.max);
        // Interior quantiles approximate: within a loose band here (the
        // testkit differential oracle pins the tight band).
        assert!((se.p50 - ss.p50).abs() <= 4.0, "{} vs {}", se.p50, ss.p50);
    }

    #[test]
    fn collector_default_is_exact_and_for_mode_switches() {
        assert!(!Collector::default().is_streaming());
        assert!(Collector::for_mode(true).is_streaming());
        assert!(!Collector::for_mode(false).is_streaming());
    }

    #[test]
    fn histogram_digest_matches_exact_queries() {
        let mut h = Histogram::new();
        let mut s = Samples::new();
        for v in [5u64, 5, 5, 14, 14, 22] {
            h.record(v);
            s.push(v as f64);
        }
        assert_eq!(Digest::count(&h), 6);
        assert_eq!(Digest::mean(&h), s.mean());
        assert_eq!(Digest::max(&h), 22.0);
        for p in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(p), s.percentile(p), "p={p}");
        }
        h.observe(7.0);
        assert_eq!(h.count(7), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative integer")]
    fn histogram_rejects_fractional_observations() {
        Histogram::new().observe(1.5);
    }

    #[test]
    fn online_extrema() {
        let mut s = OnlineStats::new();
        assert_eq!(s.min(), 0.0);
        s.push(3.0);
        s.push(-1.0);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn time_weighted_mean_and_max() {
        use crate::SimTime;
        let mut g = TimeWeighted::new();
        assert_eq!(g.mean_until(SimTime::from_secs_f64(5.0)), 0.0);
        g.set(SimTime::from_secs_f64(1.0), 10.0);
        g.set(SimTime::from_secs_f64(3.0), 0.0);
        // 10 for 2 s, 0 for 2 s.
        let avg = g.mean_until(SimTime::from_secs_f64(5.0));
        assert!((avg - 5.0).abs() < 1e-12, "{avg}");
        assert_eq!(g.max(), 10.0);
        assert_eq!(g.current(), 0.0);
    }

    #[test]
    fn time_weighted_zero_span_is_zero() {
        use crate::SimTime;
        let mut g = TimeWeighted::new();
        g.set(SimTime::from_secs_f64(2.0), 7.0);
        assert_eq!(g.mean_until(SimTime::from_secs_f64(2.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_weighted_rejects_backwards_time() {
        use crate::SimTime;
        let mut g = TimeWeighted::new();
        g.set(SimTime::from_secs_f64(2.0), 1.0);
        g.set(SimTime::from_secs_f64(1.0), 1.0);
    }

    #[test]
    fn histogram_counts_and_tail() {
        let mut h = Histogram::new();
        for v in [5, 5, 5, 14, 14, 22] {
            h.record(v);
        }
        assert_eq!(h.count(5), 3);
        assert_eq!(h.count(9), 0);
        assert_eq!(h.total(), 6);
        assert!((h.fraction_at_least(14) - 0.5).abs() < 1e-12);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(5, 3), (14, 2), (22, 1)]);
    }

    #[test]
    #[should_panic(expected = "NaN observation")]
    fn nan_rejected() {
        Samples::new().push(f64::NAN);
    }
}
