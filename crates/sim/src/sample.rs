//! Sim-clock-driven sampling cadence.
//!
//! A [`SampleClock`] owns the arithmetic of a periodic sampler: given an
//! interval Δt, it yields the strictly increasing tick times `Δt, 2Δt,
//! 3Δt, …`. Simulations schedule one sample event at `next_at()`, take
//! their snapshot when it fires, then `advance()` and schedule the
//! next. Keeping the cadence here (rather than ad hoc in each
//! simulation) guarantees two runs with the same interval sample at
//! byte-identical instants.

use crate::{SimDuration, SimTime};

/// Generator of periodic sample instants on the sim clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleClock {
    interval: SimDuration,
    next: SimTime,
}

impl SampleClock {
    /// A clock ticking every `interval`, first at `interval` (not at
    /// zero: time zero precedes any simulated work, so a sample there
    /// would be all-zero noise). Returns `None` for a zero interval —
    /// the "sampling disabled" encoding.
    pub fn new(interval: SimDuration) -> Option<SampleClock> {
        if interval == SimDuration::ZERO {
            return None;
        }
        Some(SampleClock {
            interval,
            next: SimTime::ZERO + interval,
        })
    }

    /// The instant of the next (not yet taken) sample.
    pub fn next_at(&self) -> SimTime {
        self.next
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Consumes the pending tick, returning its instant and moving the
    /// clock one interval forward.
    pub fn advance(&mut self) -> SimTime {
        let at = self.next;
        self.next += self.interval;
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_interval_disables_sampling() {
        assert!(SampleClock::new(SimDuration::ZERO).is_none());
    }

    #[test]
    fn ticks_are_strictly_increasing_multiples() {
        let mut clock = SampleClock::new(SimDuration::from_micros(250)).unwrap();
        let ticks: Vec<u64> = (0..4).map(|_| clock.advance().as_micros()).collect();
        assert_eq!(ticks, vec![250, 500, 750, 1000]);
        assert_eq!(clock.next_at().as_micros(), 1250);
    }

    #[test]
    fn identical_clocks_tick_identically() {
        let a = SampleClock::new(SimDuration::from_secs_f64(0.5)).unwrap();
        let mut b = a.clone();
        let mut a = a;
        for _ in 0..10 {
            assert_eq!(a.advance(), b.advance());
        }
    }
}
