//! Deterministic random number generation.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// The simulation RNG: a seedable ChaCha12 generator.
///
/// ChaCha12 (rather than `rand::rngs::StdRng`) is used because its output
/// is specified and stable across `rand` releases, so recorded experiment
/// results stay reproducible.
///
/// `SimRng` supports cheap *forking*: [`SimRng::fork`] derives an
/// independent child generator from a label, so subsystems (workload
/// generation, forwarding decisions, churn, ...) can each own a stream
/// without their draws interleaving.
///
/// ```
/// use ert_sim::SimRng;
/// use rand::Rng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// let mut child = a.fork("workload");
/// let _ = child.gen::<u64>(); // independent of `a`'s future draws
/// ```
#[derive(Debug, Clone)]
pub struct SimRng(ChaCha12Rng);

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng(ChaCha12Rng::seed_from_u64(seed))
    }

    /// Derives an independent child generator from a textual label.
    ///
    /// Forking consumes one `u64` from `self` and mixes it with the
    /// label's bytes, so two forks with different labels — or the same
    /// label at different points in the parent's stream — are
    /// independent.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut seed = self.0.next_u64();
        for (i, byte) in label.bytes().enumerate() {
            seed = seed
                .rotate_left(7)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((byte as u64) << (i % 8));
        }
        SimRng(ChaCha12Rng::seed_from_u64(seed))
    }

    /// Samples an exponential variate with the given rate (events per
    /// second), i.e. the interarrival time of a Poisson process.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exp_secs(&mut self, rate: f64) -> f64 {
        assert!(rate.is_finite() && rate > 0.0, "invalid rate: {rate}");
        // Inverse CDF; 1 - U in (0, 1] avoids ln(0).
        let u: f64 = self.0.gen::<f64>();
        -(1.0 - u).ln() / rate
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.0.gen_range(0..slice.len());
            Some(&slice[i])
        }
    }

    /// Picks `k` distinct indices uniformly at random from `0..n`
    /// (partial Fisher–Yates). Returns fewer than `k` when `n < k`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.0.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let mut root = SimRng::seed_from(2);
        let mut snapshot = root.clone();
        let mut a = root.fork("alpha");
        let mut b = snapshot.fork("beta");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exp_secs(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SimRng::seed_from(4);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = rng.choose(&items).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rng.choose::<u8>(&[]), None);
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SimRng::seed_from(5);
        let picks = rng.sample_indices(10, 4);
        assert_eq!(picks.len(), 4);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert!(picks.iter().all(|&i| i < 10));
        assert_eq!(rng.sample_indices(2, 5).len(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn zero_rate_panics() {
        SimRng::seed_from(0).exp_secs(0.0);
    }
}
